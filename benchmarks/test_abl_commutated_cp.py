"""Ablation — commutated context parallelism (Section 5).

Standard context-parallel implementations circulate keys/values; combined with
SlimPipe's KV cache, the cached keys/values would be re-circulated for every
later slice.  The commutated variant circulates the query, output and softmax
normalizer instead, making the volume independent of the accumulated cache.
The bench quantifies the traffic of both variants across slice counts (and
shows the GQA nuance: a wide query erodes the saving at small n).
"""

from repro.analysis.report import render_table
from repro.core.context_parallel import cp_volume_comparison
from repro.model.config import LLAMA_13B, LLAMA_70B


def test_commutated_cp_ablation(benchmark):
    def sweep():
        rows = []
        for model in (LLAMA_13B, LLAMA_70B):
            for n in (8, 16, 32, 64):
                comparison = cp_volume_comparison(model, 256 * 1024, n, 8)
                rows.append(
                    (
                        model.name,
                        n,
                        comparison.kv_passing_bytes / 2**30,
                        comparison.query_passing_bytes / 2**30,
                        comparison.reduction_factor,
                    )
                )
        return rows

    rows = benchmark(sweep)
    print()
    print(
        render_table(
            ["model", "n", "KV-passing (GiB)", "query-passing (GiB)", "reduction"],
            [(m, n, f"{kv:.0f}", f"{q:.0f}", f"{r:.1f}x") for m, n, kv, q, r in rows],
            title="Commutated CP: per-device traffic per microbatch (c=8, 256K context)",
        )
    )

    by_model = {}
    for model, n, kv, q, reduction in rows:
        by_model.setdefault(model, []).append((n, kv, q, reduction))
    for model, series in by_model.items():
        series.sort()
        # KV-passing volume grows with n, query-passing stays flat, so the
        # reduction factor grows with the slice count for every model.
        reductions = [r for _, _, _, r in series]
        assert reductions == sorted(reductions)
        query_volumes = [q for _, _, q, _ in series]
        assert max(query_volumes) - min(query_volumes) < 1e-6
    # For the MHA model the saving approaches (n+1)/2.
    llama13 = dict((n, r) for n, _, _, r in by_model["llama-13b"])
    assert llama13[64] > 20
