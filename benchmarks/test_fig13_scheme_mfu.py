"""Figure 13 — MFU of the PP schemes across context lengths (Llama 13B).

Paper setting: batch of 4 sequences, 8-way TP, full checkpointing (except the
zero-bubble variants, whose checkpointing is broken), 5 stages per device for
the interleaved schemes.  Claim: SlimPipe delivers the highest efficiency at
every context length, the zero-bubble variants die early, and default 1F1B is
slow throughout.
"""

from repro.analysis.figures import figure13_scheme_mfu


def test_figure13_scheme_mfu(once):
    result = once(figure13_scheme_mfu, sequence_ks=(32, 64, 128, 256, 512))
    print()
    print(result.to_text())

    for seq_k in (32, 64, 128, 256, 512):
        slim = result.row("slimpipe", seq_k)
        assert slim.feasible
        for scheme in ("zb-v", "v-half", "1f1b", "interleaved-1f1b"):
            other = result.row(scheme, seq_k)
            if other.feasible:
                assert slim.mfu > other.mfu, (scheme, seq_k)

    # Default 1F1B pays its warm-up bubbles: well below interleaved 1F1B.
    assert result.row("1f1b", 64).mfu < result.row("interleaved-1f1b", 64).mfu
