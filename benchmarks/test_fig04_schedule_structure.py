"""Figure 4 — default 1F1B vs the SlimPipe slice-level schedule.

Paper claim (annotated on the figure): the activation accumulated on the first
device drops from M_a to (1 + 2(p-1)/n) * M_a / p while the warm-up bubble
shrinks by about n times.
"""

import pytest

from repro.analysis.figures import figure4_schedule_structure
from repro.core.schedule import build_slimpipe_schedule
from repro.schedules import build_1f1b_schedule
from repro.sim.engine import SimulationEngine, UniformCostProvider


def test_figure4_schedule_structure(benchmark):
    result = benchmark(figure4_schedule_structure)
    print()
    print(result.to_text())

    p, n = result.num_devices, result.num_slices
    assert result.accumulated_fraction_of_microbatch == pytest.approx(
        (1 + 2 * (p - 1) / n) / p
    )
    # Compared to the classic 1F1B schedule on the same problem, the warm-up
    # bubble shrinks by roughly n (per-unit durations scaled accordingly).
    classic = build_1f1b_schedule(p, result.num_microbatches)
    classic_tl = SimulationEngine(classic, UniformCostProvider(1.0, 2.0)).run()
    slim = build_slimpipe_schedule(p, result.num_microbatches, n)
    slim_tl = SimulationEngine(slim, UniformCostProvider(1.0 / n, 2.0 / n)).run()
    assert slim_tl.bubble_fraction() < classic_tl.bubble_fraction() / 2
