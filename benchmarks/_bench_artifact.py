"""Shared machine-readable benchmark artifact writer (``BENCH_*.json``).

The serving and fleet throughput modules each archive their recorded rows
through one :class:`BenchArtifact` so the artifact format — path override
via an environment variable, the ``{"benchmarks": {...}}`` payload, sorted
keys, trailing newline — lives in exactly one place and the two JSON files
cannot drift apart.
"""

import json
import os
from pathlib import Path


class BenchArtifact:
    """Accumulates benchmark rows, written as one JSON file at teardown."""

    def __init__(self, env_var: str, default_path: str):
        self.env_var = env_var
        self.default_path = default_path
        self.results = {}

    def record(self, name: str, row: dict) -> None:
        self.results[name] = row

    def write(self) -> None:
        if not self.results:
            return
        path = Path(os.environ.get(self.env_var, self.default_path))
        path.write_text(
            json.dumps({"benchmarks": self.results}, indent=1, sort_keys=True) + "\n"
        )
