"""Figure 2 — maximum context length supported by each PP scheme.

Paper values (Llama-7B-class model, 8-way TP, 8-way PP): ZB-V 72K, V-Half
112K, default 1F1B 124K, interleaved 92K, SlimPipe 600K (4.8-8.3x longer).
The reproduction checks the shape: SlimPipe reaches several times the context
of every baseline.
"""

from repro.analysis.figures import PAPER_SCHEMES, figure2_max_context


def test_figure2_max_context(once):
    result = once(figure2_max_context, max_context_k=768, step_k=8)
    print()
    print(result.to_text())

    slim = result.max_context("slimpipe")
    baselines = {r.scheme: r.max_context_k for r in result.rows if r.scheme != "slimpipe"}
    assert set(baselines) == set(PAPER_SCHEMES) - {"slimpipe"}
    assert all(value > 0 for value in baselines.values())
    assert slim >= 3 * max(baselines.values())
    assert slim >= 512  # the paper reports ~600K
