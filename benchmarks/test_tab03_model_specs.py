"""Table 3 — model specifications: parameter counts derived from the configs
match the paper's reported sizes (13.3B / 69.5B / 148.9B / 47.0B / 141.0B)."""

import pytest

from repro.analysis.report import render_table
from repro.analysis.tables import table3_model_specifications

PAPER_PARAMS = {
    "llama-13b": 13.3,
    "llama-70b": 69.5,
    "llama-149b": 148.9,
    "mixtral-8x7b": 47.0,
    "mixtral-8x22b": 141.0,
}


def test_table3_model_specifications(benchmark):
    rows = benchmark(table3_model_specifications)
    print()
    print(
        render_table(
            ["model", "L", "a", "g", "h", "H", "params (B)"],
            [
                (r.model, r.num_layers, r.num_heads, r.num_groups or "-", r.hidden_size, r.ffn_size, f"{r.params_billions:.1f}")
                for r in rows
            ],
            title="Table 3 — models used in evaluation",
        )
    )
    for row in rows:
        assert row.params_billions == pytest.approx(PAPER_PARAMS[row.model], rel=0.02)
