"""Render a markdown delta table between two BENCH_*.json artifacts.

CI runs the serving/fleet benchmarks, then calls this script with the
repository's committed baseline and the freshly emitted artifact to post a
PR-visible summary table (appended to ``$GITHUB_STEP_SUMMARY`` when set,
printed to stdout otherwise)::

    python benchmarks/bench_delta.py --baseline BENCH_serving.json \
        --current /tmp/BENCH_serving.json --title "serving benchmarks"

The table shows simulator wall seconds per benchmark with the relative
delta, plus any benchmark added or removed.  Exit code is always 0 — the
table is informational; hard perf gates live in the benchmarks themselves.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text()).get("benchmarks", {})
    except (OSError, ValueError) as error:
        print(f"warning: could not read {path}: {error}", file=sys.stderr)
        return {}


def delta_table(baseline: dict, current: dict, title: str) -> str:
    lines = [
        f"### {title}",
        "",
        "| benchmark | baseline wall (s) | current wall (s) | delta |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(set(baseline) | set(current)):
        before = baseline.get(name, {}).get("wall_seconds")
        after = current.get(name, {}).get("wall_seconds")
        if before is None:
            lines.append(f"| `{name}` | — (new) | {after:.3f} | — |")
        elif after is None:
            lines.append(f"| `{name}` | {before:.3f} | — (removed) | — |")
        else:
            change = (after - before) / before if before else 0.0
            lines.append(f"| `{name}` | {before:.3f} | {after:.3f} | {change:+.1%} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--current", required=True, help="freshly emitted BENCH_*.json")
    parser.add_argument("--title", default="benchmark deltas")
    args = parser.parse_args(argv)
    table = delta_table(_load(args.baseline), _load(args.current), args.title)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(table + "\n")
    print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
