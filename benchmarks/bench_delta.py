"""Render a markdown delta table between two BENCH_*.json artifacts.

CI runs the serving/fleet benchmarks, then calls this script with the
repository's committed baseline and the freshly emitted artifact to post a
PR-visible summary table (appended to ``$GITHUB_STEP_SUMMARY`` when set,
printed to stdout otherwise)::

    python benchmarks/bench_delta.py --baseline BENCH_serving.json \
        --current /tmp/BENCH_serving.json --title "serving benchmarks"

The table shows simulator wall seconds per benchmark with the relative
delta, plus any benchmark added or removed.  By default the exit code is
0 — the table is informational.

``--gate`` turns the comparison into a CI gate: the run fails (exit 1)
when any benchmark present on both sides regressed beyond the thresholds —
simulator wall-clock up by more than ``--max-wall-regression`` (relative,
default 25%) or goodput fraction down by more than ``--max-goodput-drop``
(absolute, default 0.01).  Benchmarks that exist on only one side (added or
removed) are reported but never gate.  An intentional regression lands by
updating the committed baseline in the same PR, or by applying the
``perf-regression-ok`` label, which skips the gate step in CI (see
``.github/workflows/ci.yml``)::

    python benchmarks/bench_delta.py --baseline BENCH_serving.json \
        --current /tmp/BENCH_serving.json --gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text()).get("benchmarks", {})
    except (OSError, ValueError) as error:
        print(f"warning: could not read {path}: {error}", file=sys.stderr)
        return {}


def delta_table(baseline: dict, current: dict, title: str) -> str:
    lines = [
        f"### {title}",
        "",
        "| benchmark | baseline wall (s) | current wall (s) | delta |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(set(baseline) | set(current)):
        before = baseline.get(name, {}).get("wall_seconds")
        after = current.get(name, {}).get("wall_seconds")
        if before is None:
            lines.append(f"| `{name}` | — (new) | {after:.3f} | — |")
        elif after is None:
            lines.append(f"| `{name}` | {before:.3f} | — (removed) | — |")
        else:
            change = (after - before) / before if before else 0.0
            lines.append(f"| `{name}` | {before:.3f} | {after:.3f} | {change:+.1%} |")
    lines.append("")
    return "\n".join(lines)


def gate_violations(
    baseline: dict,
    current: dict,
    max_wall_regression: float = 0.25,
    max_goodput_drop: float = 0.01,
    max_overhead_pct: float = 10.0,
    max_memory_regression: float = 0.50,
) -> List[str]:
    """One human-readable line per benchmark regressed beyond a threshold.

    Only benchmarks present in both artifacts participate; a zero-wall
    baseline entry cannot gate on wall-clock (no meaningful relative delta).
    Two gates read the *current* side against absolute/relative ceilings
    rather than raw deltas: ``recorder_overhead_pct`` must stay under
    ``max_overhead_pct`` (the recorder's contract is "near-free", not
    "no slower than last time"), and ``peak_tracemalloc_mb`` — emitted by
    the massive-scale benchmarks — may not grow more than
    ``max_memory_regression`` relative to the committed baseline.
    """
    violations: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        before, after = baseline[name], current[name]
        wall_before = before.get("wall_seconds")
        wall_after = after.get("wall_seconds")
        if wall_before and wall_after is not None:
            change = (wall_after - wall_before) / wall_before
            if change > max_wall_regression:
                violations.append(
                    f"{name}: wall {wall_before:.3f}s -> {wall_after:.3f}s "
                    f"({change:+.1%} > +{max_wall_regression:.0%} allowed)"
                )
        good_before = before.get("goodput_fraction")
        good_after = after.get("goodput_fraction")
        if good_before is not None and good_after is not None:
            drop = good_before - good_after
            if drop > max_goodput_drop:
                violations.append(
                    f"{name}: goodput {good_before:.3f} -> {good_after:.3f} "
                    f"(-{drop:.3f} > -{max_goodput_drop:.3f} allowed)"
                )
        overhead_pct = after.get("recorder_overhead_pct")
        if overhead_pct is not None and overhead_pct > max_overhead_pct:
            violations.append(
                f"{name}: recorder overhead {overhead_pct:+.1f}% "
                f"> +{max_overhead_pct:.1f}% allowed"
            )
        mem_before = before.get("peak_tracemalloc_mb")
        mem_after = after.get("peak_tracemalloc_mb")
        if mem_before and mem_after is not None:
            growth = (mem_after - mem_before) / mem_before
            if growth > max_memory_regression:
                violations.append(
                    f"{name}: peak memory {mem_before:.1f}MB -> {mem_after:.1f}MB "
                    f"({growth:+.1%} > +{max_memory_regression:.0%} allowed)"
                )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--current", required=True, help="freshly emitted BENCH_*.json")
    parser.add_argument("--title", default="benchmark deltas")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 on regressions beyond the thresholds (see module docstring)",
    )
    parser.add_argument(
        "--max-wall-regression",
        type=float,
        default=0.25,
        help="allowed relative wall-clock increase per benchmark (default: 0.25)",
    )
    parser.add_argument(
        "--max-goodput-drop",
        type=float,
        default=0.01,
        help="allowed absolute goodput-fraction decrease per benchmark (default: 0.01)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=10.0,
        help="ceiling on the current recorder_overhead_pct (default: 10.0)",
    )
    parser.add_argument(
        "--max-memory-regression",
        type=float,
        default=0.50,
        help="allowed relative peak_tracemalloc_mb increase per benchmark "
        "(default: 0.50)",
    )
    args = parser.parse_args(argv)
    baseline, current = _load(args.baseline), _load(args.current)
    table = delta_table(baseline, current, args.title)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(table + "\n")
    print(table)
    if args.gate:
        violations = gate_violations(
            baseline,
            current,
            max_wall_regression=args.max_wall_regression,
            max_goodput_drop=args.max_goodput_drop,
            max_overhead_pct=args.max_overhead_pct,
            max_memory_regression=args.max_memory_regression,
        )
        if violations:
            print("benchmark gate FAILED:", file=sys.stderr)
            for line in violations:
                print(f"  {line}", file=sys.stderr)
            print(
                "update the committed baseline or apply the perf-regression-ok "
                "label to land an intentional regression",
                file=sys.stderr,
            )
            return 1
        print(f"benchmark gate passed ({len(set(baseline) & set(current))} compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
