"""Figure 3 — theoretical bubble fractions of the PP schemes.

Paper setting: Llama 13B, PP size 8, 4 microbatches, 256K context.  SlimPipe's
bubble fraction is near zero while every baseline wastes a substantial share
of device time.
"""

from repro.analysis.figures import figure3_bubble_fractions


def test_figure3_bubble_fractions(benchmark):
    result = benchmark(figure3_bubble_fractions)
    print()
    print(result.to_text())

    slim = result.fraction("slimpipe")
    assert slim < 0.05
    assert result.fraction("1f1b") > 0.3
    assert result.fraction("interleaved-1f1b") < result.fraction("1f1b")
    for row in result.rows:
        if row.scheme != "slimpipe":
            assert row.bubble_fraction > 3 * slim
