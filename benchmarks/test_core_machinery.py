"""Performance benchmarks of the reproduction's own machinery.

Not a paper experiment: these keep an eye on the cost of the schedule builder,
the discrete-event simulator and the NumPy numeric runner, so that the paper
benchmarks above stay fast enough to iterate on.
"""

import numpy as np

from repro.core.schedule import build_slimpipe_schedule
from repro.numerics.model import ModelParams, NumericModelConfig, ReferenceModel
from repro.numerics.pipeline_runner import SlimPipeNumericRunner
from repro.sim.engine import SimulationEngine, UniformCostProvider
from repro.sim.memory_tracker import MemoryTracker, SimpleAccountant


def test_build_slimpipe_schedule_speed(benchmark):
    schedule = benchmark(build_slimpipe_schedule, 8, 8, 32, 2)
    assert schedule.total_passes() == 2 * 8 * 8 * 32 * 2


def test_simulation_engine_speed(benchmark):
    schedule = build_slimpipe_schedule(8, 4, 32)
    timeline = benchmark(
        lambda: SimulationEngine(schedule, UniformCostProvider(comm=0.01)).run()
    )
    assert timeline.makespan > 0


def test_memory_tracker_speed(benchmark):
    schedule = build_slimpipe_schedule(8, 4, 32, 2)
    peaks = benchmark(
        lambda: MemoryTracker(schedule, SimpleAccountant()).peak_activation_bytes()
    )
    assert len(peaks) == 8


def test_numeric_runner_speed(benchmark):
    config = NumericModelConfig(num_layers=4, hidden_size=32, num_heads=4, num_groups=2, ffn_size=64, vocab_size=64)
    params = ModelParams.init(config, seed=0)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, config.vocab_size, size=64)
    targets = rng.integers(0, config.vocab_size, size=64)
    runner = SlimPipeNumericRunner(params, num_devices=4, num_slices=8)

    loss, _ = benchmark(runner.loss_and_gradients, tokens, targets)
    reference, _ = ReferenceModel(params).loss_and_gradients(tokens, targets)
    assert abs(loss - reference) < 1e-9
