"""Figure 8 — rebalancing the attention workload by exchanging context.

The devices' concurrent KV loads form an arithmetic progression (worst at a
microbatch juncture); the exchange plan moves query + partial KV between
devices until every load is within one slice of the mean, and the exchanged
volume respects the Eq. 2 bound.
"""

from repro.analysis.figures import figure8_context_exchange_plan
from repro.core.context_exchange import (
    exchange_volume_bound,
    exchange_volume_per_microbatch,
)
from repro.model.config import LLAMA_13B


def test_figure8_context_exchange_plan(benchmark):
    result = benchmark(figure8_context_exchange_plan)
    print()
    print(result.to_text())

    assert result.max_imbalance_before > 1.0
    assert result.max_imbalance_after <= 1.0 + 1e-9
    assert sum(result.balanced) == sum(result.original)


def test_eq2_exchange_volume_bound(benchmark):
    """Eq. 2: exchanged volume stays below (2 - (p-1)/n) L M_h for every (p, n)."""

    def sweep():
        rows = []
        for p in (2, 4, 8, 16):
            for mult in (1, 2, 4, 8):
                n = p * mult
                vol = exchange_volume_per_microbatch(LLAMA_13B, 256 * 1024, n, p, 8)
                bound = exchange_volume_bound(LLAMA_13B, 256 * 1024, n, p, 8)
                rows.append((p, n, vol, bound))
        return rows

    rows = benchmark(sweep)
    print()
    print(f"{'p':>3} {'n':>4} {'volume (GiB)':>14} {'bound (GiB)':>13}")
    for p, n, vol, bound in rows:
        print(f"{p:>3} {n:>4} {vol / 2**30:>14.2f} {bound / 2**30:>13.2f}")
        assert vol <= bound * (1 + 1e-9)
