"""Benchmark-harness configuration.

Ensures the in-repo sources are importable without installation and provides
the ``once`` helper every benchmark module uses: the expensive experiment
generators (grid searches, simulator runs) are timed with a single round so
that regenerating every paper table and figure stays fast enough to run as one
suite (``pytest benchmarks/ --benchmark-only``).
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - trivial path bootstrap
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


@pytest.fixture
def once(benchmark):
    """Run a benchmarked callable exactly once (heavy experiment generators)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
