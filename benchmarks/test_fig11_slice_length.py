"""Figure 11 — how the number of slices affects training efficiency.

Paper claims: finer slicing first improves MFU (smaller bubbles) and then
hurts it (lost arithmetic intensity); the drop-off comes later for longer
contexts, so 512K tolerates 32 slices while 128K does not.
"""

from repro.analysis.figures import figure11_mfu_vs_slices


def test_figure11_mfu_vs_slices(once):
    result = once(
        figure11_mfu_vs_slices,
        sequence_ks=(128, 256, 512),
        slice_multipliers=(1, 2, 4, 6, 8),
    )
    print()
    print(result.to_text())

    for seq_k in (128, 256, 512):
        series = dict(result.series(seq_k))
        assert all(0.1 < mfu < 0.6 for mfu in series.values())

    # The optimal slice count does not shrink as the context grows.
    assert result.best_slices(512) >= result.best_slices(128)

    # The short-context curve degrades more by the largest slice count.
    short = dict(result.series(128))
    long = dict(result.series(512))
    n_max = max(short)
    short_drop = max(short.values()) - short[n_max]
    long_drop = max(long.values()) - long[n_max]
    assert short_drop > long_drop
