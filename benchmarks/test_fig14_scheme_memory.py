"""Figure 14 — GPU memory of the PP schemes across context lengths (Llama 13B).

Paper claim: the zero-bubble variants run out of memory first (their built-in
checkpointing is broken), default 1F1B survives up to 256K, and SlimPipe uses
the least memory at every context length and is the only scheme to reach 512K
comfortably.
"""

from repro.analysis.figures import figure14_scheme_memory


def test_figure14_scheme_memory(once):
    result = once(figure14_scheme_memory, sequence_ks=(32, 64, 128, 256, 512))
    print()
    print(result.to_text())

    # SlimPipe has the smallest footprint wherever the others still run.
    for seq_k in (32, 64, 128, 256):
        slim = result.row("slimpipe", seq_k)
        for scheme in ("zb-v", "v-half", "1f1b", "interleaved-1f1b"):
            other = result.row(scheme, seq_k)
            if other.feasible:
                assert slim.peak_memory_gib < other.peak_memory_gib

    # OOM ordering: zero-bubble variants first, then default 1F1B at 512K.
    assert not result.row("zb-v", 512).feasible
    assert not result.row("v-half", 512).feasible
    assert not result.row("1f1b", 512).feasible
    assert result.row("slimpipe", 512).feasible

    # Memory grows with context length for every feasible scheme.
    for scheme in ("1f1b", "interleaved-1f1b", "slimpipe"):
        series = [
            result.row(scheme, seq_k).peak_memory_gib
            for seq_k in (32, 64, 128, 256)
            if result.row(scheme, seq_k).feasible
        ]
        assert series == sorted(series)
