"""Serving-simulator throughput: iterations simulated per wall-clock second.

The serving engine is a pure-Python discrete-event loop, so its cost is
iterations x running-batch size.  This benchmark times the ``chat`` scenario
end to end (about four thousand engine iterations) and sanity-checks the
simulated metrics: every request finishes, token accounting balances, and
the colocated deployment sustains the offered load.
"""

from repro.serving import get_scenario, run_scenario


def test_serving_chat_throughput(once):
    scenario = get_scenario("chat")
    result = once(run_scenario, scenario, "colocated", seed=0)
    print()
    print(result.metrics.to_text(title="chat | colocated (benchmark)"))

    metrics = result.metrics
    assert metrics.num_requests == len(scenario.make_trace(0))
    assert result.token_accounting_balanced
    # The deployment keeps up with the offered load: every request meets the
    # chat SLO and the engine sustains hundreds of output tokens per second.
    assert metrics.goodput_fraction > 0.95
    assert metrics.output_tokens_per_second > 100
    assert result.iterations > 0


def test_serving_disaggregation_tail_latency(once):
    scenario = get_scenario("bursty-long")

    def both():
        colocated = run_scenario(scenario, "colocated", seed=0)
        disaggregated = run_scenario(scenario, "disaggregated", seed=0)
        return colocated, disaggregated

    colocated, disaggregated = once(both)
    print()
    print(f"colocated     p99 TTFT: {colocated.metrics.ttft_p99:8.2f} s")
    print(f"disaggregated p99 TTFT: {disaggregated.metrics.ttft_p99:8.2f} s")
    assert disaggregated.metrics.ttft_p99 < colocated.metrics.ttft_p99
