"""Serving-simulator throughput: iterations simulated per wall-clock second.

The serving engine is a pure-Python discrete-event loop, so its cost is
iterations x running-batch size — minus whatever the decode fast-forward
path coalesces away.  These benchmarks time representative scenarios end to
end, sanity-check the simulated metrics (every request finishes, token
accounting balances, the colocated deployment sustains the offered load) and
pin the perf win itself: the fast-forward stepper must beat the naive
reference oracle by a healthy multiple on decode-heavy traffic while
producing identical results.

Besides the pytest-benchmark timings, the module writes a machine-readable
``BENCH_serving.json`` (override the path with ``$BENCH_SERVING_JSON``,
mirroring the fleet benchmarks' ``BENCH_fleet.json``) so CI can archive the
perf trajectory per commit: simulator wall seconds, simulated iterations per
wall second, the fast-forward speedup and the headline serving metrics.
"""

import gc
import time

import pytest

from _bench_artifact import BenchArtifact
from repro.fleet import get_fleet_scenario, run_fleet_scenario
from repro.obs import EventRecorder, build_attributions, verify_conservation
from repro.serving import get_scenario, run_scenario

_ARTIFACT = BenchArtifact("BENCH_SERVING_JSON", "BENCH_serving.json")


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write whatever the module's benchmarks recorded as one JSON artifact."""
    yield
    _ARTIFACT.write()


def _record(name, result, wall_seconds, **extra):
    metrics = result.metrics
    _ARTIFACT.record(name, {
        "wall_seconds": wall_seconds,
        "iterations": result.iterations,
        "iterations_per_wall_second": result.iterations / max(wall_seconds, 1e-9),
        "num_requests": metrics.num_requests,
        "makespan": metrics.duration,
        "ttft_p99": metrics.ttft_p99,
        "tpot_p50": metrics.tpot_p50,
        "goodput_fraction": metrics.goodput_fraction,
        "preemptions": result.preemptions,
        **extra,
    })


def test_serving_chat_throughput(once):
    scenario = get_scenario("chat")
    start = time.perf_counter()
    result = once(run_scenario, scenario, "colocated", seed=0)
    wall = time.perf_counter() - start
    _record("chat.colocated", result, wall)
    print()
    print(result.metrics.to_text(title="chat | colocated (benchmark)"))

    metrics = result.metrics
    assert metrics.num_requests == len(scenario.make_trace(0))
    assert result.token_accounting_balanced
    # The deployment keeps up with the offered load: every request meets the
    # chat SLO and the engine sustains hundreds of output tokens per second.
    assert metrics.goodput_fraction > 0.95
    assert metrics.output_tokens_per_second > 100
    assert result.iterations > 0


def test_serving_fast_forward_speedup(once):
    """Decode fast-forwarding: same numbers, a multiple of the speed.

    Runs the decode-heavy ``chat`` scenario with fast-forwarding first —
    any process-global FLOPs ``lru_cache`` warm-up it pays for benefits the
    naive reference run after it, biasing the measured ratio *against* the
    fast path — and asserts identical simulated outcomes alongside the
    wall-clock win.
    """
    scenario = get_scenario("chat")

    def both():
        fast_start = time.perf_counter()
        fast = run_scenario(scenario, "colocated", seed=0)
        fast_wall = time.perf_counter() - fast_start
        naive_start = time.perf_counter()
        naive = run_scenario(scenario, "colocated", seed=0, fast_forward=False)
        naive_wall = time.perf_counter() - naive_start
        return naive, naive_wall, fast, fast_wall

    naive, naive_wall, fast, fast_wall = once(both)
    speedup = naive_wall / max(fast_wall, 1e-9)
    _record(
        "chat.colocated.fast-forward",
        fast,
        fast_wall,
        naive_wall_seconds=naive_wall,
        fast_forward_speedup=speedup,
    )
    print()
    print(f"naive        wall: {naive_wall:8.3f} s")
    print(f"fast-forward wall: {fast_wall:8.3f} s  ({speedup:.1f}x)")

    assert fast.iterations == naive.iterations
    assert fast.metrics.ttft_p99 == naive.metrics.ttft_p99
    assert fast.metrics.tpot_p50 == naive.metrics.tpot_p50
    assert [r.finish_time for r in fast.records] == [
        r.finish_time for r in naive.records
    ]
    # Sanity floor only: the single-replica win shrinks when earlier tests
    # have pre-warmed the FLOPs caches the naive path leans on (cold-process
    # chat is ~3x); the hard >= 3x gate lives in the fleet benchmark, where
    # the naive event loop cannot hide behind warm caches.
    assert speedup >= 1.4


def test_shared_prefix_cache_prefill_savings(once):
    """Shared-prefix KV caching: >=2x less prefill at matched SLO attainment.

    Runs the ``shared-system-prompt`` scenario (every request behind one 8K
    system prompt) with prefix caching on and off on the identical trace and
    asserts the acceptance bar: total executed prefill FLOPs drop by at
    least 2x, median TTFT drops by at least 2x, and goodput does not regress
    — the capacity is free, not bought with SLO misses.
    """
    scenario = get_scenario("shared-system-prompt")

    def both():
        cached_start = time.perf_counter()
        cached = run_scenario(scenario, "colocated", seed=0)
        cached_wall = time.perf_counter() - cached_start
        uncached = run_scenario(scenario, "colocated", seed=0, prefix_caching=False)
        return cached, cached_wall, uncached

    cached, cached_wall, uncached = once(both)
    flops_ratio = uncached.prefill_flops_executed / max(cached.prefill_flops_executed, 1.0)
    ttft_ratio = uncached.metrics.ttft_p50 / max(cached.metrics.ttft_p50, 1e-9)
    _record(
        "shared-system-prompt.prefix-cache",
        cached,
        cached_wall,
        prefix_hit_rate=cached.prefix_hit_rate,
        prefix_hit_tokens=cached.prefix_hit_tokens,
        prefill_flops_executed=cached.prefill_flops_executed,
        prefill_flops_uncached=uncached.prefill_flops_executed,
        prefill_flops_reduction=flops_ratio,
        ttft_p50_reduction=ttft_ratio,
    )
    print()
    print(f"prefill PFLOPs uncached/cached: {uncached.prefill_flops_executed / 1e15:6.2f} / "
          f"{cached.prefill_flops_executed / 1e15:6.2f}  ({flops_ratio:.1f}x)")
    print(f"TTFT p50       uncached/cached: {uncached.metrics.ttft_p50:6.3f} / "
          f"{cached.metrics.ttft_p50:6.3f} s  ({ttft_ratio:.1f}x)")

    assert cached.token_accounting_balanced and uncached.token_accounting_balanced
    assert flops_ratio >= 2.0
    assert ttft_ratio >= 2.0
    assert cached.metrics.goodput_fraction >= uncached.metrics.goodput_fraction
    # The skipped work is accounted, not lost: skipped + executed covers the
    # uncached run's prefill demand (re-prefill after preemption aside).
    assert cached.prefix_flops_saved > cached.prefill_flops_executed


def test_recorder_overhead(once):
    """Event recording must be near-free: <10% wall-clock on steady-chat.

    Runs the ``steady-chat`` fleet scenario — the acceptance workload the
    fast-forward gate also uses, hundreds of overlapping requests across an
    autoscaled pool — with and without an :class:`EventRecorder` attached.
    One warm-up run feeds the process-global FLOPs caches, then the two arms
    interleave over seven rounds and the gate compares the best *paired*
    ratio: the arms run back to back inside each round exactly so that host
    noise (CPU contention, frequency drift) hits both sides of one ratio,
    and the cleanest round estimates the true overhead — on a busy host the
    per-round swing is several times that overhead, so comparing the
    independent floors of the two arms instead would need far more draws to
    converge.  Each timed run starts from a collected heap: without it, the
    garbage of one arm is collected inside the other arm's timing.  The
    observed run must also stay byte-identical: recording may cost
    wall-clock, never a simulated number.
    """
    scenario = get_fleet_scenario("steady-chat")

    def both():
        run_fleet_scenario(scenario, seed=0)  # warm-up, discarded
        plain_walls, observed_walls = [], []
        for _ in range(7):
            gc.collect()
            start = time.perf_counter()
            plain = run_fleet_scenario(scenario, seed=0)
            plain_walls.append(time.perf_counter() - start)
            recorder = EventRecorder()
            gc.collect()
            start = time.perf_counter()
            observed = run_fleet_scenario(scenario, seed=0, observe=recorder)
            observed_walls.append(time.perf_counter() - start)
        return plain, plain_walls, observed, observed_walls, recorder

    plain, plain_walls, observed, observed_walls, recorder = once(both)
    plain_wall, observed_wall = min(plain_walls), min(observed_walls)
    overhead = min(
        o / max(p, 1e-9) for p, o in zip(plain_walls, observed_walls)
    )
    _record(
        "steady-chat.recorder-overhead",
        observed,
        observed_wall,
        plain_wall_seconds=plain_wall,
        recorder_overhead=overhead,
        recorder_overhead_pct=(overhead - 1.0) * 100.0,
        events_recorded=len(recorder),
    )
    print()
    print(f"recorder off wall: {plain_wall:8.3f} s")
    print(f"recorder on  wall: {observed_wall:8.3f} s")
    print(f"best paired round: {(overhead - 1) * 100:+.1f}%")
    print(f"events recorded:   {len(recorder)}")

    assert len(recorder) > 0
    assert observed.metrics.ttft_p99 == plain.metrics.ttft_p99
    assert observed.metrics.goodput_fraction == plain.metrics.goodput_fraction
    assert [r.finish_time for r in observed.records] == [
        r.finish_time for r in plain.records
    ]
    assert overhead < 1.10


def test_attribution_overhead(once):
    """Critical-path reconstruction must stay cheap next to the simulation.

    Runs the same ``steady-chat`` fleet workload the recorder-overhead gate
    uses with a profiling recorder attached, then rebuilds every request's
    span decomposition (and proves the spans conserve the measured
    latencies).  The attribution pass is pure post-processing — it reads the
    recorded stream, never the engines — so it is gated against the
    simulation's own wall-clock: the diagnosis must not cost more than the
    run it explains.
    """
    scenario = get_fleet_scenario("steady-chat")

    def run():
        recorder = EventRecorder(profile=True)
        start = time.perf_counter()
        observed = run_fleet_scenario(scenario, seed=0, observe=recorder)
        sim_wall = time.perf_counter() - start
        attributions = build_attributions(recorder)
        checked = verify_conservation(recorder, attributions, records=observed.records)
        return recorder, observed, attributions, checked, sim_wall

    recorder, observed, attributions, checked, sim_wall = once(run)
    calls, attribution_wall = recorder.profiler.phases["attribution"]
    overhead = attribution_wall / max(sim_wall, 1e-9)
    _record(
        "steady-chat.attribution-overhead",
        observed,
        sim_wall,
        attribution_wall_seconds=attribution_wall,
        attribution_overhead=overhead,
        requests_attributed=len(attributions),
        requests_conservation_checked=checked,
    )
    print()
    print(f"simulation  wall: {sim_wall:8.3f} s")
    print(f"attribution wall: {attribution_wall:8.3f} s  "
          f"({overhead * 100:.1f}% of simulation, {calls} pass(es))")
    print(f"requests attributed/conservation-checked: {len(attributions)}/{checked}")

    assert checked == observed.metrics.num_requests
    assert len(attributions) >= checked
    assert overhead < 1.0


def test_serving_disaggregation_tail_latency(once):
    scenario = get_scenario("bursty-long")

    def both():
        colocated = run_scenario(scenario, "colocated", seed=0)
        start = time.perf_counter()
        disaggregated = run_scenario(scenario, "disaggregated", seed=0)
        wall = time.perf_counter() - start
        return colocated, disaggregated, wall

    colocated, disaggregated, wall = once(both)
    _record("bursty-long.disaggregated", disaggregated, wall)
    print()
    print(f"colocated     p99 TTFT: {colocated.metrics.ttft_p99:8.2f} s")
    print(f"disaggregated p99 TTFT: {disaggregated.metrics.ttft_p99:8.2f} s")
    assert disaggregated.metrics.ttft_p99 < colocated.metrics.ttft_p99
