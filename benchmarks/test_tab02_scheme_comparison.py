"""Table 2 — closed-form comparison of pipeline schemes, cross-checked against
the schedule builders and the discrete-event simulator (and Eq. 1 / Eq. 2)."""

import pytest

from repro.analysis.tables import render_table2, table2_scheme_comparison
from repro.core.context_exchange import (
    exchange_volume_bound,
    exchange_volume_per_microbatch,
)
from repro.core.schedule import build_slimpipe_schedule
from repro.model.config import LLAMA_13B
from repro.schedules import build_1f1b_schedule
from repro.schedules.formulas import activation_memory_factor
from repro.sim.engine import SimulationEngine, UniformCostProvider


def test_table2_scheme_comparison(benchmark):
    rows = benchmark(table2_scheme_comparison, num_microbatches=8)
    print()
    print(render_table2(rows))

    by_name = {r.scheme: r for r in rows}
    slim = by_name["slimpipe"]
    # SlimPipe wins both columns of Table 2.
    for name, row in by_name.items():
        if name != "slimpipe":
            assert slim.activation_memory_factor <= row.activation_memory_factor + 1e-12
    assert slim.bubble_fraction < by_name["interleaved-1f1b"].bubble_fraction
    assert by_name["gpipe"].activation_memory_factor == pytest.approx(8 / 8)


def test_eq1_formula_matches_schedule(benchmark):
    """Eq. 1 cross-check: the built schedule accumulates exactly (1+δ) M_a / p."""

    def check():
        results = []
        for p, n, v in ((4, 8, 1), (4, 16, 2), (8, 16, 1)):
            schedule = build_slimpipe_schedule(p, 4, n, v)
            measured = max(schedule.max_inflight_activations()) / (n * v * p)
            predicted = activation_memory_factor("slimpipe", p, 4, n, v)
            results.append((p, n, v, measured, predicted))
        return results

    for p, n, v, measured, predicted in benchmark(check):
        assert measured == pytest.approx(predicted)


def test_eq2_volume_below_bound(benchmark):
    def check():
        vol = exchange_volume_per_microbatch(LLAMA_13B, 256 * 1024, 32, 8, 8)
        bound = exchange_volume_bound(LLAMA_13B, 256 * 1024, 32, 8, 8)
        return vol, bound

    vol, bound = benchmark(check)
    print(f"\nEq. 2: exchanged {vol / 2**30:.2f} GiB <= bound {bound / 2**30:.2f} GiB")
    assert vol <= bound


def test_bubble_formula_vs_simulator(benchmark):
    """The 1F1B closed form and the simulator agree (sanity anchor of Table 2)."""

    def simulate():
        schedule = build_1f1b_schedule(8, 16)
        return SimulationEngine(schedule, UniformCostProvider(1.0, 1.0)).run().bubble_fraction()

    simulated = benchmark(simulate)
    ratio = (8 - 1) / 16
    assert simulated == pytest.approx(ratio / (1 + ratio), abs=0.02)
