"""Table 4 — ultra-long-context training with PP-aware activation offloading.

Paper claim: with selective checkpointing plus adaptive offloading, SlimPipe
trains Llama 70B at 2048K (45% MFU), Llama 149B at 1024K, Mixtral 8x7B at
4096K and Mixtral 8x22B at 2048K on at most 256 GPUs.  The reproduction
evaluates the same configurations and checks that every point is feasible with
high MFU, and that the dense models genuinely need offloading.  It also sweeps
the offload ratio (the DESIGN.md ablation) to show the overhead stays hidden.
"""

from repro.analysis.tables import (
    PAPER_TABLE4_CONFIGS,
    render_table4,
    table4_ultra_long_context,
)
from repro.constants import GIB
from repro.core.offload import OffloadPlanner
from repro.hardware.gpu import HOPPER_80GB


def test_table4_ultra_long_context(once):
    rows = once(table4_ultra_long_context)
    print()
    print(render_table4(rows))

    assert len(rows) == len(PAPER_TABLE4_CONFIGS)
    for row in rows:
        assert row.feasible, row
        assert row.mfu > 0.25
        assert row.peak_memory_gib <= 80.0
    by_model = {r.model: r for r in rows}
    assert by_model["mixtral-8x7b"].context_k == 4096
    assert by_model["llama-70b"].offload_ratio > 0.0


def test_offload_ratio_sweep(benchmark):
    """Ablation: overhead of increasing offload ratios on a Table-4-sized slice."""

    def sweep():
        planner = OffloadPlanner(HOPPER_80GB)
        peak, budget, slice_bytes, compute = 120 * GIB, 60 * GIB, 1.5 * GIB, 0.25
        return [
            planner.plan(peak, budget, slice_bytes, compute, ratio=ratio)
            for ratio in (0.25, 0.5, 0.75, 1.0)
        ]

    decisions = benchmark(sweep)
    print()
    for d in decisions:
        print(
            f"ratio {d.ratio:.2f}: resident {d.resident_bytes / GIB:5.1f} GiB, "
            f"transfer {d.transfer_seconds_per_slice * 1e3:5.1f} ms/slice, "
            f"exposed {d.exposed_seconds_per_slice * 1e3:5.1f} ms/slice"
        )
    # Resident memory falls monotonically; the transfers stay overlapped.
    residents = [d.resident_bytes for d in decisions]
    assert residents == sorted(residents, reverse=True)
    assert all(d.fully_overlapped for d in decisions)
    assert decisions[-1].feasible
