"""Figure 7 — imbalance bubbles caused by causal attention (and their removal).

Without context exchange, devices working on earlier slices idle while devices
holding later slices grind through larger KV caches; the simulated timeline
shows the extra bubbles, and enabling the exchange removes them.  This doubles
as the context-exchange ablation bench called out in DESIGN.md.
"""

from repro.analysis.figures import figure7_imbalance_bubbles


def test_figure7_imbalance_bubbles(once):
    result = once(
        figure7_imbalance_bubbles,
        sequence_length=256 * 1024,
        pipeline_parallel_size=4,
        num_slices=16,
        num_microbatches=2,
    )
    print()
    print(result.to_text())

    assert result.bubble_without_exchange > result.bubble_with_exchange
    assert result.makespan_without_exchange > result.makespan_with_exchange
    # The removed idle time is a meaningful share of the iteration.
    assert result.bubble_reduction > 0.05
