"""Fleet-simulator throughput and headline cluster metrics.

The fleet engine multiplexes every replica's continuous-batching loop over
one event heap, so its wall-clock cost is (total iterations) x (running
batch size) plus heap overhead.  These benchmarks time three representative
scenarios end to end and sanity-check the simulated cluster behaviour:
steady chat sustains its goodput, token-aware routing beats round-robin's
tail on heterogeneous traffic, and failover loses no requests.

Besides the pytest-benchmark timings, the module writes a machine-readable
``BENCH_fleet.json`` (override the path with ``$BENCH_FLEET_JSON``) so CI
can archive the perf trajectory per commit: simulator wall seconds,
simulated iterations per wall second and the headline serving metrics of
each scenario.
"""

import time

import pytest

from _bench_artifact import BenchArtifact
from repro.fleet import get_fleet_scenario, run_fleet_scenario

_ARTIFACT = BenchArtifact("BENCH_FLEET_JSON", "BENCH_fleet.json")


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write whatever the module's benchmarks recorded as one JSON artifact."""
    yield
    _ARTIFACT.write()


def _record(name, result, wall_seconds, **extra):
    _ARTIFACT.record(name, {
        "wall_seconds": wall_seconds,
        "iterations": result.iterations,
        "iterations_per_wall_second": result.iterations / max(wall_seconds, 1e-9),
        "num_requests": result.metrics.num_requests,
        "makespan": result.metrics.duration,
        "ttft_p99": result.metrics.ttft_p99,
        "goodput_fraction": result.metrics.goodput_fraction,
        "gpu_hours": result.fleet.gpu_hours,
        "replicas_peak": result.fleet.replicas_peak,
        "rerouted_requests": result.fleet.rerouted_requests,
        **extra,
    })


def test_fleet_steady_chat_throughput(once):
    scenario = get_fleet_scenario("steady-chat")
    start = time.perf_counter()
    result = once(run_fleet_scenario, scenario, seed=0)
    wall = time.perf_counter() - start
    _record("steady-chat", result, wall)
    print()
    print(result.to_text(title="steady-chat (benchmark)"))

    assert result.metrics.num_requests == len(scenario.make_trace(0))
    assert result.token_accounting_balanced
    assert result.metrics.goodput_fraction > 0.95
    assert result.iterations > 0


def test_fleet_fast_forward_speedup(once):
    """Decode fast-forwarding at fleet scale: >= 3x the naive event loop.

    steady-chat is the acceptance scenario: hundreds of overlapping decode
    phases across replicas, which is exactly the regime the pre-planned
    stretches coalesce.  The fast run goes first, so any process-global
    FLOPs ``lru_cache`` warm-up it pays for benefits the naive reference —
    the measured ratio is biased *against* the fast path; the outcomes must
    match exactly.
    """
    scenario = get_fleet_scenario("steady-chat")

    def both():
        fast_start = time.perf_counter()
        fast = run_fleet_scenario(scenario, seed=0)
        fast_wall = time.perf_counter() - fast_start
        naive_start = time.perf_counter()
        naive = run_fleet_scenario(scenario, seed=0, fast_forward=False)
        naive_wall = time.perf_counter() - naive_start
        return naive, naive_wall, fast, fast_wall

    naive, naive_wall, fast, fast_wall = once(both)
    speedup = naive_wall / max(fast_wall, 1e-9)
    _record(
        "steady-chat.fast-forward",
        fast,
        fast_wall,
        naive_wall_seconds=naive_wall,
        fast_forward_speedup=speedup,
    )
    print()
    print(f"naive        wall: {naive_wall:8.3f} s")
    print(f"fast-forward wall: {fast_wall:8.3f} s  ({speedup:.1f}x)")

    assert fast.iterations == naive.iterations
    assert fast.metrics.ttft_p99 == naive.metrics.ttft_p99
    assert fast.fleet.gpu_hours == naive.fleet.gpu_hours
    assert [r.finish_time for r in fast.records] == [
        r.finish_time for r in naive.records
    ]
    assert speedup >= 3.0


def test_fleet_token_aware_routing_tail_latency(once):
    scenario = get_fleet_scenario("hetero-mixed")

    def both():
        round_robin = run_fleet_scenario(scenario, router="round-robin", seed=0)
        start = time.perf_counter()
        least_tokens = run_fleet_scenario(scenario, router="least-tokens", seed=0)
        wall = time.perf_counter() - start
        return round_robin, least_tokens, wall

    round_robin, least_tokens, wall = once(both)
    _record("hetero-mixed.least-tokens", least_tokens, wall)
    print()
    print(f"round-robin  p99 TTFT: {round_robin.metrics.ttft_p99:8.2f} s")
    print(f"least-tokens p99 TTFT: {least_tokens.metrics.ttft_p99:8.2f} s")
    # Round-robin balances request *counts*; with a 32K-prompt heavy tail the
    # token imbalance lands whole bursts behind one long prefill.
    assert least_tokens.metrics.ttft_p99 < round_robin.metrics.ttft_p99


def test_fleet_failover_completes_every_request(once):
    scenario = get_fleet_scenario("unreliable")
    start = time.perf_counter()
    result = once(run_fleet_scenario, scenario, seed=0)
    wall = time.perf_counter() - start
    _record("unreliable", result, wall)

    assert result.fleet.crashes == 2
    assert result.fleet.slow_events == 1
    assert result.metrics.num_requests == len(scenario.make_trace(0))
    assert all(record.finished for record in result.records)
    assert result.token_accounting_balanced
