"""Ablation — uniform vs cost-balanced (TeraPipe-style) sequence slicing.

Section 4.1.1 argues for uniform slicing despite its attention imbalance: the
accumulated memory is better bounded and no slice becomes too short to keep
arithmetic intensity.  The ablation quantifies both effects against the
cost-balanced alternative (which equalises attention work by making later
slices shorter).
"""

from repro.core.slicing import balanced_cost_slices, slice_lengths, uniform_slices


def test_slicing_strategy_ablation(benchmark):
    sequence_length, num_slices = 256 * 1024, 16

    def build():
        return (
            uniform_slices(sequence_length, num_slices),
            balanced_cost_slices(sequence_length, num_slices),
        )

    uniform, balanced = benchmark(build)
    print()
    print(f"uniform slice lengths:  {slice_lengths(uniform)}")
    print(f"balanced slice lengths: {slice_lengths(balanced)}")

    # 1. Memory bound: the largest uniform slice is 1/n of the sequence; the
    #    cost-balanced first slice is several times larger.
    assert max(slice_lengths(uniform)) <= sequence_length // num_slices + 1
    assert max(slice_lengths(balanced)) > 3 * (sequence_length // num_slices)

    # 2. Arithmetic intensity: cost-balanced slicing produces short tail slices
    #    (the last one is ~(1 - sqrt((n-1)/n)) of the sequence, i.e. roughly
    #    half a uniform slice); uniform slicing never shrinks a slice.
    assert min(slice_lengths(balanced)) < 0.6 * (sequence_length // num_slices)
    assert min(slice_lengths(uniform)) >= sequence_length // num_slices

    # 3. The attention imbalance uniform slicing accepts (and context exchange
    #    then removes): last/first slice attention cost ratio ~ 2n - 1.
    uniform_costs = [s.attention_units() for s in uniform]
    balanced_costs = [s.attention_units() for s in balanced]
    assert max(uniform_costs) / min(uniform_costs) > num_slices
    assert max(balanced_costs) / min(balanced_costs) < 3.0
