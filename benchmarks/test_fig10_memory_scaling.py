"""Figure 10 — measured per-device memory vs the M_t / p theoretical curve.

Paper claim: with SlimPipe (max interleaving, vocabulary parallelism) the peak
memory of both the first and the last pipeline device follows M_t / p — nearly
all memory used in LLM training is distributed by PP.
"""

import pytest

from repro.analysis.figures import figure10_memory_scaling


def test_figure10_memory_scaling(once):
    result = once(
        figure10_memory_scaling,
        sequence_ks=(32, 64, 96),
        pipeline_sizes=(2, 4, 8),
        num_microbatches=2,
    )
    print()
    print(result.to_text())

    for row in result.rows:
        # Measured peaks track the theoretical curve within 25%.
        assert row.first_device_gib == pytest.approx(row.theoretical_gib, rel=0.25)
        assert row.last_device_gib == pytest.approx(row.theoretical_gib, rel=0.25)
    for seq_k in (32, 64, 96):
        rows = sorted(result.rows_for(seq_k), key=lambda r: r.pipeline_parallel_size)
        assert len(rows) >= 3
        # Near-inverse-proportional scaling with p.
        assert rows[0].first_device_gib / rows[-1].first_device_gib > 2.5
