"""Figure 9 — the output-layer GEMM bubble and vocabulary parallelism.

Assigning the vocabulary projection to the last pipeline device alone creates
a bubble in the middle of the pipeline; distributing it (and the fp32 loss
logits) across all devices removes the bubble.  This doubles as the
vocabulary-parallelism ablation bench called out in DESIGN.md.
"""

from repro.analysis.figures import figure9_vocab_parallel_bubble
from repro.core.planner import SlimPipeOptions, SlimPipePlanner
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B
from repro.parallel.config import ParallelConfig, WorkloadConfig


def test_figure9_vocab_parallel_bubble(once):
    result = once(
        figure9_vocab_parallel_bubble,
        sequence_length=128 * 1024,
        pipeline_parallel_size=4,
        num_slices=8,
    )
    print()
    print(result.to_text())

    assert result.speedup > 1.0
    assert result.bubble_vocab_parallel <= result.bubble_last_device_gemm


def test_vocab_parallel_memory_ablation(once):
    """Vocabulary parallelism also divides the last device's loss-logit memory."""

    def run(vocab_parallel):
        parallel = ParallelConfig(
            tensor_parallel_size=8, pipeline_parallel_size=4, num_slices=8
        )
        workload = WorkloadConfig(
            sequence_length=128 * 1024, tokens_per_iteration=2 * 128 * 1024
        )
        planner = SlimPipePlanner(
            LLAMA_13B,
            hopper_cluster(32),
            parallel,
            workload,
            SlimPipeOptions(vocab_parallel=vocab_parallel),
        )
        return planner.run()

    shared = once(run, True)
    classic = run(False)
    last_shared = shared.memory_profiles[-1].peak_activation_bytes
    last_classic = classic.memory_profiles[-1].peak_activation_bytes
    print()
    print(
        f"last-device activations: vocab-parallel {last_shared / 2**30:.2f} GiB "
        f"vs classic {last_classic / 2**30:.2f} GiB"
    )
    assert last_shared < last_classic
