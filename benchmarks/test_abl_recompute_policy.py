"""Ablation — recomputation policy under SlimPipe's memory budget.

The paper's core efficiency argument is indirect: because SlimPipe frees
activation memory, it can avoid full checkpointing where Megatron-LM cannot,
and avoided recomputation is avoided work.  This ablation pins the same
configuration and sweeps the recompute policy to show the compute cost of each
rung of the ladder.
"""

from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_70B
from repro.model.memory import RecomputeMode
from repro.parallel.config import ParallelConfig, WorkloadConfig
from repro.systems import SlimPipeSystem


def test_recompute_policy_ablation(once):
    cluster = hopper_cluster(128)
    workload = WorkloadConfig(
        sequence_length=128 * 1024, tokens_per_iteration=4 * 1024 * 1024
    )
    parallel = ParallelConfig(
        tensor_parallel_size=8,
        pipeline_parallel_size=8,
        data_parallel_size=2,
        num_slices=16,
    )

    def sweep():
        results = {}
        for mode in (RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL):
            system = SlimPipeSystem()
            system.recompute_ladder = (mode,)
            results[mode] = system.evaluate(LLAMA_70B, cluster, workload, parallel)
        return results

    results = once(sweep)
    print()
    for mode, est in results.items():
        label = f"{est.mfu * 100:.1f}% MFU, {est.peak_memory_gib:.1f} GiB" if est.feasible else "OOM"
        print(f"recompute={mode.value:<9} -> {label}")

    none, selective, full = (
        results[RecomputeMode.NONE],
        results[RecomputeMode.SELECTIVE],
        results[RecomputeMode.FULL],
    )
    assert none.feasible  # SlimPipe fits this point without any recomputation
    assert none.mfu > selective.mfu > full.mfu
    assert none.peak_memory_bytes > selective.peak_memory_bytes > full.peak_memory_bytes
