"""Figure 5 — SlimPipe in its interleaving form (2 stages per device).

Paper claim: uniform slicing and stage interleaving compose; the accumulated
activations and warm-up bubbles shrink further, and the pipeline works with
only 2 microbatches where classic interleaved 1F1B needs at least p.
"""

from repro.analysis.figures import (
    figure4_schedule_structure,
    figure5_interleaved_schedule,
)


def test_figure5_interleaved_schedule(benchmark):
    result = benchmark(figure5_interleaved_schedule)
    print()
    print(result.to_text())

    plain = figure4_schedule_structure(
        pipeline_parallel_size=result.num_devices,
        num_microbatches=result.num_microbatches,
        num_slices=result.num_slices,
    )
    assert result.stages_per_device == 2
    assert result.num_microbatches == 2  # fewer microbatches than the PP size
    assert (
        result.accumulated_fraction_of_microbatch
        < plain.accumulated_fraction_of_microbatch
    )
