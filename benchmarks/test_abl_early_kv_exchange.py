"""Ablation — early key-value exchange (Section 5).

Context exchange adds communication; the early key-value exchange optimisation
sends the *first* slices' keys/values ahead of time so the traffic overlaps
with compute.  The ablation compares SlimPipe with the exchange traffic fully
overlapped (early KV exchange on) against fully exposed (off).
"""

from repro.core.planner import SlimPipeOptions, SlimPipePlanner
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B
from repro.parallel.config import ParallelConfig, WorkloadConfig


def _run(early_kv_exchange: bool):
    parallel = ParallelConfig(
        tensor_parallel_size=8, pipeline_parallel_size=4, num_slices=16
    )
    workload = WorkloadConfig(
        sequence_length=256 * 1024, tokens_per_iteration=2 * 256 * 1024
    )
    planner = SlimPipePlanner(
        LLAMA_13B,
        hopper_cluster(32),
        parallel,
        workload,
        SlimPipeOptions(context_exchange=True, early_kv_exchange=early_kv_exchange),
    )
    return planner.run()


def test_early_kv_exchange_ablation(once):
    overlapped = once(_run, True)
    exposed = _run(False)
    print()
    print(
        f"iteration time: early-KV-exchange on {overlapped.iteration_time:.2f}s, "
        f"off {exposed.iteration_time:.2f}s "
        f"({exposed.iteration_time / overlapped.iteration_time:.3f}x slower without overlap)"
    )
    assert exposed.iteration_time > overlapped.iteration_time
    assert overlapped.mfu > exposed.mfu
    # Even fully exposed, Eq. 2 bounds the damage to a few percent.
    assert exposed.iteration_time < overlapped.iteration_time * 1.15
