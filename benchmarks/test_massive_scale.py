"""Million-request scale: streaming throughput and bounded peak memory.

The ``massive-*`` scenarios stream their workloads (``retain_records=False``):
arrivals are generated lazily, finished requests fold into a bounded
:class:`~repro.serving.StreamingMetrics` accumulator and their per-request
state is dropped.  These benchmarks pin the two properties that make the
family usable at million-request scale:

* **throughput** — a 100k-request slice of ``massive-chat`` must simulate at
  >= 200k requests per wall-clock minute (measured *without* tracemalloc,
  which alone slows the loop several-fold), and
* **bounded memory** — peak tracemalloc memory must be flat as the trace
  grows: a 50k-request run may not peak more than 1.5x a 10k-request run,
  and both must stay under an absolute ceiling.  The runs are warmed first
  so the process-global FLOPs caches don't shadow the engine's own
  footprint; the comparison sizes both exceed the per-pool pricing memo's
  clear threshold so the bounded caches are saturated on both sides.

The full 1M-request acceptance run — same gates, whole trace — is opt-in
behind ``REPRO_MASSIVE_FULL=1`` (the traced arm alone costs ~15 minutes).

Rows land in ``BENCH_massive.json`` (override with ``$BENCH_MASSIVE_JSON``)
so CI can archive the trajectory and ``bench_delta.py --gate`` can hold the
line on wall-clock, goodput and ``peak_tracemalloc_mb``.
"""

import gc
import os
import time
import tracemalloc

import pytest

from _bench_artifact import BenchArtifact
from repro.model import costs as model_costs
from repro.model import flops as model_flops
from repro.serving import get_scenario, run_scenario
from repro.serving import engine as serving_engine

_ARTIFACT = BenchArtifact("BENCH_MASSIVE_JSON", "BENCH_massive.json")

# Minimum simulated requests per wall-clock minute for massive-chat slices.
MIN_REQUESTS_PER_MINUTE = 200_000
# Peak traced memory of the larger arm may not exceed this multiple of the
# smaller arm's peak (observed ratio ~1.1 with generous slack for allocator
# noise), nor this absolute ceiling (observed peaks ~6 MB).
MAX_MEMORY_GROWTH = 1.5
MAX_PEAK_MB = 64.0


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    _ARTIFACT.write()
    # The 100k+ slices fill the process-global pricing caches with ~10^5
    # long-lived entries, which makes every later gen-2 GC pass expensive
    # and can shave the wall-clock ratios other benchmark modules assert
    # (file order puts this module before test_serving_throughput).  Leave
    # the process as this module found it.
    serving_engine._decode_flops_cached.cache_clear()
    serving_engine._prefill_flops_cached.cache_clear()
    model_flops.layer_forward_flops.cache_clear()
    model_flops.output_layer_flops.cache_clear()
    model_flops.model_forward_flops.cache_clear()
    model_costs._layer_pass_time_cached.cache_clear()
    model_costs._output_layer_time_cached.cache_clear()
    gc.collect()


def _record(name, result, wall_seconds, num_requests, **extra):
    metrics = result.metrics
    _ARTIFACT.record(name, {
        "wall_seconds": wall_seconds,
        "num_requests": num_requests,
        "requests_per_wall_minute": num_requests / max(wall_seconds, 1e-9) * 60.0,
        "iterations": result.iterations,
        "makespan": metrics.duration,
        "ttft_p99": metrics.ttft_p99,
        "tpot_p50": metrics.tpot_p50,
        "goodput_fraction": metrics.goodput_fraction,
        "preemptions": result.preemptions,
        **extra,
    })


def _traced_peak_mb(scenario, max_requests):
    """Peak tracemalloc MB over one streamed slice, globals pre-warmed."""
    run_scenario(scenario, max_requests=2_000)
    tracemalloc.start()
    try:
        result = run_scenario(scenario, max_requests=max_requests)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6, result


def test_massive_chat_throughput_100k(once):
    """A 100k-request massive-chat slice streams at >= 200k requests/min."""
    scenario = get_scenario("massive-chat")

    def run():
        start = time.perf_counter()
        result = run_scenario(scenario, max_requests=100_000)
        return result, time.perf_counter() - start

    result, wall = once(run)
    per_minute = 100_000 / wall * 60.0
    _record("massive-chat.100k", result, wall, 100_000)
    print()
    print(f"wall: {wall:8.1f} s  ({per_minute:,.0f} requests/min)")
    print(result.metrics.to_text(title="massive-chat | 100k slice (streamed)"))

    assert not result.records, "streaming run must not retain per-request records"
    assert not result.retain_records
    assert result.metrics.num_requests == 100_000
    assert result.metrics.goodput_fraction >= 0.99
    assert per_minute >= MIN_REQUESTS_PER_MINUTE


def test_massive_chat_memory_bounded(once):
    """Peak traced memory is flat in trace length: 50k peaks ~ 10k peaks."""
    scenario = get_scenario("massive-chat")

    def run():
        start = time.perf_counter()
        small_mb, small = _traced_peak_mb(scenario, 10_000)
        large_mb, large = _traced_peak_mb(scenario, 50_000)
        return small_mb, small, large_mb, large, time.perf_counter() - start

    small_mb, small, large_mb, large, wall = once(run)
    _record(
        "massive-chat.memory-50k",
        large,
        wall,
        50_000,
        peak_tracemalloc_mb=large_mb,
        peak_tracemalloc_mb_10k=small_mb,
        memory_growth=large_mb / max(small_mb, 1e-9),
    )
    print()
    print(f"peak traced: 10k={small_mb:6.2f} MB   50k={large_mb:6.2f} MB   "
          f"(x{large_mb / max(small_mb, 1e-9):.2f})")

    assert small.metrics.goodput_fraction >= 0.99
    assert large.metrics.goodput_fraction >= 0.99
    assert large_mb <= small_mb * MAX_MEMORY_GROWTH
    assert large_mb <= MAX_PEAK_MB


@pytest.mark.parametrize("name", ["massive-diurnal", "massive-week"])
def test_massive_rate_curves_smoke(once, name):
    """The diurnal/weekly families stream a slice sustainably."""
    scenario = get_scenario(name)

    def run():
        start = time.perf_counter()
        result = run_scenario(scenario, max_requests=1_500)
        return result, time.perf_counter() - start

    result, wall = once(run)
    _record(f"{name}.1500", result, wall, 1_500)
    print()
    print(result.metrics.to_text(title=f"{name} | 1500 slice (streamed)"))

    assert not result.records
    assert result.metrics.num_requests == 1_500
    assert result.metrics.goodput_fraction >= 0.99


@pytest.mark.skipif(
    os.environ.get("REPRO_MASSIVE_FULL") != "1",
    reason="full 1M-request acceptance run; opt in with REPRO_MASSIVE_FULL=1",
)
def test_massive_chat_full_million(once):
    """The acceptance gate itself: 1M requests, single process.

    Wall throughput is gated on the untraced run; the traced arm re-runs
    the full trace under tracemalloc and must peak within
    ``MAX_MEMORY_GROWTH`` of a traced 100k run — memory flat over a 10x
    trace-length spread.
    """
    scenario = get_scenario("massive-chat")

    def run():
        start = time.perf_counter()
        result = run_scenario(scenario)
        wall = time.perf_counter() - start
        base_mb, _ = _traced_peak_mb(scenario, 100_000)
        full_mb, traced = _traced_peak_mb(scenario, None)
        return result, wall, base_mb, full_mb, traced

    result, wall, base_mb, full_mb, traced = once(run)
    per_minute = 1_000_000 / wall * 60.0
    _record(
        "massive-chat.1m",
        result,
        wall,
        1_000_000,
        peak_tracemalloc_mb=full_mb,
        peak_tracemalloc_mb_100k=base_mb,
        memory_growth=full_mb / max(base_mb, 1e-9),
    )
    print()
    print(f"wall: {wall:8.1f} s  ({per_minute:,.0f} requests/min)")
    print(f"peak traced: 100k={base_mb:6.2f} MB   1M={full_mb:6.2f} MB")
    print(result.metrics.to_text(title="massive-chat | 1M requests (streamed)"))

    assert not result.records
    assert result.metrics.num_requests == 1_000_000
    assert result.metrics.goodput_fraction >= 0.99
    assert per_minute >= MIN_REQUESTS_PER_MINUTE
    assert traced.metrics.num_requests == 1_000_000
    assert full_mb <= base_mb * MAX_MEMORY_GROWTH
    assert full_mb <= MAX_PEAK_MB
