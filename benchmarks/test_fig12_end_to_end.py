"""Figure 12 — end-to-end MFU: DeepSpeed vs Megatron-LM vs SlimPipe.

The paper's headline grid (4 models x 4 context lengths x 128/256/512 GPUs,
4M tokens per iteration, configurations baked through grid search).  The
benchmark regenerates a representative slice of the grid — Llama 70B and
Mixtral 8x7B on 128 and 256 GPUs — and checks the paper's three claims:

* SlimPipe is feasible everywhere and never slower than the baselines,
* its advantage over Megatron-LM widens as the context grows,
* the baselines hit OOM / no-viable-configuration walls at long context.
"""

from repro.analysis.figures import figure12_end_to_end
from repro.model.config import LLAMA_70B, MIXTRAL_8X7B


def test_figure12_end_to_end(once):
    result = once(
        figure12_end_to_end,
        models=(LLAMA_70B, MIXTRAL_8X7B),
        gpu_counts=(128, 256),
        sequence_ks=(64, 128, 256, 512),
    )
    print()
    print(result.to_text())
    print("speedup over Megatron-LM (Llama 70B, 128 GPUs):")
    for seq_k in (64, 128, 256, 512):
        speedup = result.speedup_over_megatron("llama-70b", 128, seq_k)
        print(f"  {seq_k}K: {speedup:.2f}x" if speedup else f"  {seq_k}K: baseline infeasible")

    # SlimPipe always runs and always wins (or ties) against feasible baselines.
    for cell in result.cells:
        if cell.system != "slimpipe":
            continue
        assert cell.feasible, f"SlimPipe infeasible at {cell}"
        for baseline in ("megatron-lm", "deepspeed"):
            other = result.cell(cell.model, cell.num_gpus, cell.sequence_k, baseline)
            if other.feasible:
                assert cell.mfu >= other.mfu * 0.999

    # The advantage over Megatron-LM widens with context length (Llama 70B).
    s64 = result.speedup_over_megatron("llama-70b", 128, 64)
    s256 = result.speedup_over_megatron("llama-70b", 128, 256)
    assert s64 is not None and s256 is not None and s256 > s64

    # Baseline failure modes at 512K on 128 GPUs, as annotated in the figure.
    assert not result.cell("llama-70b", 128, 512, "megatron-lm").feasible
    assert not result.cell("llama-70b", 128, 512, "deepspeed").feasible
