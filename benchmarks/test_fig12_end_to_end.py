"""Figure 12 — end-to-end MFU: DeepSpeed vs Megatron-LM vs SlimPipe.

The paper's headline grid (4 models x 4 context lengths x 128/256/512 GPUs,
4M tokens per iteration, configurations baked through grid search).  The
benchmark regenerates a representative slice of the grid — Llama 70B and
Mixtral 8x7B on 128 and 256 GPUs — and checks the paper's three claims:

* SlimPipe is feasible everywhere and never slower than the baselines,
* its advantage over Megatron-LM widens as the context grows,
* the baselines hit OOM / no-viable-configuration walls at long context.

The second test drives the same grid through the sweep engine
(``repro.sweep``): serially, fanned out over four worker processes, and
again against a warm on-disk cache, asserting that the three runs agree
cell-for-cell, that the warm re-run is an order of magnitude cheaper, and —
when the machine actually has the cores — that four workers beat serial by
at least 2x.
"""

import os
import time

from repro.analysis.figures import figure12_end_to_end
from repro.model.config import LLAMA_70B, MIXTRAL_8X7B
from repro.sweep import SweepCache

_FIG12_KWARGS = dict(
    models=(LLAMA_70B, MIXTRAL_8X7B),
    gpu_counts=(128, 256),
    sequence_ks=(64, 128, 256, 512),
)


def test_figure12_end_to_end(once):
    result = once(figure12_end_to_end, **_FIG12_KWARGS)
    print()
    print(result.to_text())
    print("speedup over Megatron-LM (Llama 70B, 128 GPUs):")
    for seq_k in (64, 128, 256, 512):
        speedup = result.speedup_over_megatron("llama-70b", 128, seq_k)
        print(f"  {seq_k}K: {speedup:.2f}x" if speedup else f"  {seq_k}K: baseline infeasible")

    # SlimPipe always runs and always wins (or ties) against feasible baselines.
    for cell in result.cells:
        if cell.system != "slimpipe":
            continue
        assert cell.feasible, f"SlimPipe infeasible at {cell}"
        for baseline in ("megatron-lm", "deepspeed"):
            other = result.cell(cell.model, cell.num_gpus, cell.sequence_k, baseline)
            if other.feasible:
                assert cell.mfu >= other.mfu * 0.999

    # The advantage over Megatron-LM widens with context length (Llama 70B).
    s64 = result.speedup_over_megatron("llama-70b", 128, 64)
    s256 = result.speedup_over_megatron("llama-70b", 128, 256)
    assert s64 is not None and s256 is not None and s256 > s64

    # Baseline failure modes at 512K on 128 GPUs, as annotated in the figure.
    assert not result.cell("llama-70b", 128, 512, "megatron-lm").feasible
    assert not result.cell("llama-70b", 128, 512, "deepspeed").feasible


def _cells(result):
    return [
        (c.model, c.num_gpus, c.sequence_k, c.system, c.feasible, c.reason, c.mfu)
        for c in result.cells
    ]


def _available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):  # Linux; respects cgroup/CPU pinning
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed(**kwargs):
    t0 = time.perf_counter()
    result = figure12_end_to_end(**_FIG12_KWARGS, **kwargs)
    return time.perf_counter() - t0, result


def test_figure12_sweep_parallel_speedup_and_warm_cache(tmp_path):
    """The fig12 grid through the sweep engine: serial vs 4 workers vs cache."""
    t_serial, serial = _timed()
    cache = SweepCache(tmp_path)
    t_cold, cold = _timed(workers=4, cache=cache)
    t_warm, warm = _timed(workers=4, cache=cache)

    print(
        f"\nfig12 sweep: serial {t_serial:.2f}s, 4 workers cold {t_cold:.2f}s, "
        f"warm cache {t_warm:.3f}s"
    )

    # Worker processes and the cache must not change a single cell.
    assert _cells(serial) == _cells(cold) == _cells(warm)

    # A warm cache turns the sweep into a file read.
    assert t_warm < 0.25 * t_cold
    assert t_warm < 0.25 * t_serial

    # The parallel speedup claim needs actual cores to stand on; with fewer
    # than four the pool degenerates to time-slicing the same CPUs.  One
    # re-measurement absorbs noisy-neighbor interference on shared runners.
    if _available_cpus() >= 4:
        best = t_serial / t_cold
        for _ in range(2):
            if best >= 2.0:
                break
            t_s, _ = _timed()
            t_p, _ = _timed(workers=4)
            best = max(best, t_s / t_p)
        assert best >= 2.0, (
            f"expected >= 2x speedup with 4 workers; best observed {best:.2f}x"
        )
