"""Figure 1 — GPU memory footprint of Classic PP vs SlimPipe across PP sizes.

Paper claim: model-state memory shrinks with the pipeline size for both
approaches, but only SlimPipe's activation memory shrinks with it too; classic
PP's activation footprint stays constant.
"""

from repro.analysis.figures import figure1_memory_footprint


def test_figure1_memory_footprint(benchmark):
    result = benchmark(figure1_memory_footprint)
    print()
    print(result.to_text())

    rows = {r.pipeline_parallel_size: r for r in result.rows}
    smallest, largest = min(rows), max(rows)
    # Classic PP: constant activations; SlimPipe: ~1/p scaling.
    assert rows[largest].classic_activation_gib > 0.9 * rows[smallest].classic_activation_gib
    assert rows[largest].slimpipe_activation_gib < rows[smallest].slimpipe_activation_gib / (
        largest / smallest / 2
    )
    # Model states shrink for both (shared pipeline behaviour).
    assert rows[largest].model_state_gib < rows[smallest].model_state_gib
