"""Figure 6 — how the number of slices drives activation memory and bubbles.

Paper claims: (a) activation memory falls from 1 towards 1/p of a microbatch
as n grows, for every PP size; (b) the bubble fraction falls towards zero as n
grows, for every microbatch count.
"""

from repro.analysis.figures import figure6_slices_sweep


def test_figure6_slices_sweep(benchmark):
    result = benchmark(figure6_slices_sweep)
    print()
    print(result.to_text())

    # (a) monotone decrease towards 1/p for every pipeline size.
    by_p = {}
    for row in result.activation_rows:
        by_p.setdefault(row.pipeline_parallel_size, []).append(row)
    for p, series in by_p.items():
        series.sort(key=lambda r: r.num_slices)
        fractions = [r.activation_fraction for r in series]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] < 1.5 / p

    # (b) monotone decrease towards zero for every microbatch count.
    by_m = {}
    for row in result.bubble_rows:
        by_m.setdefault(row.num_microbatches, []).append(row)
    for m, series in by_m.items():
        series.sort(key=lambda r: r.num_slices)
        fractions = [r.bubble_fraction for r in series]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] < 0.1
