"""Aggregate per-request span chains into tail attribution and run diffs.

:mod:`repro.obs.critical_path` explains one request; this module explains a
*population*: where the p99 TTFT of a run actually went ("61% queue-wait,
24% prefill, …"), and why a latency quantile moved between two runs of
different configurations (prefix caching on/off, a router swap, a failure
plan).  Everything is derived from :class:`RequestAttribution` objects, so
it works identically on live recorders and on reloaded JSONL streams.

Shares are computed over span *durations*, which tile the measured latency
exactly (see the conservation oracle), so a table's seconds column sums to
the latency it decomposes up to float addition order — the exactness
guarantee lives at the span level, aggregation is ordinary arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .critical_path import (
    CRASH_REQUEUE,
    DECODE,
    DECODE_QUEUE,
    KV_HANDOFF,
    PREEMPT_REQUEUE,
    PREFILL_SPAN,
    QUEUE,
    REPREFILL,
    SLOW_NODE,
    RequestAttribution,
)

__all__ = [
    "SPAN_ORDER",
    "TailAttribution",
    "RunDiff",
    "mean_breakdown",
    "tail_attribution",
    "diff_attributions",
]

#: Canonical display order of span buckets (tables stay stable as buckets
#: appear and disappear between runs).
SPAN_ORDER: Tuple[str, ...] = (
    QUEUE,
    PREFILL_SPAN,
    DECODE,
    PREEMPT_REQUEUE,
    REPREFILL,
    CRASH_REQUEUE,
    SLOW_NODE,
    KV_HANDOFF,
    DECODE_QUEUE,
)


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile — same arithmetic as serving metrics."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _metric_value(attr: RequestAttribution, metric: str) -> float:
    if metric == "ttft":
        return attr.ttft
    if metric == "e2e":
        return attr.e2e_latency
    raise ValueError(f"unknown attribution metric {metric!r} (ttft or e2e)")


def _accumulate(
    attrs: Iterable[RequestAttribution], metric: str
) -> Tuple[Dict[str, float], int]:
    """Sum per-kind seconds over requests (TTFT cuts at the first token)."""
    totals: Dict[str, float] = {}
    count = 0
    for attr in attrs:
        count += 1
        for kind, seconds in attr.breakdown(
            until_first_token=(metric == "ttft")
        ).items():
            totals[kind] = totals.get(kind, 0.0) + seconds
    return totals, count


def _ordered(totals: Dict[str, float]) -> Dict[str, float]:
    tail = sorted(k for k in totals if k not in SPAN_ORDER)
    return {
        kind: totals[kind]
        for kind in (*SPAN_ORDER, *tail)
        if kind in totals
    }


def mean_breakdown(
    attributions: Dict[int, RequestAttribution], metric: str = "ttft"
) -> Dict[str, float]:
    """Mean seconds per span kind over all finished requests."""
    finished = [a for a in attributions.values() if a.finished]
    totals, count = _accumulate(finished, metric)
    if count == 0:
        return {}
    return _ordered({kind: seconds / count for kind, seconds in totals.items()})


@dataclass
class TailAttribution:
    """Where the tail of one latency metric went, by span kind."""

    metric: str
    quantile: float
    threshold: float                #: metric value at the quantile
    request_ids: List[int]          #: requests at/above the threshold
    totals: Dict[str, float]        #: summed seconds per kind over the tail
    shares: Dict[str, float]        #: totals normalised to fractions
    mean: Dict[str, float] = field(default_factory=dict)  #: all-request mean


def tail_attribution(
    attributions: Dict[int, RequestAttribution],
    metric: str = "ttft",
    quantile: float = 99.0,
) -> TailAttribution:
    """Decompose the requests at/above a latency quantile by span kind."""
    finished = [a for a in attributions.values() if a.finished]
    if not finished:
        raise ValueError("no finished requests to attribute")
    threshold = _percentile([_metric_value(a, metric) for a in finished], quantile)
    tail = [a for a in finished if _metric_value(a, metric) >= threshold]
    totals, _ = _accumulate(tail, metric)
    grand = sum(totals.values())
    shares = (
        {kind: seconds / grand for kind, seconds in totals.items()}
        if grand > 0.0
        else {kind: 0.0 for kind in totals}
    )
    return TailAttribution(
        metric=metric,
        quantile=quantile,
        threshold=threshold,
        request_ids=sorted(a.request_id for a in tail),
        totals=_ordered(totals),
        shares=_ordered(shares),
        mean=mean_breakdown(attributions, metric),
    )


@dataclass
class RunDiff:
    """Why one latency quantile moved between a baseline and a current run."""

    metric: str
    quantile: float
    baseline_value: float
    current_value: float
    span_deltas: Dict[str, float]      #: current minus baseline mean seconds
    baseline_mean: Dict[str, float]
    current_mean: Dict[str, float]
    baseline_prefix_tokens: float      #: mean prefix-cache tokens per request
    current_prefix_tokens: float

    @property
    def delta(self) -> float:
        return self.current_value - self.baseline_value

    def dominant(self) -> Optional[str]:
        """The span kind contributing the largest absolute mean shift."""
        if not self.span_deltas:
            return None
        return max(self.span_deltas, key=lambda kind: abs(self.span_deltas[kind]))


def diff_attributions(
    baseline: Dict[int, RequestAttribution],
    current: Dict[int, RequestAttribution],
    metric: str = "ttft",
    quantile: float = 50.0,
) -> RunDiff:
    """Attribute a quantile shift between two runs to span-kind mean shifts.

    The quantile locates *how much* the metric moved; the per-kind mean
    breakdown (over all finished requests of each run) locates *where* the
    time moved, which is robust to the two runs tailing on different
    individual requests.
    """

    def value(attrs: Dict[int, RequestAttribution]) -> float:
        finished = [a for a in attrs.values() if a.finished]
        if not finished:
            raise ValueError("no finished requests to diff")
        return _percentile([_metric_value(a, metric) for a in finished], quantile)

    def prefix_mean(attrs: Dict[int, RequestAttribution]) -> float:
        finished = [a for a in attrs.values() if a.finished]
        if not finished:
            return 0.0
        return sum(a.prefix_cached_tokens for a in finished) / len(finished)

    base_mean = mean_breakdown(baseline, metric)
    curr_mean = mean_breakdown(current, metric)
    deltas = {
        kind: curr_mean.get(kind, 0.0) - base_mean.get(kind, 0.0)
        for kind in {*base_mean, *curr_mean}
    }
    ordered_tail = sorted(k for k in deltas if k not in SPAN_ORDER)
    span_deltas = {
        kind: deltas[kind]
        for kind in (*SPAN_ORDER, *ordered_tail)
        if kind in deltas
    }
    return RunDiff(
        metric=metric,
        quantile=quantile,
        baseline_value=value(baseline),
        current_value=value(current),
        span_deltas=span_deltas,
        baseline_mean=base_mean,
        current_mean=curr_mean,
        baseline_prefix_tokens=prefix_mean(baseline),
        current_prefix_tokens=prefix_mean(current),
    )
