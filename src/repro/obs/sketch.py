"""Streaming quantile estimation: the P² (piecewise-parabolic) sketch.

ROADMAP item 1 wants million-request traces without retaining full sample
lists; the classic P² algorithm (Jain & Chlamtac, CACM 1985) estimates one
quantile in O(1) memory by maintaining five *markers* — the minimum, the
maximum, the target quantile and the two intermediate quantiles halfway to
each extreme — and nudging the middle three toward their desired rank
positions with a piecewise-parabolic (hence P²) height adjustment on every
observation.

Accuracy contract (pinned by ``tests/test_obs_sketch.py``):

* with five or fewer observations the estimate is **exact** (the sketch
  simply interpolates its sorted buffer with the same linear-interpolation
  convention as :func:`repro.serving.metrics.percentile`);
* beyond that the estimate is approximate; for well-behaved distributions
  (uniform, normal) on thousands of samples the error is well under 1% of
  the sample range, and the estimate is always bounded by the observed
  min/max.  Adversarial orderings (sorted streams, heavy duplication) can
  do much worse — the documented worst-case bound the tests pin is a
  combined rank/value window: the estimate of quantile ``q`` over ``n``
  samples lies between the exact quantiles at ``q ± (0.15 + 3/n)``,
  further widened by ``(0.35 + 1/n)`` of the observed sample range.

The sketch is deterministic (no sampling), so identical input streams give
identical estimates regardless of timing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["P2Quantile", "QuantileSketch"]


def _interpolate(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a sorted sample (``q`` in [0, 1]).

    Bit-identical arithmetic to
    :meth:`repro.serving.metrics.PercentileSummary.at` so that exact and
    sketched small-sample reads agree to the last ulp.
    """
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class P2Quantile:
    """One streaming quantile estimate in constant memory (five markers)."""

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.count = 0
        # Until five observations arrive, ``_heights`` is the sorted sample
        # buffer; afterwards it holds the five marker heights.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: Tuple[float, ...] = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def add(self, value: float) -> None:
        """Observe one sample."""
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            if self.count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            return
        positions = self._positions
        # Locate the cell the new sample falls into, stretching the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        increments = self._increments
        for index in range(5):
            desired[index] += increments[index]
        # Nudge the three interior markers toward their desired positions.
        for index in range(1, 4):
            delta = desired[index] - positions[index]
            below = positions[index] - positions[index - 1]
            above = positions[index + 1] - positions[index]
            if (delta >= 1.0 and above > 1.0) or (delta <= -1.0 and below > 1.0):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step
        return

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + (step / span) * (
            (positions[index] - positions[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - step)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        other = index + int(step)
        return heights[index] + step * (heights[other] - heights[index]) / (
            positions[other] - positions[index]
        )

    def value(self) -> float:
        """Current estimate of the ``q`` quantile; exact for <= 5 samples."""
        if self.count == 0:
            raise ValueError(f"p{self.q * 100:g} sketch has no samples")
        if self.count <= 5:
            return _interpolate(self._heights, self.q)
        return self._heights[2]


class QuantileSketch:
    """A bundle of P² quantiles plus exact count/sum/min/max for one metric.

    The streaming replacement for "append every sample, sort at the end":
    constant memory, one pass, deterministic.  ``quantiles`` are fractions
    in (0, 1) — the default matches the p50/p95/p99 the aggregate metrics
    report.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_sketches")

    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._sketches = [P2Quantile(q) for q in quantiles]

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for sketch in self._sketches:
            sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        for sketch in self._sketches:
            if sketch.q == q:
                return sketch.value()
        raise KeyError(f"{self.name}: no p{q * 100:g} sketch configured")

    def summary(self) -> Dict[str, float]:
        """JSON-friendly summary: count, mean, min/max, every quantile."""
        if self.count == 0:
            return {"count": 0}
        payload: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for sketch in self._sketches:
            payload[f"p{sketch.q * 100:g}"] = sketch.value()
        return payload
