"""Shared Chrome trace-event JSON scaffolding.

Both trace exporters — the pipeline timeline exporter
(:mod:`repro.sim.trace`) and the serving/fleet event-stream exporter
(:mod:`repro.obs.trace`) — emit the same ``chrome://tracing`` / Perfetto
JSON dialect: a flat ``traceEvents`` list of metadata (``ph: "M"``),
complete (``"X"``), counter (``"C"``), instant (``"i"``) and async
(``"b"``/``"e"``/``"n"``) events inside a ``displayTimeUnit`` container.
This module is the one place that dialect is spelled out; the exporters
only decide *which* events to emit.

Times are simulated seconds everywhere in the repo; ``time_unit_us``
scales them into trace microseconds (the default maps one simulated
second to one trace second).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "process_name_event",
    "thread_name_event",
    "complete_event",
    "counter_event",
    "instant_event",
    "async_begin_event",
    "async_end_event",
    "async_instant_event",
    "trace_container",
    "write_trace",
]


def process_name_event(pid: int, name: str) -> Dict:
    """``process_name`` metadata: labels one pid row group in the viewer."""
    return {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}


def thread_name_event(pid: int, tid: int, name: str) -> Dict:
    """``thread_name`` metadata: labels one track inside a process group."""
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}}


def complete_event(
    name: str,
    pid: int,
    tid: int,
    start: float,
    duration: float,
    time_unit_us: float,
    cat: Optional[str] = None,
    args: Optional[Dict] = None,
) -> Dict:
    """A ``"X"`` span: one box on a track, from ``start`` for ``duration``."""
    event: Dict = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start * time_unit_us,
        "dur": duration * time_unit_us,
    }
    if cat is not None:
        event["cat"] = cat
    if args is not None:
        event["args"] = args
    return event


def counter_event(
    name: str, pid: int, time: float, value: float, time_unit_us: float
) -> Dict:
    """A ``"C"`` sample: one point of a counter track named ``name``."""
    return {
        "name": name,
        "ph": "C",
        "pid": pid,
        "tid": 0,
        "ts": time * time_unit_us,
        "args": {"value": value},
    }


def instant_event(
    name: str,
    pid: int,
    tid: int,
    time: float,
    time_unit_us: float,
    args: Optional[Dict] = None,
) -> Dict:
    """A ``"i"`` marker (global scope): a vertical tick at one instant."""
    event: Dict = {
        "name": name,
        "ph": "i",
        "s": "g",
        "pid": pid,
        "tid": tid,
        "ts": time * time_unit_us,
    }
    if args is not None:
        event["args"] = args
    return event


def _async_event(
    ph: str,
    name: str,
    cat: str,
    pid: int,
    event_id: int,
    time: float,
    time_unit_us: float,
    args: Optional[Dict] = None,
) -> Dict:
    event: Dict = {
        "name": name,
        "cat": cat,
        "ph": ph,
        "id": event_id,
        "pid": pid,
        "tid": 0,
        "ts": time * time_unit_us,
    }
    if args is not None:
        event["args"] = args
    return event


def async_begin_event(
    name: str, cat: str, pid: int, event_id: int, time: float, time_unit_us: float,
    args: Optional[Dict] = None,
) -> Dict:
    """Open one async lifeline (``"b"``); pair with :func:`async_end_event`."""
    return _async_event("b", name, cat, pid, event_id, time, time_unit_us, args)


def async_end_event(
    name: str, cat: str, pid: int, event_id: int, time: float, time_unit_us: float,
    args: Optional[Dict] = None,
) -> Dict:
    """Close one async lifeline (``"e"``) opened under the same (cat, id)."""
    return _async_event("e", name, cat, pid, event_id, time, time_unit_us, args)


def async_instant_event(
    name: str, cat: str, pid: int, event_id: int, time: float, time_unit_us: float,
    args: Optional[Dict] = None,
) -> Dict:
    """A ``"n"`` marker pinned onto an open async lifeline."""
    return _async_event("n", name, cat, pid, event_id, time, time_unit_us, args)


def trace_container(events: List[Dict]) -> Dict:
    """Wrap an event list in the top-level Chrome trace JSON object."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(trace: Dict, path: str) -> str:
    """Serialise one trace container to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return path
