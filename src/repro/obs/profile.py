"""Self-profiling of the simulator's own wall-clock, per engine phase.

Simulated time is deterministic; *host* time spent producing it is not, and
future performance PRs need to know where it goes.  The
:class:`PhaseProfiler` is a dict of phase name → (calls, total seconds)
fed by ``time.perf_counter()`` pairs at the engines' phase boundaries
(admission, pricing, fast-forward, eviction, commit, routing).  It is
attached to an :class:`~repro.obs.events.EventRecorder` only when the
recorder is created with ``profile=True``, and its numbers never enter the
event stream or any simulated metric — they are wall-clock, hence
nondeterministic, hence reported strictly out-of-band.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates host wall-clock per named engine phase."""

    __slots__ = ("phases",)

    #: Re-exported so instrumentation sites need one attribute lookup.
    clock = staticmethod(perf_counter)

    def __init__(self) -> None:
        self.phases: Dict[str, List[float]] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall-clock to ``phase``."""
        entry = self.phases.get(phase)
        if entry is None:
            self.phases[phase] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def total_seconds(self) -> float:
        return sum(entry[1] for entry in self.phases.values())

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """(phase, calls, seconds, fraction) rows, largest first."""
        total = self.total_seconds()
        return [
            (phase, int(entry[0]), entry[1], entry[1] / total if total > 0 else 0.0)
            for phase, entry in sorted(
                self.phases.items(), key=lambda item: -item[1][1]
            )
        ]
