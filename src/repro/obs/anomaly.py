"""Streaming anomaly detection over windowed time series.

Detectors consume the uniform window axis of
:mod:`repro.obs.timeseries` (gap rows included) and emit typed
:class:`Anomaly` records; they never look at wall-clock and keep O(1)
state per series, so detection is deterministic and could run online
against a live stream.  Three detectors cover the ROADMAP's operations
story:

* :func:`ewma_anomalies` — an exponentially-weighted mean/variance
  tracker flags windows whose value z-scores away from the smoothed
  baseline (queue-depth spikes after a crash, TTFT bursts);
* :func:`level_shift_anomalies` — compares adjacent fixed-width window
  groups and flags sustained level changes (a slow window doubling TTFT
  is a shift, not a spike);
* :func:`burn_anomalies` — escalates :class:`~repro.obs.slo.SLOReport`
  burn windows when the budget burns for several consecutive windows.

:func:`detect_anomalies` runs the whole battery over a recorder —
queue depth, TTFT, the prefix-cache hit rate (when the run used the
cache) and SLO burn — and returns one chronologically sorted list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import events as ev
from .events import EventRecorder
from .slo import SLOReport, burn_report
from .timeseries import build_timeseries

__all__ = [
    "Anomaly",
    "ewma_anomalies",
    "level_shift_anomalies",
    "burn_anomalies",
    "hit_rate_intervals",
    "detect_anomalies",
]

EWMA_SPIKE = "ewma-spike"
LEVEL_SHIFT = "level-shift"
SLO_BURN = "slo-burn"


@dataclass(frozen=True)
class Anomaly:
    """One detected deviation, anchored to a simulated-time window."""

    time: float          #: detection moment (end of the flagged window)
    kind: str            #: ewma-spike | level-shift | slo-burn
    metric: str          #: series the detector ran on
    value: float         #: observed value in the flagged window
    baseline: float      #: what the detector expected instead
    severity: float      #: z-score / shift ratio / peak burn rate
    window: Tuple[float, float]  #: [start, end) of the flagged window(s)

    def to_json(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "metric": self.metric,
            "value": self.value,
            "baseline": self.baseline,
            "severity": self.severity,
            "window": list(self.window),
        }


def ewma_anomalies(
    metric: str,
    intervals: Sequence[Dict[str, Optional[float]]],
    alpha: float = 0.3,
    threshold: float = 3.0,
    warmup: int = 3,
    min_scale: float = 1e-3,
) -> List[Anomaly]:
    """Flag windows whose mean z-scores beyond ``threshold`` from the EWMA.

    Gap rows (``mean is None``) freeze the tracker without emitting.  The
    deviation scale is floored at 10% of the smoothed mean and at
    ``min_scale`` (and z saturates at ±99) so a perfectly flat warm-up —
    common for queue depth in a healthy run — cannot make the first wiggle
    infinitely severe.
    """
    out: List[Anomaly] = []
    mean: Optional[float] = None
    var = 0.0
    seen = 0
    for row in intervals:
        value = row["mean"]
        if value is None:
            continue
        if mean is None:
            mean = value
            seen = 1
            continue
        scale = max(var ** 0.5, 0.1 * abs(mean), min_scale)
        z = (value - mean) / scale
        z = max(-99.0, min(99.0, z))
        if seen >= warmup and abs(z) >= threshold:
            out.append(
                Anomaly(
                    time=row["end"],
                    kind=EWMA_SPIKE,
                    metric=metric,
                    value=value,
                    baseline=mean,
                    severity=z,
                    window=(row["start"], row["end"]),
                )
            )
        delta = value - mean
        mean += alpha * delta
        var = (1.0 - alpha) * (var + alpha * delta * delta)
        seen += 1
    return out


def level_shift_anomalies(
    metric: str,
    intervals: Sequence[Dict[str, Optional[float]]],
    group: int = 3,
    ratio: float = 2.0,
    min_delta: float = 0.0,
) -> List[Anomaly]:
    """Flag sustained level changes between adjacent window groups.

    At every boundary the mean of the next ``group`` sampled windows is
    compared against the mean of the previous ``group``; a ratio beyond
    ``ratio`` (either direction) and an absolute change of at least
    ``min_delta`` is a shift.  Only the rising edge is emitted, so one
    sustained change yields one anomaly, not one per window.
    """
    points = [
        (row["start"], row["end"], row["mean"])
        for row in intervals
        if row["mean"] is not None
    ]
    out: List[Anomaly] = []
    shifted = False
    for i in range(group, len(points) - group + 1):
        before = sum(p[2] for p in points[i - group : i]) / group
        after = sum(p[2] for p in points[i : i + group]) / group
        low = min(abs(before), abs(after))
        high = max(abs(before), abs(after))
        level_ratio = high / low if low > 1e-12 else (0.0 if high <= 1e-12 else ratio)
        is_shift = level_ratio >= ratio and abs(after - before) >= min_delta
        if is_shift and not shifted:
            start, end = points[i][0], points[i][1]
            out.append(
                Anomaly(
                    time=end,
                    kind=LEVEL_SHIFT,
                    metric=metric,
                    value=after,
                    baseline=before,
                    severity=level_ratio,
                    window=(start, end),
                )
            )
        shifted = is_shift
    return out


def burn_anomalies(report: SLOReport, consecutive: int = 2) -> List[Anomaly]:
    """Escalate ``consecutive`` back-to-back burning windows to an anomaly."""
    out: List[Anomaly] = []
    run: List = []
    windows = list(report.windows) + [None]
    for window in windows:
        burning = window is not None and window.burn_rate > report.burn_threshold
        if burning and (not run or window.start == run[-1].end):
            run.append(window)
            continue
        if len(run) >= consecutive:
            peak = max(w.burn_rate for w in run)
            worst = min(w.attainment for w in run)
            out.append(
                Anomaly(
                    time=run[consecutive - 1].end,
                    kind=SLO_BURN,
                    metric="goodput",
                    value=worst,
                    baseline=report.target,
                    severity=peak,
                    window=(run[0].start, run[-1].end),
                )
            )
        run = [window] if burning else []
    return out


def hit_rate_intervals(
    recorder: EventRecorder, window: float
) -> List[Dict[str, Optional[float]]]:
    """Per-window prefix-cache hit rate (hit tokens / admitted prompt tokens).

    Windows where prefill ran without any cache activity rate 0.0; windows
    with no prefill at all are gaps.  Empty when the run never touched the
    prefix cache.
    """
    hits: Dict[int, float] = {}
    prefills: Dict[int, float] = {}
    for event in recorder.events:
        bucket = int(event.time // window)
        if event.kind == ev.PREFIX_HIT:
            hits[bucket] = hits.get(bucket, 0.0) + event.data[0]
        elif event.kind == ev.PREFILL:
            prefills[bucket] = prefills.get(bucket, 0.0) + event.data[0]
    if not hits:
        return []
    buckets = set(hits) | set(prefills)
    first, last = min(buckets), max(buckets)
    rows: List[Dict[str, Optional[float]]] = []
    for bucket in range(first, last + 1):
        hit = hits.get(bucket, 0.0)
        total = hit + prefills.get(bucket, 0.0)
        rows.append(
            {
                "start": bucket * window,
                "end": (bucket + 1) * window,
                "count": int(total),
                "mean": (hit / total) if total > 0 else None,
                "min": None,
                "max": None,
            }
        )
    return rows


def detect_anomalies(
    recorder: EventRecorder,
    slo: Optional[object] = None,
    window: float = 5.0,
    ewma_threshold: float = 3.0,
    shift_ratio: float = 2.0,
    burn_consecutive: int = 2,
) -> List[Anomaly]:
    """Run the full detector battery over one recorded run.

    ``slo`` is duck-typed (``ttft``/``tpot`` bounds) like everywhere else
    in the obs layer; without it the SLO-burn escalation is skipped.
    """
    series = build_timeseries(recorder, window=window, slo=slo)
    anomalies: List[Anomaly] = []
    for name in ("queue_depth", "ttft"):
        metric = series.metrics.get(name)
        if metric is None:
            continue
        rows = metric.intervals()
        anomalies.extend(ewma_anomalies(name, rows, threshold=ewma_threshold))
        anomalies.extend(level_shift_anomalies(name, rows, ratio=shift_ratio))
    hit_rows = hit_rate_intervals(recorder, window)
    if hit_rows:
        anomalies.extend(
            ewma_anomalies("prefix_hit_rate", hit_rows, threshold=ewma_threshold)
        )
        anomalies.extend(
            level_shift_anomalies("prefix_hit_rate", hit_rows, ratio=shift_ratio)
        )
    if slo is not None:
        anomalies.extend(
            burn_anomalies(
                burn_report(recorder, slo, window=window),
                consecutive=burn_consecutive,
            )
        )
    anomalies.sort(key=lambda a: (a.time, a.metric, a.kind))
    return anomalies
