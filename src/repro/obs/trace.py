"""Perfetto/Chrome trace export of a recorded serving or fleet run.

Turns an :class:`~repro.obs.events.EventRecorder` stream (plus, when
available, the engine's exact iteration :class:`~repro.sim.timeline.Timeline`)
into a trace the ``chrome://tracing`` and https://ui.perfetto.dev viewers
load directly.  Layout:

* **pid 0 — engine**: one track per pool/replica.  Iteration spans come
  from the timeline when one was collected (always, for the serving
  engines) and otherwise from the recorded ``ITERATION``/``STRETCH``
  events; coalesced decode stretches render as one ``decode xN`` span.
  Replica lifecycle moments (provision, activate, crash, recover, slow
  windows, retirement) are instant markers on their replica's track.
* **pid 1 — requests**: one async lifeline per request id, opened at
  arrival and closed at finish (or at hand-off, then reopened on the
  decode pool), with admission, first-token, preemption and prefix-hit
  markers pinned onto it.
* **pid 2 — counters**: queue depth, batch tokens and KV utilization per
  track (sampled at every naive iteration and stretch boundary), a
  cumulative prefix hit rate when prefix caching produced hits, and the
  autoscaler's queue/arrival-rate/replica-target signals at every tick.
* **pid 3 — cluster**: instant markers for cluster-level moments (scale
  decisions, requests held with no replica accepting work).
* **pid 4 — diagnosis** (only when ``anomalies`` are passed in): one
  instant marker per detected anomaly, carrying the detector's verdict in
  its args.  Passing ``attributions`` additionally attaches the
  per-request span breakdown to the request lifeline's closing event.

The export is a pure function of the event stream and timeline, so two
identical runs serialise to byte-identical JSON (pinned by
``tests/test_obs_trace.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import chrome
from .events import (
    ACTIVATE,
    ADMIT,
    ARRIVE,
    CRASH,
    FINISH,
    FIRST_TOKEN,
    HANDOFF,
    HELD,
    ITER_DECODES,
    ITER_DURATION,
    ITER_KV_UTILIZATION,
    ITER_PREFILL_TOKENS,
    ITER_QUEUE_DEPTH,
    ITERATION,
    PREEMPT,
    PREFIX_HIT,
    PROVISION,
    RECOVER,
    RETIRE,
    ROUTE,
    SCALE,
    SCALE_DOWN,
    SCALE_UP,
    SLOW,
    SLOW_END,
    STRETCH,
    EventRecorder,
)

__all__ = ["to_perfetto", "write_perfetto"]

_ENGINE_PID = 0
_REQUEST_PID = 1
_COUNTER_PID = 2
_CLUSTER_PID = 3
_DIAGNOSIS_PID = 4

#: Replica/pool lifecycle kinds rendered as instant markers on their track.
_TRACK_MARKERS = {PROVISION, ACTIVATE, RETIRE, CRASH, RECOVER, SLOW, SLOW_END}
#: Cluster-level kinds rendered as instant markers on the cluster process.
_CLUSTER_MARKERS = {SCALE_UP, SCALE_DOWN, HELD}
#: Request-lifeline kinds rendered as async-instant markers.
_LIFELINE_MARKERS = {ADMIT, FIRST_TOKEN, PREEMPT, PREFIX_HIT, ROUTE}


def _track_label(recorder: EventRecorder, track: int) -> str:
    return recorder.track_names.get(track, f"track {track}")


def to_perfetto(
    recorder: EventRecorder,
    timeline: Optional[object] = None,
    time_unit_us: float = 1e6,
    anomalies: Optional[List[object]] = None,
    attributions: Optional[Dict[int, object]] = None,
) -> Dict:
    """Build the Chrome trace-event JSON container for one recorded run.

    ``timeline`` is the engine's iteration timeline when one was collected;
    its spans then provide the exact per-iteration boxes and the recorded
    ``ITERATION``/``STRETCH`` events only feed the counter tracks.  Without
    a timeline the spans are reconstructed from those events instead (one
    box per naive iteration, one ``decode xN`` box per stretch).

    ``anomalies`` (from :func:`repro.obs.anomaly.detect_anomalies`) adds
    the diagnosis marker track; ``attributions`` (from
    :func:`repro.obs.critical_path.build_attributions`) attaches each
    finished request's span breakdown to its lifeline-closing event.  Both
    default to off, which keeps the base export byte-identical.
    """
    if time_unit_us <= 0:
        raise ValueError("time_unit_us must be positive")
    events: List[Dict] = []

    tracks = sorted(
        {e.track for e in recorder.events if e.track >= 0} | set(recorder.track_names)
    )
    events.append(chrome.process_name_event(_ENGINE_PID, "engine"))
    events.append(chrome.process_name_event(_REQUEST_PID, "requests"))
    events.append(chrome.process_name_event(_COUNTER_PID, "counters"))
    events.append(chrome.process_name_event(_CLUSTER_PID, "cluster"))
    if anomalies is not None:
        events.append(chrome.process_name_event(_DIAGNOSIS_PID, "diagnosis"))
        events.append(chrome.thread_name_event(_DIAGNOSIS_PID, 0, "anomalies"))
        for anomaly in anomalies:
            events.append(
                chrome.instant_event(
                    f"{anomaly.kind}:{anomaly.metric}",
                    _DIAGNOSIS_PID,
                    0,
                    anomaly.time,
                    time_unit_us,
                    args=anomaly.to_json(),
                )
            )
    for track in tracks:
        events.append(
            chrome.thread_name_event(_ENGINE_PID, track, _track_label(recorder, track))
        )

    span_source_is_timeline = timeline is not None
    if span_source_is_timeline:
        for span in timeline.spans:
            events.append(
                chrome.complete_event(
                    "iteration",
                    _ENGINE_PID,
                    span.device,
                    span.start,
                    span.duration,
                    time_unit_us,
                    cat="iteration",
                )
            )

    open_lifelines: Dict[int, bool] = {}
    # Cumulative prefix accounting per track feeds the hit-rate counter.
    prefix_hit_tokens: Dict[int, int] = {}
    prefilled_tokens: Dict[int, int] = {}

    for event in recorder.events:
        kind = event.kind
        time = event.time
        track = event.track
        rid = event.request_id
        if kind == ITERATION:
            data = event.data
            label = _track_label(recorder, track)
            if not span_source_is_timeline:
                events.append(
                    chrome.complete_event(
                        "iteration",
                        _ENGINE_PID,
                        track,
                        time - data[ITER_DURATION],
                        data[ITER_DURATION],
                        time_unit_us,
                        cat="iteration",
                    )
                )
            events.append(
                chrome.counter_event(
                    f"queue depth [{label}]", _COUNTER_PID, time,
                    data[ITER_QUEUE_DEPTH], time_unit_us,
                )
            )
            events.append(
                chrome.counter_event(
                    f"batch tokens [{label}]", _COUNTER_PID, time,
                    data[ITER_PREFILL_TOKENS] + data[ITER_DECODES], time_unit_us,
                )
            )
            events.append(
                chrome.counter_event(
                    f"kv utilization [{label}]", _COUNTER_PID, time,
                    data[ITER_KV_UTILIZATION], time_unit_us,
                )
            )
            if data[ITER_PREFILL_TOKENS] and prefix_hit_tokens.get(track):
                prefilled_tokens[track] = (
                    prefilled_tokens.get(track, 0) + data[ITER_PREFILL_TOKENS]
                )
                hits = prefix_hit_tokens[track]
                events.append(
                    chrome.counter_event(
                        f"prefix hit rate [{label}]", _COUNTER_PID, time,
                        hits / (hits + prefilled_tokens[track]), time_unit_us,
                    )
                )
            elif data[ITER_PREFILL_TOKENS]:
                prefilled_tokens[track] = (
                    prefilled_tokens.get(track, 0) + data[ITER_PREFILL_TOKENS]
                )
        elif kind == STRETCH:
            steps, batch, start, kv_utilization = event.data
            label = _track_label(recorder, track)
            if not span_source_is_timeline:
                events.append(
                    chrome.complete_event(
                        f"decode x{steps}",
                        _ENGINE_PID,
                        track,
                        start,
                        time - start,
                        time_unit_us,
                        cat="stretch",
                        args={"steps": steps, "batch": batch},
                    )
                )
            events.append(
                chrome.counter_event(
                    f"batch tokens [{label}]", _COUNTER_PID, time, batch, time_unit_us
                )
            )
            events.append(
                chrome.counter_event(
                    f"kv utilization [{label}]", _COUNTER_PID, time,
                    kv_utilization, time_unit_us,
                )
            )
        elif kind == ARRIVE:
            if rid is not None and not open_lifelines.get(rid):
                open_lifelines[rid] = True
                events.append(
                    chrome.async_begin_event(
                        f"request {rid}", "request", _REQUEST_PID, rid, time, time_unit_us
                    )
                )
        elif kind in (FINISH, HANDOFF):
            if rid is not None and open_lifelines.get(rid):
                open_lifelines[rid] = False
                args = None
                if kind == FINISH and attributions is not None:
                    attribution = attributions.get(rid)
                    if attribution is not None:
                        args = {
                            "ttft": attribution.ttft,
                            "e2e": attribution.e2e_latency,
                            "preemptions": attribution.preemptions,
                            "crash_reroutes": attribution.crash_reroutes,
                            "prefix_cached_tokens": attribution.prefix_cached_tokens,
                            "spans": attribution.breakdown(),
                        }
                events.append(
                    chrome.async_end_event(
                        f"request {rid}", "request", _REQUEST_PID, rid, time,
                        time_unit_us, args=args,
                    )
                )
        elif kind in _LIFELINE_MARKERS:
            if rid is not None:
                if kind == PREFIX_HIT:
                    prefix_hit_tokens[track] = (
                        prefix_hit_tokens.get(track, 0) + event.data[0]
                    )
                events.append(
                    chrome.async_instant_event(
                        kind, "request", _REQUEST_PID, rid, time, time_unit_us
                    )
                )
        elif kind in _TRACK_MARKERS:
            events.append(
                chrome.instant_event(kind, _ENGINE_PID, max(track, 0), time, time_unit_us)
            )
        elif kind == SCALE:
            current, target, queue_depth, rate = event.data
            events.append(
                chrome.counter_event(
                    "fleet queue depth", _COUNTER_PID, time, queue_depth, time_unit_us
                )
            )
            events.append(
                chrome.counter_event(
                    "arrival rate (ewma)", _COUNTER_PID, time, rate, time_unit_us
                )
            )
            events.append(
                chrome.counter_event(
                    "replica target", _COUNTER_PID, time, target, time_unit_us
                )
            )
        elif kind in _CLUSTER_MARKERS:
            events.append(
                chrome.instant_event(kind, _CLUSTER_PID, 0, time, time_unit_us)
            )

    return chrome.trace_container(events)


def write_perfetto(
    recorder: EventRecorder,
    path: str,
    timeline: Optional[object] = None,
    time_unit_us: float = 1e6,
    anomalies: Optional[List[object]] = None,
    attributions: Optional[Dict[int, object]] = None,
) -> str:
    """Serialise :func:`to_perfetto` to ``path`` and return the path."""
    return chrome.write_trace(
        to_perfetto(
            recorder, timeline, time_unit_us,
            anomalies=anomalies, attributions=attributions,
        ),
        path,
    )
