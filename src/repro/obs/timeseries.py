"""Windowed time series over a recorded event stream.

The aggregate :class:`~repro.serving.metrics.ServingMetrics` answer "how
did the run do overall"; this module answers "*when* did it degrade".
:func:`build_timeseries` folds an :class:`~repro.obs.events.EventRecorder`
stream into fixed-width simulated-time windows:

* **value series** (TTFT, TPOT, queue depth, batch tokens, KV utilization)
  keep per-window count/mean/min/max plus one whole-run
  :class:`~repro.obs.sketch.QuantileSketch` — no full sample lists, which
  is the streaming discipline ROADMAP item 1 asks for;
* **rate counters** (arrivals, finished requests, finished output tokens,
  and — when an SLO is given — SLO-good requests, i.e. windowed goodput)
  keep per-window counts.

Everything is computed from simulated timestamps only, so the export is
deterministic and byte-stable across runs.  Interval rows span the full
range from the first to the last observed window: empty windows appear as
explicit gaps (zero counts; ``None`` statistics) so every consumer sees a
uniform time axis regardless of how bursty the run was.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .events import (
    ARRIVE,
    FINISH,
    FIRST_TOKEN,
    ITER_DECODES,
    ITER_KV_UTILIZATION,
    ITER_PREFILL_TOKENS,
    ITER_QUEUE_DEPTH,
    ITERATION,
    EventRecorder,
)
from .sketch import QuantileSketch

__all__ = ["WindowedCounter", "MetricSeries", "TimeSeries", "build_timeseries"]


class WindowedCounter:
    """Event counts per fixed-width window of simulated time."""

    __slots__ = ("name", "window", "buckets")

    def __init__(self, name: str, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self.buckets: Dict[int, float] = {}

    def add(self, time: float, amount: float = 1.0) -> None:
        bucket = int(time // self.window)
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def intervals(self) -> List[Dict[str, float]]:
        """Per-window rows: start/end, count, rate per second.

        The rows cover every window between the first and last observed
        one — zero-event windows appear explicitly with a zero count, so
        consumers (plots, anomaly detectors) see a uniform time axis.
        """
        if not self.buckets:
            return []
        first = min(self.buckets)
        last = max(self.buckets)
        return [
            {
                "start": bucket * self.window,
                "end": (bucket + 1) * self.window,
                "count": count,
                "per_second": count / self.window,
            }
            for bucket in range(first, last + 1)
            for count in (self.buckets.get(bucket, 0.0),)
        ]


class MetricSeries:
    """Per-window count/mean/min/max plus a whole-run quantile sketch."""

    __slots__ = ("name", "window", "buckets", "sketch")

    def __init__(self, name: str, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        # bucket -> [count, sum, min, max]
        self.buckets: Dict[int, List[float]] = {}
        self.sketch = QuantileSketch(name)

    def add(self, time: float, value: float) -> None:
        value = float(value)
        bucket = int(time // self.window)
        entry = self.buckets.get(bucket)
        if entry is None:
            self.buckets[bucket] = [1.0, value, value, value]
        else:
            entry[0] += 1.0
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value
        self.sketch.add(value)

    def intervals(self) -> List[Dict[str, Optional[float]]]:
        """Per-window rows: start/end, count, mean, min, max.

        The rows cover every window between the first and last sampled
        one — zero-sample windows render as explicit gaps (count 0,
        mean/min/max ``None``) rather than being silently dropped, so the
        time axis stays uniform for detectors and plots.
        """
        if not self.buckets:
            return []
        first = min(self.buckets)
        last = max(self.buckets)
        rows: List[Dict[str, Optional[float]]] = []
        for bucket in range(first, last + 1):
            entry = self.buckets.get(bucket)
            row: Dict[str, Optional[float]] = {
                "start": bucket * self.window,
                "end": (bucket + 1) * self.window,
            }
            if entry is None:
                row.update(count=0, mean=None, min=None, max=None)
            else:
                row.update(
                    count=int(entry[0]),
                    mean=entry[1] / entry[0],
                    min=entry[2],
                    max=entry[3],
                )
            rows.append(row)
        return rows


@dataclass
class TimeSeries:
    """The windowed export of one observed run."""

    window: float
    metrics: Dict[str, MetricSeries] = field(default_factory=dict)
    counters: Dict[str, WindowedCounter] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")

    def metric(self, name: str) -> MetricSeries:
        series = self.metrics.get(name)
        if series is None:
            series = self.metrics[name] = MetricSeries(name, self.window)
        return series

    def counter(self, name: str) -> WindowedCounter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = WindowedCounter(name, self.window)
        return counter

    def to_json(self) -> Dict:
        return {
            "window_seconds": self.window,
            "metrics": {
                name: {
                    "summary": series.sketch.summary(),
                    "intervals": series.intervals(),
                }
                for name, series in sorted(self.metrics.items())
            },
            "counters": {
                name: {
                    "total": counter.total,
                    "intervals": counter.intervals(),
                }
                for name, counter in sorted(self.counters.items())
            },
        }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
        return path


def build_timeseries(
    recorder: EventRecorder,
    window: float = 5.0,
    slo: Optional[object] = None,
) -> TimeSeries:
    """Fold a recorded event stream into a :class:`TimeSeries`.

    ``slo`` is any object with ``ttft``/``tpot`` bounds (duck-typed to keep
    this module import-free of the serving layer); when given, the
    ``good_requests`` counter tracks per-window goodput against it.
    """
    series = TimeSeries(window=window)
    for event in recorder.events:
        kind = event.kind
        if kind == ITERATION:
            data = event.data
            series.metric("queue_depth").add(event.time, data[ITER_QUEUE_DEPTH])
            series.metric("batch_tokens").add(
                event.time, data[ITER_PREFILL_TOKENS] + data[ITER_DECODES]
            )
            series.metric("kv_utilization").add(event.time, data[ITER_KV_UTILIZATION])
        elif kind == ARRIVE:
            # Track 0 / cluster-level arrivals only: in a disaggregated run
            # the decode pool (track 1) re-observes every handed-off request.
            if event.track <= 0:
                series.counter("arrivals").add(event.time)
        elif kind == FIRST_TOKEN:
            series.metric("ttft").add(event.time, event.data[0])
        elif kind == FINISH:
            ttft, tpot, output_tokens = event.data
            series.metric("tpot").add(event.time, tpot)
            series.counter("finished_requests").add(event.time)
            series.counter("output_tokens").add(event.time, output_tokens)
            if slo is not None and ttft <= slo.ttft and tpot <= slo.tpot:
                series.counter("good_requests").add(event.time)
    return series
