"""Structured lifecycle event recording for the serving and fleet engines.

The recorder is the spine of the observability layer: engines that are
handed one (``ServingConfig.observe`` / ``FleetConfig.observe``) append a
typed :class:`Event` at every lifecycle point — request arrival, admission,
prefill chunks, first token, preemption, finish, hand-off, prefix hits,
per-iteration samples, coalesced decode stretches, routing decisions,
scaling actions, crashes and slow windows.  Exporters turn the stream into
Perfetto traces (:mod:`repro.obs.trace`), windowed time series
(:mod:`repro.obs.timeseries`) and SLO burn reports (:mod:`repro.obs.slo`).

Design constraints, in order:

1. **Zero cost when off.**  Every emit site in an engine is guarded by
   ``if obs is not None``; with no recorder configured the hot path runs
   the exact same bytecode as before this module existed, and every
   simulated number is byte-identical (pinned by
   ``tests/test_obs_recorder.py``).
2. **Cheap when on.**  An :class:`Event` is a ``NamedTuple`` — one tuple
   allocation and one list append per emit, no dict, no method dispatch
   beyond ``emit`` itself.  Per-iteration samples carry their payload as a
   flat tuple (see the ``ITER_*`` index constants) instead of a dict; the
   benchmark suite gates recorder overhead at <10% wall-clock on the
   ``steady-chat`` fleet scenario.
3. **Deterministic.**  Events record only simulated quantities, never
   wall-clock or randomness, so two identical runs produce identical
   streams (and identical exported traces).  The optional
   :class:`~repro.obs.profile.PhaseProfiler` is the one exception — it
   meters host wall-clock per phase — and therefore lives beside the event
   stream, never inside it.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, NamedTuple, Optional

from .profile import PhaseProfiler

__all__ = [
    "Event",
    "EventRecorder",
    "ARRIVE",
    "ADMIT",
    "PREFILL",
    "FIRST_TOKEN",
    "FINISH",
    "HANDOFF",
    "PREEMPT",
    "PREFIX_HIT",
    "ITERATION",
    "STRETCH",
    "ROUTE",
    "HELD",
    "PROVISION",
    "ACTIVATE",
    "RETIRE",
    "SCALE",
    "SCALE_UP",
    "SCALE_DOWN",
    "CRASH",
    "RECOVER",
    "SLOW",
    "SLOW_END",
    "ITER_DURATION",
    "ITER_PREFILL_TOKENS",
    "ITER_DECODES",
    "ITER_QUEUE_DEPTH",
    "ITER_RUNNING",
    "ITER_KV_UTILIZATION",
    "CLUSTER_TRACK",
]

# ---------------------------------------------------------------------------
# Event kinds.  Request lifecycle:
ARRIVE = "arrive"            # request reached a pool / the cluster router
ADMIT = "admit"              # batcher activated the request (data: (phase name, prefilled, prefill_target))
PREFILL = "prefill"          # one prefill chunk executed (data: (chunk, offset, prefill_target))
FIRST_TOKEN = "first-token"  # prefill completed, first token sampled (data: (ttft,))
FINISH = "finish"            # final token delivered (data: (ttft, tpot, output_tokens))
HANDOFF = "handoff"          # prefill pool released the context for transfer
PREEMPT = "preempt"          # victim evicted, re-queued for full re-prefill
                             # (data: (prefilled_lost, decoded, new_prefill_target))
PREFIX_HIT = "prefix-hit"    # admission served tokens from the prefix cache (data: (tokens,))
# Engine progress:
ITERATION = "iteration"      # one executed iteration (data: ITER_* tuple)
STRETCH = "stretch"          # one coalesced decode stretch (data: (steps, batch, start, kv_util))
# Fleet lifecycle:
ROUTE = "route"              # router picked a replica (data: (queue_depth, prefix_match))
HELD = "held"                # no replica accepts work; request parked
PROVISION = "provision"      # replica provisioning started (data: (delay,))
ACTIVATE = "activate"        # replica became active
RETIRE = "retire"            # replica drained and retired
SCALE = "scale"              # autoscaler tick (data: (current, target, queue, rate))
SCALE_UP = "scale-up"        # decision to add replicas (data: (count,))
SCALE_DOWN = "scale-down"    # decision to drain replicas (data: (count,))
CRASH = "crash"              # replica crashed (data: (lost_requests,))
RECOVER = "recover"          # crashed replica restarted with an empty pool
SLOW = "slow"                # slow window opened (data: (slowdown, duration))
SLOW_END = "slow-end"        # slow window closed

#: Index layout of the flat ``ITERATION`` data tuple (kept positional so the
#: per-iteration emit allocates one small tuple, not a dict).
ITER_DURATION = 0
ITER_PREFILL_TOKENS = 1
ITER_DECODES = 2
ITER_QUEUE_DEPTH = 3
ITER_RUNNING = 4
ITER_KV_UTILIZATION = 5

#: Track id for cluster-level events that belong to no single replica/pool.
CLUSTER_TRACK = -1


class Event(NamedTuple):
    """One recorded lifecycle event.

    ``track`` identifies the pool/replica the event happened on (the serving
    engines use the pool device index, the fleet engine the replica id,
    :data:`CLUSTER_TRACK` marks cluster-level events); ``request_id`` is set
    for request-lifecycle kinds and ``None`` for engine/fleet progress;
    ``data`` is a kind-specific payload (a flat tuple, or ``None``).
    """

    time: float
    kind: str
    track: int
    request_id: Optional[int]
    data: Optional[tuple]


class EventRecorder:
    """Append-only event log threaded through the engines via config.

    One recorder observes one run (or one coordinated pair of pools, as in
    the disaggregated engine).  Create it, pass it as
    ``ServingConfig.observe`` / ``FleetConfig.observe`` (or the ``observe=``
    parameter of ``run_scenario`` / ``run_fleet_scenario``), run, then hand
    it to the exporters.  ``profile=True`` additionally attaches a
    :class:`~repro.obs.profile.PhaseProfiler` metering host wall-clock per
    engine phase.
    """

    __slots__ = ("events", "track_names", "profiler")

    def __init__(self, profile: bool = False):
        self.events: List[Event] = []
        self.track_names: Dict[int, str] = {}
        self.profiler: Optional[PhaseProfiler] = PhaseProfiler() if profile else None

    # ------------------------------------------------------------------
    # Recording (the engines' side)
    # ------------------------------------------------------------------
    def emit(
        self,
        time: float,
        kind: str,
        track: int = CLUSTER_TRACK,
        request_id: Optional[int] = None,
        data: Optional[tuple] = None,
    ) -> None:
        """Append one event.  Hot: one tuple allocation, one list append."""
        self.events.append(Event(time, kind, track, request_id, data))

    def register_track(self, track: int, name: str) -> None:
        """Give a pool/replica track a human-readable label for exporters."""
        self.track_names[track] = name

    # ------------------------------------------------------------------
    # Reading (the exporters' side)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, *kinds: str) -> List[Event]:
        """Events of the given kind(s), in emission order."""
        wanted = frozenset(kinds)
        return [event for event in self.events if event.kind in wanted]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (insertion-ordered by first occurrence)."""
        return dict(Counter(event.kind for event in self.events))

    def requests(self) -> List[int]:
        """Distinct request ids observed, in first-seen order."""
        seen: Dict[int, None] = {}
        for event in self.events:
            if event.request_id is not None and event.request_id not in seen:
                seen[event.request_id] = None
        return list(seen)

    @classmethod
    def from_jsonl(cls, path: str) -> "EventRecorder":
        """Reload a stream written by :meth:`to_jsonl` (offline analysis).

        Track labels are not serialised, so exporters fall back to their
        generic ``track N`` labels on a reloaded stream.
        """
        import json

        recorder = cls()
        append = recorder.events.append
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                data = raw["data"]
                append(
                    Event(
                        raw["time"],
                        raw["kind"],
                        raw["track"],
                        raw["request_id"],
                        tuple(data) if data is not None else None,
                    )
                )
        return recorder

    def to_jsonl(self, path: str) -> str:
        """Write the raw stream as JSON lines (one event object per line)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(
                    json.dumps(
                        {
                            "time": event.time,
                            "kind": event.kind,
                            "track": event.track,
                            "request_id": event.request_id,
                            "data": list(event.data) if event.data is not None else None,
                        }
                    )
                )
                handle.write("\n")
        return path


def iteration_samples(events: Iterable[Event]) -> List[Event]:
    """The ``ITERATION`` events of a stream (helper for exporters)."""
    return [event for event in events if event.kind == ITERATION]
