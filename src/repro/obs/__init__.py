"""Unified observability layer for the serving and fleet engines.

``repro.obs`` makes an otherwise black-box simulation inspectable without
perturbing it:

* :mod:`~repro.obs.events` — the structured :class:`EventRecorder` the
  engines thread lifecycle events through (opt-in via
  ``ServingConfig.observe`` / ``FleetConfig.observe``; with it unset the
  hot path is untouched and every simulated number byte-identical);
* :mod:`~repro.obs.trace` — Perfetto/Chrome trace export: one track per
  pool/replica, request lifelines, counter tracks;
* :mod:`~repro.obs.sketch` — streaming P² quantile sketches (constant
  memory, no sample lists);
* :mod:`~repro.obs.timeseries` — windowed TTFT/TPOT/goodput/queue/KV time
  series built from the event stream;
* :mod:`~repro.obs.slo` — SLO burn-rate monitoring with per-window error
  budget accounting;
* :mod:`~repro.obs.profile` — self-profiling of the simulator's own
  wall-clock per engine phase;
* :mod:`~repro.obs.chrome` — the shared Chrome trace-event JSON
  scaffolding (also used by :mod:`repro.sim.trace`);
* :mod:`~repro.obs.critical_path` — per-request span reconstruction with a
  float-exact conservation oracle (spans tile measured TTFT/E2E);
* :mod:`~repro.obs.attribution` — tail attribution tables and the two-run
  differ ("why did p99 regress between config A and B");
* :mod:`~repro.obs.anomaly` — streaming EWMA/level-shift/burn detectors
  emitting typed :class:`Anomaly` records;
* :mod:`~repro.obs.incident` — anomaly/cluster-event correlation into a
  deterministic incident timeline and markdown postmortem.

See ``docs/observability.md`` for the architecture and event taxonomy.
"""

from .anomaly import Anomaly, detect_anomalies
from .attribution import (
    RunDiff,
    TailAttribution,
    diff_attributions,
    mean_breakdown,
    tail_attribution,
)
from .critical_path import (
    ConservationError,
    RequestAttribution,
    Span,
    build_attributions,
    slow_windows,
    verify_conservation,
)
from .events import Event, EventRecorder
from .incident import (
    ClusterMoment,
    Incident,
    IncidentReport,
    incident_report,
    render_postmortem,
    write_incident_report,
)
from .profile import PhaseProfiler
from .sketch import P2Quantile, QuantileSketch
from .slo import SLOBurnMonitor, SLOReport, burn_report, burn_report_from_records
from .timeseries import MetricSeries, TimeSeries, WindowedCounter, build_timeseries
from .trace import to_perfetto, write_perfetto

__all__ = [
    "Event",
    "EventRecorder",
    "PhaseProfiler",
    "P2Quantile",
    "QuantileSketch",
    "SLOBurnMonitor",
    "SLOReport",
    "burn_report",
    "burn_report_from_records",
    "MetricSeries",
    "TimeSeries",
    "WindowedCounter",
    "build_timeseries",
    "to_perfetto",
    "write_perfetto",
    "Span",
    "RequestAttribution",
    "ConservationError",
    "build_attributions",
    "slow_windows",
    "verify_conservation",
    "TailAttribution",
    "RunDiff",
    "mean_breakdown",
    "tail_attribution",
    "diff_attributions",
    "Anomaly",
    "detect_anomalies",
    "ClusterMoment",
    "Incident",
    "IncidentReport",
    "incident_report",
    "render_postmortem",
    "write_incident_report",
]
