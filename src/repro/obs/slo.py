"""SLO burn-rate monitoring over windowed request outcomes.

Error-budget arithmetic, applied to the simulator: if the operator promises
that a ``target`` fraction of requests meets the latency SLO (TTFT and TPOT
bounds both), the error budget is ``1 - target``.  For each fixed-width
window of simulated time the monitor tallies finished requests (and their
output tokens) into *good* — met both bounds — and *bad*, and reports the
window's **burn rate**: the bad fraction divided by the error budget.  A
burn rate of 1.0 spends budget exactly as provisioned; above
``burn_threshold`` (default 1.0) the window is flagged as a *burn period* —
the moments an on-call alert would have fired.

The monitor is streaming (``observe`` one finish at a time, constant memory
per window) and consumes either a recorded event stream
(:func:`burn_report`) or plain request records
(:func:`burn_report_from_records`), so it works with or without the full
recorder.  The SLO object is duck-typed (``ttft``/``tpot`` attributes) to
keep this module import-free of the serving layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.report import format_percent, render_table
from .events import FINISH, EventRecorder

__all__ = ["BurnWindow", "SLOReport", "SLOBurnMonitor", "burn_report", "burn_report_from_records"]


@dataclass
class BurnWindow:
    """Good/bad accounting of one window of simulated time."""

    start: float
    end: float
    requests: int
    good_requests: int
    total_tokens: int
    good_tokens: int
    burn_rate: float

    @property
    def bad_requests(self) -> int:
        return self.requests - self.good_requests

    @property
    def attainment(self) -> float:
        """Fraction of the window's requests that met the SLO."""
        return self.good_requests / self.requests if self.requests else 1.0

    @property
    def token_attainment(self) -> float:
        return self.good_tokens / self.total_tokens if self.total_tokens else 1.0


@dataclass
class SLOReport:
    """Burn-rate report over one observed run."""

    window: float
    target: float
    burn_threshold: float
    windows: List[BurnWindow]

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @property
    def burn_windows(self) -> List[BurnWindow]:
        """Windows whose burn rate exceeds the threshold (the alert moments)."""
        return [w for w in self.windows if w.burn_rate > self.burn_threshold]

    @property
    def total_requests(self) -> int:
        return sum(w.requests for w in self.windows)

    @property
    def total_good(self) -> int:
        return sum(w.good_requests for w in self.windows)

    @property
    def overall_attainment(self) -> float:
        total = self.total_requests
        return self.total_good / total if total else 1.0

    @property
    def budget_consumed(self) -> float:
        """Overall bad fraction relative to the error budget (1.0 = all spent)."""
        total = self.total_requests
        if not total or self.error_budget <= 0:
            return 0.0
        return ((total - self.total_good) / total) / self.error_budget

    def to_rows(self) -> List[tuple]:
        rows = []
        for w in self.windows:
            flag = "BURN" if w.burn_rate > self.burn_threshold else ""
            rows.append(
                (
                    f"{w.start:.0f}-{w.end:.0f}s",
                    w.requests,
                    format_percent(w.attainment),
                    format_percent(w.token_attainment),
                    f"{w.burn_rate:.2f}x",
                    flag,
                )
            )
        return rows

    def to_text(self, title: str = "SLO burn-rate") -> str:
        header = (
            f"target {format_percent(self.target)} attainment "
            f"(error budget {format_percent(self.error_budget)}), "
            f"{self.window:g}s windows: "
            f"{len(self.burn_windows)}/{len(self.windows)} burning, "
            f"overall attainment {format_percent(self.overall_attainment)}, "
            f"budget consumed {self.budget_consumed:.2f}x\n"
        )
        table = render_table(
            ["window", "requests", "good", "good tokens", "burn", ""],
            self.to_rows(),
            title=title,
        )
        return table + header

    def to_json(self) -> Dict:
        return {
            "window_seconds": self.window,
            "target": self.target,
            "burn_threshold": self.burn_threshold,
            "error_budget": self.error_budget,
            "overall_attainment": self.overall_attainment,
            "budget_consumed": self.budget_consumed,
            "burn_window_count": len(self.burn_windows),
            "windows": [
                {
                    "start": w.start,
                    "end": w.end,
                    "requests": w.requests,
                    "good_requests": w.good_requests,
                    "total_tokens": w.total_tokens,
                    "good_tokens": w.good_tokens,
                    "attainment": w.attainment,
                    "burn_rate": w.burn_rate,
                    "burning": w.burn_rate > self.burn_threshold,
                }
                for w in self.windows
            ],
        }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
        return path


class SLOBurnMonitor:
    """Streaming good/total tally per window of simulated time."""

    def __init__(
        self,
        slo: object,
        window: float = 10.0,
        target: float = 0.95,
        burn_threshold: float = 1.0,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.slo = slo
        self.window = window
        self.target = target
        self.burn_threshold = burn_threshold
        # bucket -> [requests, good_requests, total_tokens, good_tokens]
        self._buckets: Dict[int, List[int]] = {}

    def observe(self, finish_time: float, ttft: float, tpot: float, output_tokens: int) -> None:
        """Account one finished request into its finish-time window."""
        good = ttft <= self.slo.ttft and tpot <= self.slo.tpot
        bucket = int(finish_time // self.window)
        entry = self._buckets.get(bucket)
        if entry is None:
            entry = self._buckets[bucket] = [0, 0, 0, 0]
        entry[0] += 1
        entry[2] += output_tokens
        if good:
            entry[1] += 1
            entry[3] += output_tokens

    def report(self) -> SLOReport:
        budget = 1.0 - self.target
        windows = []
        for bucket, (requests, good, tokens, good_tokens) in sorted(self._buckets.items()):
            bad_fraction = (requests - good) / requests if requests else 0.0
            windows.append(
                BurnWindow(
                    start=bucket * self.window,
                    end=(bucket + 1) * self.window,
                    requests=requests,
                    good_requests=good,
                    total_tokens=tokens,
                    good_tokens=good_tokens,
                    burn_rate=bad_fraction / budget if budget > 0 else 0.0,
                )
            )
        return SLOReport(
            window=self.window,
            target=self.target,
            burn_threshold=self.burn_threshold,
            windows=windows,
        )


def burn_report(
    recorder: EventRecorder,
    slo: object,
    window: float = 10.0,
    target: float = 0.95,
    burn_threshold: float = 1.0,
) -> SLOReport:
    """Burn-rate report from a recorded event stream's ``FINISH`` events."""
    monitor = SLOBurnMonitor(slo, window=window, target=target, burn_threshold=burn_threshold)
    for event in recorder.events:
        if event.kind == FINISH:
            ttft, tpot, output_tokens = event.data
            monitor.observe(event.time, ttft, tpot, output_tokens)
    return monitor.report()


def burn_report_from_records(
    records: Iterable[object],
    slo: object,
    window: float = 10.0,
    target: float = 0.95,
    burn_threshold: float = 1.0,
) -> SLOReport:
    """Burn-rate report straight from finished request records.

    Works without any recorder (``records`` are
    :class:`~repro.serving.metrics.RequestRecord`-shaped: ``finished``,
    ``finish_time``, ``ttft``, ``tpot`` and ``request.output_tokens``).
    """
    monitor = SLOBurnMonitor(slo, window=window, target=target, burn_threshold=burn_threshold)
    for record in records:
        if record.finished:
            monitor.observe(
                record.finish_time, record.ttft, record.tpot, record.request.output_tokens
            )
    return monitor.report()
