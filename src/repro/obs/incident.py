"""Correlate anomalies with cluster events into an incident postmortem.

The last step of the diagnosis chain: :mod:`repro.obs.anomaly` says *when*
a run misbehaved, the cluster's own lifecycle events (crash, recover, slow
window, scaling) say *what happened to the machines* — this module joins
the two into a deterministic incident timeline and renders the markdown
postmortem an on-call engineer would otherwise write by hand.

Correlation is deliberately simple and auditable: anomalies within
``2 × window`` of each other belong to one incident, and every causal
cluster event (crash, slow-window open, scale decision, retirement) inside
the incident's span — extended ``horizon`` seconds into the past, because
a crash at t=20 shows up in windowed metrics a little later — is listed as
a root-cause candidate, most recent first.  Everything is derived from
simulated timestamps, so the same run always yields the same postmortem,
byte for byte (pinned by a golden test on the ``unreliable`` scenario).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import events as ev
from .anomaly import Anomaly, detect_anomalies
from .events import EventRecorder

__all__ = [
    "ClusterMoment",
    "Incident",
    "IncidentReport",
    "cluster_moments",
    "correlate",
    "incident_report",
    "render_postmortem",
    "write_incident_report",
]

#: Cluster event kinds that can plausibly *cause* an anomaly …
_CAUSAL_KINDS = (ev.CRASH, ev.SLOW, ev.SCALE_UP, ev.SCALE_DOWN, ev.RETIRE)
#: … and the ones that merely describe the cluster's reaction.
_CONTEXT_KINDS = (ev.RECOVER, ev.SLOW_END, ev.PROVISION, ev.ACTIVATE)


@dataclass(frozen=True)
class ClusterMoment:
    """One cluster-level lifecycle event with a human-readable description."""

    time: float
    kind: str
    track: int
    label: str    #: replica/cluster name the event happened on
    detail: str   #: e.g. "crash (7 in-flight requests lost)"

    @property
    def causal(self) -> bool:
        return self.kind in _CAUSAL_KINDS

    def to_json(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "track": self.track,
            "label": self.label,
            "detail": self.detail,
        }


@dataclass
class Incident:
    """One correlated cluster of anomalies with its root-cause candidates."""

    start: float
    end: float
    anomalies: List[Anomaly]
    causes: List[ClusterMoment] = field(default_factory=list)
    context: List[ClusterMoment] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "anomalies": [a.to_json() for a in self.anomalies],
            "causes": [m.to_json() for m in self.causes],
            "context": [m.to_json() for m in self.context],
        }


@dataclass
class IncidentReport:
    """The full diagnosis of one observed run."""

    title: str
    window: float
    horizon: float
    anomalies: List[Anomaly]
    moments: List[ClusterMoment]
    incidents: List[Incident]

    def to_json(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "window_seconds": self.window,
            "horizon_seconds": self.horizon,
            "anomaly_count": len(self.anomalies),
            "incident_count": len(self.incidents),
            "anomalies": [a.to_json() for a in self.anomalies],
            "cluster_events": [m.to_json() for m in self.moments],
            "incidents": [i.to_json() for i in self.incidents],
            "markdown": render_postmortem(self),
        }


def _moment_detail(event) -> Optional[str]:
    kind = event.kind
    if kind == ev.CRASH:
        return f"crash ({int(event.data[0])} in-flight requests lost)"
    if kind == ev.RECOVER:
        return "recovered with an empty pool"
    if kind == ev.SLOW:
        slowdown, duration = event.data
        return f"slow window opened ({slowdown:g}x for {duration:g}s)"
    if kind == ev.SLOW_END:
        return "slow window closed"
    if kind == ev.SCALE_UP:
        return f"scale-up by {int(event.data[0])}"
    if kind == ev.SCALE_DOWN:
        return f"scale-down by {int(event.data[0])}"
    if kind == ev.PROVISION:
        return f"provisioning started ({event.data[0]:g}s lead time)"
    if kind == ev.ACTIVATE:
        return "replica active"
    if kind == ev.RETIRE:
        return "replica retired"
    return None


def cluster_moments(recorder: EventRecorder) -> List[ClusterMoment]:
    """Extract the cluster lifecycle timeline from a recorded stream."""
    moments: List[ClusterMoment] = []
    for event in recorder.events:
        detail = _moment_detail(event)
        if detail is None:
            continue
        if event.track == ev.CLUSTER_TRACK:
            label = "cluster"
        else:
            label = recorder.track_names.get(event.track, f"track {event.track}")
        moments.append(
            ClusterMoment(event.time, event.kind, event.track, label, detail)
        )
    return moments


def correlate(
    anomalies: List[Anomaly],
    moments: List[ClusterMoment],
    window: float = 5.0,
    horizon: float = 15.0,
) -> List[Incident]:
    """Group anomalies into incidents and attach root-cause candidates."""
    incidents: List[Incident] = []
    group: List[Anomaly] = []

    def flush() -> None:
        if not group:
            return
        start = min(a.window[0] for a in group)
        end = max(a.window[1] for a in group)
        causes = [
            m
            for m in moments
            if m.causal and start - horizon <= m.time <= end
        ]
        causes.sort(key=lambda m: (-m.time, m.track))
        context = [
            m
            for m in moments
            if not m.causal and start - horizon <= m.time <= end
        ]
        incidents.append(Incident(start, end, list(group), causes, context))
        group.clear()

    for anomaly in anomalies:
        if group and anomaly.time - group[-1].time > 2.0 * window:
            flush()
        group.append(anomaly)
    flush()
    return incidents


def incident_report(
    recorder: EventRecorder,
    slo: Optional[object] = None,
    window: float = 5.0,
    horizon: float = 15.0,
    title: str = "observed run",
) -> IncidentReport:
    """Detect, correlate and package the diagnosis of one run."""
    anomalies = detect_anomalies(recorder, slo=slo, window=window)
    moments = cluster_moments(recorder)
    incidents = correlate(anomalies, moments, window=window, horizon=horizon)
    return IncidentReport(
        title=title,
        window=window,
        horizon=horizon,
        anomalies=anomalies,
        moments=moments,
        incidents=incidents,
    )


def _describe(anomaly: Anomaly) -> str:
    if anomaly.kind == "slo-burn":
        return (
            f"SLO burn: attainment fell to {anomaly.value:.2f} "
            f"(target {anomaly.baseline:.2f}, peak burn {anomaly.severity:.1f}x)"
        )
    if anomaly.kind == "level-shift":
        return (
            f"{anomaly.metric} level shift: {anomaly.baseline:.3f} -> "
            f"{anomaly.value:.3f} ({anomaly.severity:.1f}x)"
        )
    return (
        f"{anomaly.metric} spike: {anomaly.value:.3f} vs baseline "
        f"{anomaly.baseline:.3f} (z={anomaly.severity:.1f})"
    )


def render_postmortem(report: IncidentReport) -> str:
    """Render the deterministic markdown postmortem of one run."""
    lines: List[str] = []
    lines.append(f"# Postmortem: {report.title}")
    lines.append("")
    lines.append(
        f"{len(report.anomalies)} anomalies in {len(report.incidents)} "
        f"incident(s); {len(report.moments)} cluster events "
        f"({report.window:g}s detection windows, {report.horizon:g}s "
        "root-cause horizon)."
    )
    lines.append("")
    if report.moments:
        lines.append("## Cluster timeline")
        lines.append("")
        lines.append("| time (s) | where | event |")
        lines.append("| --- | --- | --- |")
        for moment in report.moments:
            lines.append(
                f"| {moment.time:.2f} | {moment.label} | {moment.detail} |"
            )
        lines.append("")
    if not report.incidents:
        lines.append("No anomalies detected; nothing to correlate.")
        lines.append("")
        return "\n".join(lines)
    for index, incident in enumerate(report.incidents, start=1):
        lines.append(
            f"## Incident {index}: t={incident.start:.2f}-{incident.end:.2f}s"
        )
        lines.append("")
        lines.append("Root-cause candidates (most recent first):")
        lines.append("")
        if incident.causes:
            for moment in incident.causes:
                lines.append(
                    f"- t={moment.time:.2f}s {moment.label}: {moment.detail}"
                )
        else:
            lines.append(
                "- none found in the horizon (load-driven or external cause)"
            )
        lines.append("")
        lines.append("Detected anomalies:")
        lines.append("")
        for anomaly in incident.anomalies:
            lines.append(
                f"- t={anomaly.time:.2f}s [{anomaly.kind}] {_describe(anomaly)}"
            )
        lines.append("")
    return "\n".join(lines)


def write_incident_report(report: IncidentReport, path: str) -> str:
    """Write the report — JSON (markdown embedded) for ``.json`` paths,
    plain markdown otherwise."""
    if path.endswith(".json"):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=1, sort_keys=True)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_postmortem(report))
    return path
