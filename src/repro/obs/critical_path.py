"""Per-request critical-path reconstruction from the recorded event stream.

Every finished request's life is re-derived purely from the
:class:`~repro.obs.events.EventRecorder` stream as a gapless chain of
:class:`Span` tiles — queue wait, prefill chunks, re-prefill after
preemption or crash failover, decode, preemption re-queue, disaggregated
KV-handoff transfer, decode-pool queueing — optionally split and flagged
where the span overlaps an injected slow-node window.

The load-bearing invariant is **float-exact conservation**: adjacent spans
share their boundary float *identically* (``spans[i].end is the same float
as spans[i + 1].start``), the first boundary is the request's arrival
timestamp, one interior boundary is its first-token timestamp and the last
boundary is its finish timestamp — all taken verbatim from event
timestamps.  TTFT and E2E therefore telescope out of the chain with the
*same single subtraction* the engines' own
:class:`~repro.serving.metrics.RequestRecord` properties perform, so the
reconstruction equals the measured latency bit-for-bit, with no epsilon.
:func:`verify_conservation` is the oracle that asserts all of this for
every request of a run.

Nothing here feeds back into the engines: reconstruction happens after the
run (or offline, from a JSONL stream reloaded with
``EventRecorder.from_jsonl``), keeping the zero-cost-when-off and
byte-identical-when-on guarantees of :mod:`repro.obs.events` untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import events as ev
from .events import EventRecorder

__all__ = [
    "Span",
    "RequestAttribution",
    "ConservationError",
    "build_attributions",
    "slow_windows",
    "verify_conservation",
    "QUEUE",
    "PREFILL_SPAN",
    "REPREFILL",
    "DECODE",
    "PREEMPT_REQUEUE",
    "CRASH_REQUEUE",
    "KV_HANDOFF",
    "DECODE_QUEUE",
    "SLOW_NODE",
]

# Span kinds.  ``SLOW_NODE`` is not a state of its own: running spans that
# overlap a slow window are split at the window boundary and the inside
# parts re-labelled, so the inflation shows up as its own bucket.
QUEUE = "queue"                      # arrival → first admission
PREFILL_SPAN = "prefill"             # admission / previous chunk → chunk end
REPREFILL = "re-prefill"             # prefill of context already delivered once
DECODE = "decode"                    # first token (or re-prefill end) → finish
PREEMPT_REQUEUE = "preempt-requeue"  # eviction → re-admission
CRASH_REQUEUE = "crash-requeue"      # replica crash → re-admission elsewhere
KV_HANDOFF = "kv-handoff"            # prefill-pool release → decode-pool arrival
DECODE_QUEUE = "decode-queue"        # decode-pool arrival → decode admission
SLOW_NODE = "slow-node"              # running span portion inside a slow window


@dataclass(frozen=True)
class Span:
    """One tile of a request's timeline on one track."""

    kind: str
    start: float
    end: float
    track: int
    slow: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RequestAttribution:
    """The reconstructed, gapless span chain of one request."""

    request_id: int
    arrival_time: float
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    spans: List[Span] = field(default_factory=list)
    prefix_cached_tokens: int = 0
    preemptions: int = 0
    crash_reroutes: int = 0
    output_tokens: int = 0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def ttft(self) -> float:
        """Telescoped TTFT — the same subtraction ``RequestRecord.ttft`` does."""
        if self.first_token_time is None:
            raise ValueError(f"request {self.request_id} produced no token")
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} did not finish")
        return self.finish_time - self.arrival_time

    def breakdown(self, until_first_token: bool = False) -> Dict[str, float]:
        """Seconds per span kind (slow portions bucketed as ``slow-node``).

        With ``until_first_token`` only spans before the first-token boundary
        contribute — the TTFT decomposition; otherwise the full E2E one.
        """
        out: Dict[str, float] = {}
        cut = self.first_token_time if until_first_token else None
        for span in self.spans:
            if cut is not None and span.start >= cut:
                break
            key = SLOW_NODE if span.slow else span.kind
            out[key] = out.get(key, 0.0) + span.duration
        return out


class ConservationError(AssertionError):
    """A span chain failed to tile a request's measured timeline exactly."""


# ---------------------------------------------------------------------------
# Reconstruction
# ---------------------------------------------------------------------------


class _Walk:
    """Mutable per-request state while walking the stream."""

    __slots__ = ("attr", "cursor", "status", "wait_kind", "track", "target")

    def __init__(self, attr: RequestAttribution):
        self.attr = attr
        self.cursor = attr.arrival_time
        self.status = "queued"  # queued | prefill | decode | handoff | done
        self.wait_kind = QUEUE
        self.track = ev.CLUSTER_TRACK
        self.target = 0

    def tile(self, kind: str, end: float, track: Optional[int] = None) -> None:
        """Close the open interval ``[cursor, end]`` as one span.

        Never rewinds: the engines may stamp an admission marginally before
        the recorded arrival (the first wake at t=0 admits a request whose
        arrival timestamp is a denormal epsilon later), and such a
        degenerate wait is an empty tile, not a negative one.
        """
        if end > self.cursor:
            self.attr.spans.append(
                Span(kind, self.cursor, end, self.track if track is None else track)
            )
            self.cursor = end

    def running_kind(self) -> str:
        if self.status == "decode":
            return DECODE
        if self.attr.first_token_time is not None:
            return REPREFILL
        return PREFILL_SPAN


def build_attributions(recorder: EventRecorder) -> Dict[int, RequestAttribution]:
    """Reconstruct every request's span chain from the event stream.

    Returns attributions keyed by request id in first-seen order.  Slow-node
    windows are applied afterwards (running spans split at window bounds).
    When the recorder carries a :class:`~repro.obs.profile.PhaseProfiler`
    the work is metered under the ``attribution`` phase.
    """
    profiler = recorder.profiler
    started = profiler.clock() if profiler is not None else 0.0
    walks: Dict[int, _Walk] = {}
    for event in recorder.events:
        rid = event.request_id
        if rid is None:
            continue
        kind = event.kind
        walk = walks.get(rid)
        if walk is None:
            if kind != ev.ARRIVE:
                raise ValueError(
                    f"request {rid}: stream starts with {kind!r}, not arrival"
                )
            walks[rid] = _Walk(RequestAttribution(rid, event.time))
            continue
        if kind == ev.ARRIVE:
            # Second arrival: the disaggregated decode pool received the
            # context after the KV transfer.
            if walk.status == "handoff":
                walk.tile(KV_HANDOFF, event.time, track=event.track)
                walk.status = "queued"
                walk.wait_kind = DECODE_QUEUE
                walk.track = event.track
        elif kind in (ev.ROUTE, ev.HELD):
            if walk.status in ("prefill", "decode"):
                # A routing decision for a request that was running can only
                # mean its replica crashed: close the discarded work and
                # count the failover.
                walk.tile(walk.running_kind(), event.time)
                walk.status = "queued"
                walk.wait_kind = CRASH_REQUEUE
                walk.attr.crash_reroutes += 1
        elif kind == ev.ADMIT:
            phase, _prefilled, target = event.data
            walk.track = event.track
            walk.tile(walk.wait_kind, event.time)
            walk.status = "decode" if phase == "decode" else "prefill"
            walk.target = target
        elif kind == ev.PREFILL:
            chunk, offset, target = event.data
            walk.tile(walk.running_kind(), event.time)
            if offset + chunk >= target:
                # Prefill complete; after a post-first-token re-prefill no
                # FIRST_TOKEN re-fires, so this is the only decode boundary.
                walk.status = "decode"
        elif kind == ev.FIRST_TOKEN:
            walk.attr.first_token_time = event.time
            walk.status = "decode"
        elif kind == ev.PREEMPT:
            walk.tile(walk.running_kind(), event.time)
            walk.status = "queued"
            walk.wait_kind = PREEMPT_REQUEUE
            walk.attr.preemptions += 1
        elif kind == ev.PREFIX_HIT:
            walk.attr.prefix_cached_tokens += event.data[0]
        elif kind == ev.HANDOFF:
            walk.tile(walk.running_kind(), event.time)
            walk.status = "handoff"
        elif kind == ev.FINISH:
            walk.tile(walk.running_kind(), event.time)
            walk.attr.finish_time = event.time
            walk.attr.output_tokens = event.data[2]
            walk.status = "done"
    attributions = {rid: walk.attr for rid, walk in walks.items()}
    windows = slow_windows(recorder)
    if windows:
        for attr in attributions.values():
            attr.spans = _apply_slow_windows(attr.spans, windows)
    if profiler is not None:
        profiler.add("attribution", profiler.clock() - started)
    return attributions


def slow_windows(recorder: EventRecorder) -> Dict[int, List[Tuple[float, float]]]:
    """Merged slow intervals per track, truncated where the replica crashes.

    Overlapping injections extend one window to the high-water ``slow_until``
    (mirroring the cluster's bookkeeping); a crash resets the slowdown, so an
    open window closes at the crash timestamp.  A window still open when the
    stream ends closes at its high-water mark.
    """
    open_at: Dict[int, float] = {}
    high: Dict[int, float] = {}
    out: Dict[int, List[Tuple[float, float]]] = {}
    for event in recorder.events:
        kind = event.kind
        if kind == ev.SLOW:
            _slowdown, duration = event.data
            if event.track not in open_at:
                open_at[event.track] = event.time
            high[event.track] = max(
                high.get(event.track, 0.0), event.time + duration
            )
        elif kind in (ev.SLOW_END, ev.CRASH):
            start = open_at.pop(event.track, None)
            if start is not None and event.time > start:
                out.setdefault(event.track, []).append((start, event.time))
    for track, start in open_at.items():
        if high[track] > start:
            out.setdefault(track, []).append((start, high[track]))
    return out


def _apply_slow_windows(
    spans: List[Span], windows: Dict[int, List[Tuple[float, float]]]
) -> List[Span]:
    """Split running spans at slow-window bounds, flagging the inside parts.

    Cut points are window boundary floats inserted verbatim, so adjacent
    pieces still share their boundary identically and the chain's outer
    endpoints are untouched — conservation survives the split.
    """
    running = (PREFILL_SPAN, REPREFILL, DECODE)
    out: List[Span] = []
    for span in spans:
        track_windows = windows.get(span.track)
        if track_windows is None or span.kind not in running:
            out.append(span)
            continue
        cursor = span.start
        for w_start, w_end in track_windows:
            if w_end <= cursor or w_start >= span.end:
                continue
            if w_start > cursor:
                out.append(Span(span.kind, cursor, w_start, span.track))
                cursor = w_start
            slow_end = min(w_end, span.end)
            out.append(Span(span.kind, cursor, slow_end, span.track, slow=True))
            cursor = slow_end
        if cursor < span.end:
            out.append(Span(span.kind, cursor, span.end, span.track))
        elif cursor > span.end:  # pragma: no cover - windows are sorted/merged
            raise ValueError("slow window cut past span end")
    return out


# ---------------------------------------------------------------------------
# Conservation oracle
# ---------------------------------------------------------------------------


def verify_conservation(
    recorder: EventRecorder,
    attributions: Optional[Dict[int, RequestAttribution]] = None,
    records=None,
) -> int:
    """Assert float-exact conservation for every request of a run.

    For each request the span chain must tile ``[arrival, finish]`` with
    identical shared boundaries, the first-token timestamp must be one of
    those boundaries, and the telescoped TTFT/E2E must equal the engine's
    own measurements bit-for-bit (via the FIRST_TOKEN/FINISH event payloads
    and, when ``records`` are supplied, the ``RequestRecord`` properties).
    Returns the number of requests checked; raises :class:`ConservationError`
    on the first violation.
    """
    if attributions is None:
        attributions = build_attributions(recorder)
    measured_ttft: Dict[int, float] = {}
    measured_finish: Dict[int, Tuple[float, float]] = {}
    for event in recorder.events:
        if event.kind == ev.FIRST_TOKEN:
            measured_ttft[event.request_id] = event.data[0]
        elif event.kind == ev.FINISH:
            measured_finish[event.request_id] = (event.time, event.data[0])
    by_id = {}
    if records is not None:
        by_id = {r.request.request_id: r for r in records}
    checked = 0
    for rid, attr in attributions.items():
        def bail(message: str) -> None:
            raise ConservationError(f"request {rid}: {message}")

        boundaries = {attr.arrival_time}
        cursor = attr.arrival_time
        for span in attr.spans:
            if span.start != cursor:
                bail(
                    f"span chain has a gap: {span.kind} starts at "
                    f"{span.start!r}, previous boundary {cursor!r}"
                )
            if span.end < span.start:
                bail(f"span {span.kind} runs backwards")
            cursor = span.end
            boundaries.add(cursor)
        if attr.first_token_time is not None:
            if attr.first_token_time not in boundaries:
                bail("first-token timestamp is not a span boundary")
            if attr.ttft != measured_ttft[rid]:
                bail(
                    f"telescoped TTFT {attr.ttft!r} != measured "
                    f"{measured_ttft[rid]!r}"
                )
        if attr.finished:
            finish_time, event_ttft = measured_finish[rid]
            if cursor != finish_time:
                bail(
                    f"last boundary {cursor!r} != finish timestamp "
                    f"{finish_time!r}"
                )
            if attr.ttft != event_ttft:
                bail("TTFT drifted between first-token and finish events")
            record = by_id.get(rid)
            if record is not None:
                if attr.ttft != record.ttft:
                    bail(f"TTFT {attr.ttft!r} != record {record.ttft!r}")
                if attr.e2e_latency != record.e2e_latency:
                    bail(
                        f"E2E {attr.e2e_latency!r} != record "
                        f"{record.e2e_latency!r}"
                    )
            checked += 1
    return checked
