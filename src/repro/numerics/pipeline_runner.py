"""Multi-device SlimPipe execution of the numeric model.

:class:`SlimPipeNumericRunner` executes the numeric transformer the way the
SlimPipe system does, with every simulated pipeline device owning only its own
layer shard and state:

* the sequence is cut into ``n`` uniform slices and forwarded slice by slice,
  each device appending the slice's keys/values to its **chunked KV cache**
  (:class:`repro.core.kv_cache.ChunkedKVCache`);
* the backward runs in **reverse slice order** (LIFO); gradients a later
  slice's backward produces against an earlier slice's KV chunk are
  accumulated and consumed when that earlier slice's backward runs, after
  which the chunk is released — the exact discipline the SlimPipe schedule
  relies on to bound memory;
* with ``context_exchange`` enabled the attention of a slice against its KV
  cache is split between a "local" and a "remote" portion, computed through
  separate code paths and merged with the online softmax — the arithmetic of
  Section 4.2's context exchange — and the bytes that would travel are
  counted;
* with ``vocab_parallel`` enabled the output projection is column-sharded
  across the pipeline devices and the loss is computed from sharded logits
  with only scalar statistics shared (Section 4.3).

The headline property, checked in ``tests/test_pipeline_runner.py``: for any
slicing, device count and option combination, the loss and **every parameter
gradient** match the unsliced single-device :class:`~repro.numerics.model.ReferenceModel`
to floating-point tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.kv_cache import ChunkedKVCache
from ..core.slicing import SliceSpec, uniform_slices
from .functional import (
    cross_entropy_backward,
    cross_entropy_forward,
    embedding_backward,
    embedding_forward,
    linear_backward,
    linear_forward,
    rmsnorm_backward,
    rmsnorm_forward,
)
from .layer import layer_backward, layer_forward
from .model import ModelGradients, ModelParams
from .vocab_loss import (
    shard_vocab_weights,
    sharded_cross_entropy_backward,
    sharded_cross_entropy_forward,
)

__all__ = ["SlimPipeRunnerOptions", "SlimPipeNumericRunner", "RunnerTelemetry"]


@dataclass(frozen=True)
class SlimPipeRunnerOptions:
    """Feature toggles of the numeric runner (all on = the full SlimPipe path)."""

    context_exchange: bool = True
    vocab_parallel: bool = True

    def __post_init__(self) -> None:
        # Nothing to validate today; kept for forward compatibility.
        pass


@dataclass
class RunnerTelemetry:
    """Counters collected during one run (used by tests and examples)."""

    exchanged_bytes: float = 0.0
    peak_live_kv_chunks: List[int] = field(default_factory=list)
    kv_chunk_reuse_fraction: List[float] = field(default_factory=list)
    slice_lengths: List[int] = field(default_factory=list)


@dataclass
class _DeviceState:
    """Everything one simulated pipeline device owns."""

    device: int
    layer_indices: List[int]
    kv_cache: ChunkedKVCache = field(default_factory=ChunkedKVCache)
    layer_caches: Dict[Tuple[int, int, int], object] = field(default_factory=dict)
    kv_grad_accumulators: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )


class SlimPipeNumericRunner:
    """Execute the numeric model with SlimPipe's sliced multi-device pipeline."""

    def __init__(
        self,
        params: ModelParams,
        num_devices: int,
        num_slices: int,
        options: SlimPipeRunnerOptions = SlimPipeRunnerOptions(),
    ):
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        if params.config.num_layers % num_devices != 0:
            raise ValueError(
                f"{params.config.num_layers} layers do not divide across "
                f"{num_devices} pipeline devices"
            )
        self.params = params
        self.num_devices = num_devices
        self.num_slices = num_slices
        self.options = options
        layers_per_device = params.config.num_layers // num_devices
        self.devices = [
            _DeviceState(
                device=d,
                layer_indices=list(
                    range(d * layers_per_device, (d + 1) * layers_per_device)
                ),
            )
            for d in range(num_devices)
        ]
        self.vocab_shards = (
            shard_vocab_weights(params.output_weight, num_devices)
            if options.vocab_parallel
            else shard_vocab_weights(params.output_weight, 1)
        )
        self.telemetry = RunnerTelemetry()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def loss_and_gradients(
        self, tokens: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, ModelGradients]:
        """Run forward + backward over one or more microbatches.

        ``tokens`` / ``targets`` may be 1-D (one microbatch) or 2-D
        ``[microbatches, tokens]``; the loss is the mean over every token and
        the gradients are the matching sums, exactly as the reference model
        (run per microbatch and averaged) would produce.
        """
        tokens = np.asarray(tokens)
        targets = np.asarray(targets)
        if tokens.shape != targets.shape:
            raise ValueError("tokens and targets must have the same shape")
        if tokens.ndim == 1:
            tokens = tokens[None, :]
            targets = targets[None, :]
        if tokens.ndim != 2:
            raise ValueError("tokens must be 1-D or 2-D")

        num_microbatches = tokens.shape[0]
        grads = ModelGradients.zeros_like(self.params)
        total_loss = 0.0
        self.telemetry = RunnerTelemetry()
        for mb in range(num_microbatches):
            loss = self._run_microbatch(tokens[mb], targets[mb], grads)
            total_loss += loss
        # Per-microbatch losses are token means of their own microbatch; the
        # overall loss is their average, and gradients scale accordingly.
        self._scale_gradients(grads, 1.0 / num_microbatches)
        self._collect_telemetry()
        return total_loss / num_microbatches, grads

    # ------------------------------------------------------------------
    # One microbatch
    # ------------------------------------------------------------------
    def _run_microbatch(
        self, tokens: np.ndarray, targets: np.ndarray, grads: ModelGradients
    ) -> float:
        sequence_length = tokens.shape[0]
        slices = uniform_slices(sequence_length, self.num_slices)
        self.telemetry.slice_lengths = [s.length for s in slices]
        microbatch = 0  # chunk keys only need to be unique within the run

        embedding_caches: Dict[int, object] = {}
        head_caches: Dict[int, Dict[str, object]] = {}
        loss = 0.0

        # ----------------------------- forward -----------------------------
        for spec in slices:
            activation = self._forward_embedding(tokens, spec, embedding_caches)
            for state in self.devices:
                activation = self._forward_device(state, activation, spec, microbatch)
            loss += self._forward_head(
                activation, targets, spec, sequence_length, head_caches
            )

        # ----------------------------- backward ----------------------------
        for spec in reversed(slices):
            grad_activation = self._backward_head(spec, grads, head_caches)
            for state in reversed(self.devices):
                grad_activation = self._backward_device(
                    state, grad_activation, spec, microbatch, grads
                )
            self._backward_embedding(spec, grad_activation, grads, embedding_caches)

        # Every KV chunk must have been consumed and released.
        for state in self.devices:
            if state.kv_cache.live_chunks != 0:
                raise RuntimeError(
                    f"device {state.device} leaked {state.kv_cache.live_chunks} KV chunks"
                )
            if state.kv_grad_accumulators:
                raise RuntimeError(
                    f"device {state.device} has unconsumed KV gradient accumulators"
                )
        return loss

    # ------------------------------------------------------------------
    # Forward pieces
    # ------------------------------------------------------------------
    def _forward_embedding(
        self, tokens: np.ndarray, spec: SliceSpec, caches: Dict[int, object]
    ) -> np.ndarray:
        out, cache = embedding_forward(tokens[spec.start : spec.stop], self.params.embedding)
        caches[spec.index] = cache
        return out

    def _forward_device(
        self,
        state: _DeviceState,
        activation: np.ndarray,
        spec: SliceSpec,
        microbatch: int,
    ) -> np.ndarray:
        for layer_index in state.layer_indices:
            layer = self.params.layers[layer_index]
            cached_blocks, offsets = self._cached_blocks(state, layer_index, spec.index, microbatch)
            if self.options.context_exchange and cached_blocks:
                activation, own_kv, cache = self._forward_layer_with_exchange(
                    layer, activation, cached_blocks, offsets, spec
                )
            else:
                activation, own_kv, cache = layer_forward(
                    layer,
                    activation,
                    kv_cache=cached_blocks,
                    q_offset=spec.start,
                    kv_offsets=offsets,
                )
            state.kv_cache.acquire((microbatch, layer_index, spec.index), payload=own_kv)
            state.layer_caches[(microbatch, layer_index, spec.index)] = (cache, own_kv)
        return activation

    def _forward_layer_with_exchange(
        self,
        layer,
        activation: np.ndarray,
        cached_blocks: List[Tuple[np.ndarray, np.ndarray]],
        offsets: List[int],
        spec: SliceSpec,
    ):
        """Forward a layer while routing part of the KV cache through the
        "remote" attention path and counting the bytes that would travel.

        The redistribution share follows Section 4.2.3: away from microbatch
        junctures a device hands off ``⌊(p-1)/2⌋`` KV slices; the query and the
        returned partial output always travel.  Numerically the result is
        identical to the purely local computation (the online-softmax merge is
        exact), which is precisely the property that makes context exchange
        legal — and which the gradient-equivalence tests then confirm
        end-to-end.
        """
        remote_share = min(len(cached_blocks), (self.num_devices - 1) // 2)
        if remote_share == 0:
            return layer_forward(
                layer, activation, kv_cache=cached_blocks, q_offset=spec.start, kv_offsets=offsets
            )
        # The oldest chunks are the ones sent away (their keys/values were
        # produced earliest — the "early key-value exchange" of Section 5).
        out, own_kv, cache = layer_forward(
            layer, activation, kv_cache=cached_blocks, q_offset=spec.start, kv_offsets=offsets
        )
        remote_blocks = cached_blocks[:remote_share]
        element_bytes = activation.dtype.itemsize
        q_and_o_bytes = 2 * activation.size * element_bytes
        kv_bytes = sum(k.size + v.size for k, v in remote_blocks) * element_bytes
        self.telemetry.exchanged_bytes += q_and_o_bytes + kv_bytes
        return out, own_kv, cache

    def _forward_head(
        self,
        activation: np.ndarray,
        targets: np.ndarray,
        spec: SliceSpec,
        sequence_length: int,
        caches: Dict[int, Dict[str, object]],
    ) -> float:
        """Final RMSNorm, (possibly sharded) output projection and loss for one slice."""
        slice_targets = targets[spec.start : spec.stop]
        normed, norm_cache = rmsnorm_forward(activation, self.params.final_norm)
        if self.options.vocab_parallel:
            loss, ce_cache = sharded_cross_entropy_forward(
                normed, self.vocab_shards, slice_targets, normalizer=sequence_length
            )
            caches[spec.index] = {"norm": norm_cache, "ce": ce_cache, "sharded": True}
        else:
            logits, out_cache = linear_forward(normed, self.params.output_weight)
            loss, ce_cache = cross_entropy_forward(
                logits, slice_targets, normalizer=sequence_length
            )
            caches[spec.index] = {
                "norm": norm_cache,
                "ce": ce_cache,
                "out": out_cache,
                "sharded": False,
            }
        return loss

    # ------------------------------------------------------------------
    # Backward pieces
    # ------------------------------------------------------------------
    def _backward_head(
        self, spec: SliceSpec, grads: ModelGradients, caches: Dict[int, Dict[str, object]]
    ) -> np.ndarray:
        entry = caches.pop(spec.index)
        if entry["sharded"]:
            grad_hidden, grad_shards = sharded_cross_entropy_backward(1.0, entry["ce"])
            width = self.params.output_weight.shape[1] // len(self.vocab_shards)
            for i, gw in enumerate(grad_shards):
                grads.output_weight[:, i * width : (i + 1) * width] += gw
        else:
            dlogits = cross_entropy_backward(1.0, entry["ce"])
            grad_hidden, d_out, _ = linear_backward(dlogits, entry["out"])
            grads.output_weight += d_out
        grad_activation, d_norm = rmsnorm_backward(grad_hidden, entry["norm"])
        grads.final_norm += d_norm
        return grad_activation

    def _backward_device(
        self,
        state: _DeviceState,
        grad_activation: np.ndarray,
        spec: SliceSpec,
        microbatch: int,
        grads: ModelGradients,
    ) -> np.ndarray:
        for layer_index in reversed(state.layer_indices):
            layer = self.params.layers[layer_index]
            key = (microbatch, layer_index, spec.index)
            cache, own_kv = state.layer_caches.pop(key)
            cached_blocks, _offsets = self._cached_blocks(
                state, layer_index, spec.index, microbatch
            )
            extra = state.kv_grad_accumulators.pop(key, None)
            grad_activation, layer_grads, earlier = layer_backward(
                layer,
                grad_activation,
                cache,
                kv_cache=cached_blocks,
                own_kv=own_kv,
                extra_dk_dv=extra,
            )
            grads.layers[layer_index].add_(layer_grads)
            for chunk_position, (dk, dv) in enumerate(earlier):
                earlier_key = (microbatch, layer_index, chunk_position)
                if earlier_key in state.kv_grad_accumulators:
                    old_dk, old_dv = state.kv_grad_accumulators[earlier_key]
                    state.kv_grad_accumulators[earlier_key] = (old_dk + dk, old_dv + dv)
                else:
                    state.kv_grad_accumulators[earlier_key] = (dk, dv)
            # LIFO release: no later slice remains, so the chunk can go.
            state.kv_cache.release(key)
        return grad_activation

    def _backward_embedding(
        self,
        spec: SliceSpec,
        grad_activation: np.ndarray,
        grads: ModelGradients,
        caches: Dict[int, object],
    ) -> None:
        cache = caches.pop(spec.index)
        grads.embedding += embedding_backward(grad_activation, cache)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _cached_blocks(
        self, state: _DeviceState, layer_index: int, slice_index: int, microbatch: int
    ) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], List[int]]:
        """Earlier slices' KV chunks of one layer, oldest first, with offsets."""
        blocks: List[Tuple[np.ndarray, np.ndarray]] = []
        offsets: List[int] = []
        position = 0
        for j in range(slice_index):
            chunk = state.kv_cache.get((microbatch, layer_index, j))
            k, v = chunk.payload
            blocks.append((k, v))
            offsets.append(position)
            position += k.shape[0]
        return blocks, offsets

    def _scale_gradients(self, grads: ModelGradients, factor: float) -> None:
        if factor == 1.0:
            return
        grads.embedding *= factor
        grads.final_norm *= factor
        grads.output_weight *= factor
        for layer in grads.layers:
            for name, value in layer.as_dict().items():
                value *= factor

    def _collect_telemetry(self) -> None:
        self.telemetry.peak_live_kv_chunks = [
            state.kv_cache.stats().peak_live_chunks for state in self.devices
        ]
        self.telemetry.kv_chunk_reuse_fraction = [
            state.kv_cache.stats().reuse_fraction for state in self.devices
        ]
