"""Optimizers for the numeric engine: SGD and mixed-precision-style Adam.

The paper trains with Adam holding fp32 internal states (Section 6.1); the
memory model in :mod:`repro.model.memory` accounts those 12 bytes per
parameter, and this module provides the matching executable optimizer for the
numeric engine so that examples and tests can run real (small) training loops
through the SlimPipe runner, not just single forward/backward passes.

Both optimizers operate on the nested :class:`~repro.numerics.model.ModelParams`
/ :class:`~repro.numerics.model.ModelGradients` structures via their flattened
name → array views, updating the parameter arrays in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from .model import ModelGradients, ModelParams

__all__ = ["named_parameters", "SGD", "Adam"]


def named_parameters(params: ModelParams) -> Iterator[Tuple[str, np.ndarray]]:
    """Yield ``(name, array)`` pairs mirroring ``ModelGradients.flatten()``."""
    yield "embedding", params.embedding
    yield "final_norm", params.final_norm
    yield "output_weight", params.output_weight
    for index, layer in enumerate(params.layers):
        for name in (
            "attn_norm",
            "wq",
            "wk",
            "wv",
            "wo",
            "mlp_norm",
            "w_gate",
            "w_up",
            "w_down",
        ):
            yield f"layer{index}.{name}", getattr(layer, name)


class SGD:
    """Plain (optionally momentum-free) stochastic gradient descent."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}
        self.steps = 0

    def step(self, params: ModelParams, grads: ModelGradients) -> None:
        """Apply one in-place update."""
        flat_grads = grads.flatten()
        for name, value in named_parameters(params):
            grad = flat_grads[name]
            if self.momentum > 0.0:
                velocity = self._velocity.setdefault(name, np.zeros_like(value))
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            value -= self.learning_rate * update
        self.steps += 1


@dataclass
class _AdamState:
    exp_avg: np.ndarray
    exp_avg_sq: np.ndarray


class Adam:
    """Adam with fp32 moments (the optimizer of the paper's training setup)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.steps = 0
        self._state: Dict[str, _AdamState] = {}

    # ------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Bytes held by the optimizer states (mirrors the memory model's 8 B/param)."""
        return sum(
            state.exp_avg.nbytes + state.exp_avg_sq.nbytes for state in self._state.values()
        )

    def step(self, params: ModelParams, grads: ModelGradients) -> None:
        """Apply one in-place Adam update with bias correction."""
        self.steps += 1
        flat_grads = grads.flatten()
        bias1 = 1.0 - self.beta1**self.steps
        bias2 = 1.0 - self.beta2**self.steps
        for name, value in named_parameters(params):
            grad = flat_grads[name]
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * value
            state = self._state.get(name)
            if state is None:
                state = _AdamState(
                    exp_avg=np.zeros_like(value, dtype=np.float64),
                    exp_avg_sq=np.zeros_like(value, dtype=np.float64),
                )
                self._state[name] = state
            state.exp_avg *= self.beta1
            state.exp_avg += (1.0 - self.beta1) * grad
            state.exp_avg_sq *= self.beta2
            state.exp_avg_sq += (1.0 - self.beta2) * grad * grad
            corrected_avg = state.exp_avg / bias1
            corrected_sq = state.exp_avg_sq / bias2
            value -= self.learning_rate * corrected_avg / (np.sqrt(corrected_sq) + self.eps)
