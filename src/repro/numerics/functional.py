"""Differentiable primitives of the NumPy numeric engine.

Every operator comes as a ``*_forward`` / ``*_backward`` pair: the forward
returns the output together with an explicit cache of exactly the tensors the
backward needs (mirroring what a training framework would save as
activations), and the backward consumes the cache plus the upstream gradient
and returns gradients for every input.

The memory-conscious variants match the paper's Section 5 implementation
notes: RMSNorm saves its *input* (not its output), and SwiGLU's swish product
is recomputed in the backward from the saved gate/up projections.

All tensors are float64 NumPy arrays (the tests compare gradients to 1e-9
relative tolerance, which bf16 or float32 could not support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "LinearCache",
    "RMSNormCache",
    "SwiGLUCache",
    "EmbeddingCache",
    "CrossEntropyCache",
    "linear_forward",
    "linear_backward",
    "rmsnorm_forward",
    "rmsnorm_backward",
    "swiglu_forward",
    "swiglu_backward",
    "embedding_forward",
    "embedding_backward",
    "cross_entropy_forward",
    "cross_entropy_backward",
    "silu",
]


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------
@dataclass
class LinearCache:
    """Saved tensors of a linear layer: its input and weight."""

    x: np.ndarray
    weight: np.ndarray
    has_bias: bool


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, LinearCache]:
    """``y = x @ weight (+ bias)`` for ``x`` of shape ``[T, in]`` and weight ``[in, out]``."""
    if x.ndim != 2 or weight.ndim != 2:
        raise ValueError("linear_forward expects 2-D input and weight")
    if x.shape[1] != weight.shape[0]:
        raise ValueError(
            f"shape mismatch: x {x.shape} cannot multiply weight {weight.shape}"
        )
    y = x @ weight
    if bias is not None:
        y = y + bias
    return y, LinearCache(x=x, weight=weight, has_bias=bias is not None)


def linear_backward(
    grad_out: np.ndarray, cache: LinearCache
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Return ``(grad_x, grad_weight, grad_bias)`` of a linear layer."""
    grad_x = grad_out @ cache.weight.T
    grad_weight = cache.x.T @ grad_out
    grad_bias = grad_out.sum(axis=0) if cache.has_bias else None
    return grad_x, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# RMSNorm (memory-efficient: keeps the input, recomputes the normalizer)
# ---------------------------------------------------------------------------
@dataclass
class RMSNormCache:
    """Saved tensors of RMSNorm: the input and the weight (not the output)."""

    x: np.ndarray
    weight: np.ndarray
    eps: float


def rmsnorm_forward(
    x: np.ndarray, weight: np.ndarray, eps: float = 1e-6
) -> Tuple[np.ndarray, RMSNormCache]:
    """``y = weight * x / sqrt(mean(x^2) + eps)`` over the last dimension."""
    if x.shape[-1] != weight.shape[-1]:
        raise ValueError("weight must match the last dimension of x")
    inv_rms = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    y = x * inv_rms * weight
    return y, RMSNormCache(x=x, weight=weight, eps=eps)


def rmsnorm_backward(
    grad_out: np.ndarray, cache: RMSNormCache
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(grad_x, grad_weight)`` of RMSNorm."""
    x, weight, eps = cache.x, cache.weight, cache.eps
    hidden = x.shape[-1]
    inv_rms = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    # d/dx_j [x_j * r(x) * w_j] with r = (mean(x^2) + eps)^{-1/2}
    gw = grad_out * weight
    dot = np.sum(gw * x, axis=-1, keepdims=True)
    grad_x = gw * inv_rms - x * (inv_rms**3) * dot / hidden
    grad_weight = np.sum(grad_out * x * inv_rms, axis=tuple(range(x.ndim - 1)))
    return grad_x, grad_weight


# ---------------------------------------------------------------------------
# SwiGLU
# ---------------------------------------------------------------------------
def silu(x: np.ndarray) -> np.ndarray:
    """The SiLU / swish activation ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


@dataclass
class SwiGLUCache:
    """Saved tensors of SwiGLU: the gate and up projections (swish recomputed)."""

    gate: np.ndarray
    up: np.ndarray


def swiglu_forward(gate: np.ndarray, up: np.ndarray) -> Tuple[np.ndarray, SwiGLUCache]:
    """``out = silu(gate) * up`` (the SwiGLU gating used by Llama / Mixtral)."""
    if gate.shape != up.shape:
        raise ValueError("gate and up must have the same shape")
    return silu(gate) * up, SwiGLUCache(gate=gate, up=up)


def swiglu_backward(
    grad_out: np.ndarray, cache: SwiGLUCache
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(grad_gate, grad_up)``, recomputing the swish product."""
    gate, up = cache.gate, cache.up
    sig = 1.0 / (1.0 + np.exp(-gate))
    swish = gate * sig
    dswish = sig * (1.0 + gate * (1.0 - sig))
    grad_gate = grad_out * up * dswish
    grad_up = grad_out * swish
    return grad_gate, grad_up


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------
@dataclass
class EmbeddingCache:
    """Saved tensors of an embedding lookup: the token ids and the table shape."""

    token_ids: np.ndarray
    vocab_size: int
    hidden_size: int


def embedding_forward(
    token_ids: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, EmbeddingCache]:
    """Gather rows of ``table`` (``[V, h]``) for integer ``token_ids`` (``[T]``)."""
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 1:
        raise ValueError("token_ids must be 1-D")
    if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= table.shape[0]:
        raise ValueError("token id out of vocabulary range")
    out = table[token_ids]
    return out, EmbeddingCache(
        token_ids=token_ids, vocab_size=table.shape[0], hidden_size=table.shape[1]
    )


def embedding_backward(grad_out: np.ndarray, cache: EmbeddingCache) -> np.ndarray:
    """Scatter-add the output gradient back into a dense table gradient."""
    grad_table = np.zeros((cache.vocab_size, cache.hidden_size), dtype=grad_out.dtype)
    np.add.at(grad_table, cache.token_ids, grad_out)
    return grad_table


# ---------------------------------------------------------------------------
# Cross entropy
# ---------------------------------------------------------------------------
@dataclass
class CrossEntropyCache:
    """Saved tensors of the softmax cross-entropy: probabilities and targets."""

    probs: np.ndarray
    targets: np.ndarray
    normalizer: float


def cross_entropy_forward(
    logits: np.ndarray, targets: np.ndarray, normalizer: Optional[float] = None
) -> Tuple[float, CrossEntropyCache]:
    """Token-mean softmax cross-entropy.

    ``normalizer`` overrides the denominator of the mean — the pipeline runner
    uses it so that per-slice losses sum to exactly the full-sequence loss.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.ndim != 1 or logits.shape[0] != targets.shape[0]:
        raise ValueError("logits must be [T, V] and targets [T]")
    norm = float(normalizer) if normalizer is not None else float(logits.shape[0])
    if norm <= 0:
        raise ValueError("normalizer must be positive")
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    token_loss = -np.log(probs[np.arange(logits.shape[0]), targets])
    loss = float(token_loss.sum() / norm)
    return loss, CrossEntropyCache(probs=probs, targets=targets, normalizer=norm)


def cross_entropy_backward(grad_loss: float, cache: CrossEntropyCache) -> np.ndarray:
    """Gradient of the loss w.r.t. the logits."""
    grad = cache.probs.copy()
    grad[np.arange(grad.shape[0]), cache.targets] -= 1.0
    return grad * (grad_loss / cache.normalizer)
