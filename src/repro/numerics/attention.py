"""Causal grouped-query attention: dense reference, blockwise forward with
online softmax, and a FlashAttention-style blockwise backward.

SlimPipe's correctness rests on two attention identities that this module
makes explicit and the tests verify:

* **Blockwise forward** — computing attention of a query slice against its KV
  cache one chunk at a time and merging the partial outputs with the online
  softmax (running max + log-sum-exp) gives *exactly* the same result as one
  dense pass over the concatenated keys/values.  This is what lets a device
  hand a query and part of its KV cache to another device (context exchange)
  and merge the returned partial output (Section 4.2.2), and what the
  commutated context parallelism of Section 5 relies on.

* **Blockwise backward** — the gradient of a query slice w.r.t. each KV chunk
  can be computed independently per chunk from the saved output and
  log-sum-exp, and the per-chunk query gradients simply add up.  This is what
  lets the LIFO slice backward of the SlimPipe schedule accumulate ``dK``/``dV``
  contributions into earlier slices' chunks.

Shapes (no batch dimension; one sequence per microbatch):

* queries ``q``: ``[Tq, num_heads, head_dim]``
* keys / values ``k`` / ``v``: ``[Tk, num_groups, head_dim]`` (grouped-query
  attention shares one KV head across ``num_heads / num_groups`` query heads)
* outputs: ``[Tq, num_heads, head_dim]``; log-sum-exp: ``[num_heads, Tq]``.

Positions are global: the queries occupy absolute positions
``q_offset .. q_offset + Tq - 1`` and a key chunk occupies
``k_offset .. k_offset + Tk - 1``; the causal mask forbids attending to keys
with a position greater than the query's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "AttentionOutput",
    "attention_reference",
    "attention_forward",
    "attention_block_forward",
    "attention_block_backward",
    "blockwise_attention_forward",
    "merge_partial_attention",
    "expand_kv_to_heads",
    "reduce_heads_to_kv",
]

_NEG_INF = -1e30


@dataclass
class AttentionOutput:
    """Output of an attention forward: the context and its log-sum-exp."""

    out: np.ndarray  # [Tq, num_heads, head_dim]
    lse: np.ndarray  # [num_heads, Tq]


def _check_qkv(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> Tuple[int, int]:
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ValueError("q, k, v must be rank-3: [tokens, heads, head_dim]")
    if k.shape != v.shape:
        raise ValueError("k and v must have identical shapes")
    num_heads, num_groups = q.shape[1], k.shape[1]
    if num_heads % num_groups != 0:
        raise ValueError(
            f"query heads ({num_heads}) must be a multiple of KV groups ({num_groups})"
        )
    if q.shape[2] != k.shape[2]:
        raise ValueError("q and k head dimensions differ")
    return num_heads, num_groups


def expand_kv_to_heads(kv: np.ndarray, num_heads: int) -> np.ndarray:
    """Repeat KV groups so every query head has a matching KV head."""
    num_groups = kv.shape[1]
    if num_heads % num_groups != 0:
        raise ValueError("num_heads must be a multiple of the number of KV groups")
    return np.repeat(kv, num_heads // num_groups, axis=1)


def reduce_heads_to_kv(grad_heads: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum per-head KV gradients back into the shared KV groups."""
    tokens, num_heads, dim = grad_heads.shape
    if num_heads % num_groups != 0:
        raise ValueError("num_heads must be a multiple of num_groups")
    grouped = grad_heads.reshape(tokens, num_groups, num_heads // num_groups, dim)
    return grouped.sum(axis=2)


def _masked_scores(
    q: np.ndarray, k: np.ndarray, q_offset: int, k_offset: int, scale: float
) -> np.ndarray:
    """Scaled dot-product scores ``[heads, Tq, Tk]`` with the causal mask applied."""
    num_heads = q.shape[1]
    k_heads = expand_kv_to_heads(k, num_heads)
    # scores[h, i, j] = q[i, h, :] . k[j, h, :]
    scores = np.einsum("ihd,jhd->hij", q, k_heads) * scale
    q_pos = q_offset + np.arange(q.shape[0])[:, None]
    k_pos = k_offset + np.arange(k.shape[0])[None, :]
    mask = k_pos > q_pos
    scores = np.where(mask[None, :, :], _NEG_INF, scores)
    return scores


def attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_offset: int = 0,
    k_offset: int = 0,
    scale: float | None = None,
) -> np.ndarray:
    """Dense causal attention — the ground truth the blockwise path is tested against."""
    _check_qkv(q, k, v)
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[2])
    scores = _masked_scores(q, k, q_offset, k_offset, scale)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    probs /= probs.sum(axis=-1, keepdims=True)
    v_heads = expand_kv_to_heads(v, q.shape[1])
    return np.einsum("hij,jhd->ihd", probs, v_heads)


def attention_block_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_offset: int = 0,
    k_offset: int = 0,
    scale: float | None = None,
) -> AttentionOutput:
    """Attention of a query block against one KV block, returning *unnormalised-safe* output.

    The returned ``out`` is already normalised by this block's own softmax
    denominator and ``lse`` is the block's log-sum-exp, so partial results can
    be merged exactly with :func:`merge_partial_attention`.  Queries that see
    no valid key in this block (fully masked rows) return zero output and
    ``lse = -inf``.
    """
    _check_qkv(q, k, v)
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[2])
    scores = _masked_scores(q, k, q_offset, k_offset, scale)
    row_max = scores.max(axis=-1)
    safe_max = np.where(np.isfinite(row_max) & (row_max > _NEG_INF / 2), row_max, 0.0)
    exp = np.exp(scores - safe_max[..., None])
    exp = np.where(scores <= _NEG_INF / 2, 0.0, exp)
    denom = exp.sum(axis=-1)
    with np.errstate(divide="ignore"):
        lse = np.where(denom > 0, np.log(denom) + safe_max, -np.inf)
    v_heads = expand_kv_to_heads(v, q.shape[1])
    numer = np.einsum("hij,jhd->ihd", exp, v_heads)
    with np.errstate(invalid="ignore"):
        out = np.where(
            denom.T[:, :, None] > 0, numer / np.maximum(denom.T[:, :, None], 1e-300), 0.0
        )
    return AttentionOutput(out=out, lse=lse)


def merge_partial_attention(
    a: AttentionOutput, b: AttentionOutput
) -> AttentionOutput:
    """Merge two partial attention results via the online-softmax identity.

    Given outputs normalised within their own key sets and their log-sum-exps,
    the exact combined output is the lse-weighted average — the "merged ...
    via the online softmax method" step of Section 4.2.2.
    """
    if a.out.shape != b.out.shape:
        raise ValueError("partial outputs must have identical shapes")
    lse = np.logaddexp(a.lse, b.lse)
    weight_a = np.exp(a.lse - lse)
    weight_b = np.exp(b.lse - lse)
    weight_a = np.where(np.isfinite(a.lse), weight_a, 0.0)
    weight_b = np.where(np.isfinite(b.lse), weight_b, 0.0)
    out = a.out * weight_a.T[:, :, None] + b.out * weight_b.T[:, :, None]
    return AttentionOutput(out=out, lse=lse)


def blockwise_attention_forward(
    q: np.ndarray,
    kv_blocks: Sequence[Tuple[np.ndarray, np.ndarray]],
    q_offset: int = 0,
    scale: float | None = None,
    block_offsets: Sequence[int] | None = None,
) -> AttentionOutput:
    """Attention of a query block against a list of KV chunks (the KV cache).

    ``kv_blocks`` are consecutive chunks covering positions starting at 0 (or
    at ``block_offsets`` when given).  Partial results are merged chunk by
    chunk with the online softmax, reproducing how SlimPipe attends a slice to
    its chunked KV cache — possibly with some chunks computed on a *different
    device* and merged on return.
    """
    if not kv_blocks:
        raise ValueError("kv_blocks must contain at least one chunk")
    if block_offsets is None:
        offsets = []
        position = 0
        for k, _ in kv_blocks:
            offsets.append(position)
            position += k.shape[0]
    else:
        offsets = list(block_offsets)
        if len(offsets) != len(kv_blocks):
            raise ValueError("block_offsets must match kv_blocks")
    result: AttentionOutput | None = None
    for (k, v), offset in zip(kv_blocks, offsets):
        partial = attention_block_forward(q, k, v, q_offset, offset, scale)
        result = partial if result is None else merge_partial_attention(result, partial)
    assert result is not None
    return result


def attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_offset: int = 0,
    k_offset: int = 0,
    scale: float | None = None,
) -> AttentionOutput:
    """Dense forward that also returns the log-sum-exp needed by the backward."""
    return attention_block_forward(q, k, v, q_offset, k_offset, scale)


def attention_block_backward(
    grad_out: np.ndarray,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    out: np.ndarray,
    lse: np.ndarray,
    q_offset: int = 0,
    k_offset: int = 0,
    scale: float | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of one (query block, KV block) pair.

    ``out`` and ``lse`` are the *final* (fully merged) output and log-sum-exp
    of the query block over its complete key set; the probabilities of this KV
    block are recomputed from them, exactly as FlashAttention's backward does.
    Returns ``(dq, dk, dv)`` where ``dq`` is this block's *contribution* (sum
    contributions over all KV blocks to get the full query gradient).
    """
    num_heads, num_groups = _check_qkv(q, k, v)
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[2])
    scores = _masked_scores(q, k, q_offset, k_offset, scale)
    # p[h, i, j] = exp(s - lse_i): the exact softmax probabilities of this block.
    probs = np.exp(scores - lse[:, :, None])
    probs = np.where(scores <= _NEG_INF / 2, 0.0, probs)

    v_heads = expand_kv_to_heads(v, num_heads)
    # dv[j, h, d] = sum_i p[h, i, j] * grad_out[i, h, d]
    dv_heads = np.einsum("hij,ihd->jhd", probs, grad_out)
    # dp[h, i, j] = grad_out[i, h, :] . v[j, h, :]
    dp = np.einsum("ihd,jhd->hij", grad_out, v_heads)
    # delta[h, i] = grad_out[i, h, :] . out[i, h, :]  (softmax Jacobian diagonal term)
    delta = np.einsum("ihd,ihd->hi", grad_out, out)
    ds = probs * (dp - delta[:, :, None])
    k_heads = expand_kv_to_heads(k, num_heads)
    dq = np.einsum("hij,jhd->ihd", ds, k_heads) * scale
    dk_heads = np.einsum("hij,ihd->jhd", ds, q) * scale
    dk = reduce_heads_to_kv(dk_heads, num_groups)
    dv = reduce_heads_to_kv(dv_heads, num_groups)
    return dq, dk, dv
