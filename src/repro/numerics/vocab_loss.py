"""Vocabulary-parallel output projection and sharded cross-entropy (Section 4.3).

The vocabulary matrix is split column-wise over the pipeline devices; each
device computes its shard of the logits and the loss is assembled from the
sharded logits by synchronising only two scalars per token — the global
running max and the global log-sum-exp — never the logits themselves.  The
backward likewise needs only those scalars: each shard computes its own
``softmax_shard - onehot_shard`` locally, and the input-gradient contributions
of the shards sum to the full gradient.

The functions here are written for an arbitrary number of shards and are
validated against the unsharded :func:`repro.numerics.functional.cross_entropy_forward`
in ``tests/test_vocab_loss.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "VocabShard",
    "ShardedCrossEntropyCache",
    "shard_vocab_weights",
    "sharded_cross_entropy_forward",
    "sharded_cross_entropy_backward",
]


@dataclass(frozen=True)
class VocabShard:
    """One device's column shard of the vocabulary projection."""

    weight: np.ndarray  # [h, V_shard]
    vocab_start: int

    @property
    def vocab_size(self) -> int:
        return self.weight.shape[1]

    @property
    def vocab_stop(self) -> int:
        return self.vocab_start + self.vocab_size


def shard_vocab_weights(weight: np.ndarray, num_shards: int) -> List[VocabShard]:
    """Split a ``[h, V]`` projection into ``num_shards`` column shards.

    The vocabulary dimension must divide evenly — the paper's 128,000-entry
    vocabulary divides by every pipeline size used in the evaluation.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    vocab = weight.shape[1]
    if vocab % num_shards != 0:
        raise ValueError(f"vocabulary of {vocab} does not divide into {num_shards} shards")
    width = vocab // num_shards
    return [
        VocabShard(weight=weight[:, i * width : (i + 1) * width], vocab_start=i * width)
        for i in range(num_shards)
    ]


@dataclass
class ShardedCrossEntropyCache:
    """Saved tensors of the sharded loss: per-shard logits and the global stats."""

    hidden: np.ndarray
    shards: List[VocabShard]
    shard_logits: List[np.ndarray]
    global_max: np.ndarray  # [T]
    global_lse: np.ndarray  # [T] log-sum-exp over the full vocabulary
    targets: np.ndarray
    normalizer: float


def sharded_cross_entropy_forward(
    hidden: np.ndarray,
    shards: Sequence[VocabShard],
    targets: np.ndarray,
    normalizer: float | None = None,
) -> Tuple[float, ShardedCrossEntropyCache]:
    """Loss from column-sharded logits with only scalar statistics shared.

    Each shard computes ``logits_s = hidden @ W_s`` and its local max and
    sum-of-exponentials; the "all-reduce" of the per-token max and the
    log-sum-exp is the only cross-shard traffic, plus one scalar per token for
    the target logit (held by exactly one shard).
    """
    targets = np.asarray(targets)
    if hidden.ndim != 2 or targets.ndim != 1 or hidden.shape[0] != targets.shape[0]:
        raise ValueError("hidden must be [T, h] and targets [T]")
    if not shards:
        raise ValueError("at least one vocabulary shard is required")
    tokens = hidden.shape[0]
    norm = float(normalizer) if normalizer is not None else float(tokens)
    if norm <= 0:
        raise ValueError("normalizer must be positive")

    shard_logits = [hidden @ s.weight for s in shards]

    # --- "collective" part: max and log-sum-exp over the vocabulary ---------
    local_max = np.stack([sl.max(axis=-1) for sl in shard_logits])  # [S, T]
    global_max = local_max.max(axis=0)  # [T]
    local_sumexp = np.stack(
        [np.exp(sl - global_max[:, None]).sum(axis=-1) for sl in shard_logits]
    )
    global_lse = np.log(local_sumexp.sum(axis=0)) + global_max  # [T]

    # --- target logit: exactly one shard owns each token's target -----------
    target_logit = np.zeros(tokens)
    for sl, shard in zip(shard_logits, shards):
        mask = (targets >= shard.vocab_start) & (targets < shard.vocab_stop)
        if mask.any():
            local_targets = targets[mask] - shard.vocab_start
            target_logit[mask] = sl[mask, local_targets]

    loss = float((global_lse - target_logit).sum() / norm)
    cache = ShardedCrossEntropyCache(
        hidden=hidden,
        shards=list(shards),
        shard_logits=shard_logits,
        global_max=global_max,
        global_lse=global_lse,
        targets=targets,
        normalizer=norm,
    )
    return loss, cache


def sharded_cross_entropy_backward(
    grad_loss: float, cache: ShardedCrossEntropyCache
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Gradients of the sharded loss.

    Returns ``(grad_hidden, [grad_weight_shard, ...])``.  ``grad_hidden`` is the
    *sum* of every shard's contribution — in the real system this is the
    reduce performed when the broadcast hidden states' gradients return to the
    owning device.
    """
    tokens = cache.hidden.shape[0]
    grad_hidden = np.zeros_like(cache.hidden)
    grad_weights: List[np.ndarray] = []
    scale = grad_loss / cache.normalizer
    for sl, shard in zip(cache.shard_logits, cache.shards):
        probs = np.exp(sl - cache.global_lse[:, None])
        dlogits = probs
        mask = (cache.targets >= shard.vocab_start) & (cache.targets < shard.vocab_stop)
        if mask.any():
            local_targets = cache.targets[mask] - shard.vocab_start
            dlogits[mask, local_targets] -= 1.0
        dlogits = dlogits * scale
        grad_hidden += dlogits @ shard.weight.T
        grad_weights.append(cache.hidden.T @ dlogits)
    return grad_hidden, grad_weights
