"""Mixture-of-Experts MLP block (Mixtral-style top-k routing) in NumPy.

The paper's evaluation covers two MoE models (Mixtral 8x7B and 8x22B) whose
MLP is replaced by a router plus ``E`` SwiGLU experts, of which ``k`` are
activated per token (2 of 8 in the paper, with the router balanced for the
performance runs).  This module implements that block with an explicit
forward/backward pair in the same style as the dense layers, so the MoE
arithmetic that the expert-parallel cost/memory models describe is also
exercised numerically:

* the router computes per-token logits, keeps the top-``k`` experts and
  weights them with a softmax **over the selected logits** (the Mixtral
  convention);
* each expert is an independent SwiGLU MLP; tokens are dispatched to their
  selected experts and the expert outputs are combined with the routing
  weights;
* the backward propagates through the combine weights, the experts and the
  router, touching only the experts each token actually selected.

``tests/test_numerics_moe.py`` checks the degenerate equivalences (one expert,
or identical experts with ``k = E``, reduce to the dense SwiGLU MLP) and
validates every gradient against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .functional import linear_backward, linear_forward, swiglu_backward, swiglu_forward

__all__ = ["MoEMLPParams", "MoEMLPGradients", "MoEMLPCache", "moe_mlp_forward", "moe_mlp_backward"]


@dataclass
class MoEMLPParams:
    """Weights of a routed MoE MLP block.

    ``router`` is ``[h, E]``; each expert ``e`` has its own SwiGLU weights
    ``w_gate[e]``/``w_up[e]`` (``[h, ffn]``) and ``w_down[e]`` (``[ffn, h]``).
    """

    router: np.ndarray
    w_gate: List[np.ndarray]
    w_up: List[np.ndarray]
    w_down: List[np.ndarray]
    experts_per_token: int = 2

    def __post_init__(self) -> None:
        experts = self.router.shape[1]
        if not (len(self.w_gate) == len(self.w_up) == len(self.w_down) == experts):
            raise ValueError("router width must match the number of expert weight sets")
        if not 0 < self.experts_per_token <= experts:
            raise ValueError("experts_per_token must be in (0, num_experts]")

    @property
    def num_experts(self) -> int:
        return self.router.shape[1]

    @property
    def hidden_size(self) -> int:
        return self.router.shape[0]

    @classmethod
    def init(
        cls,
        rng: np.random.Generator,
        hidden_size: int,
        ffn_size: int,
        num_experts: int,
        experts_per_token: int = 2,
        scale: float = 0.02,
    ) -> "MoEMLPParams":
        def w(shape):
            return rng.standard_normal(shape) * scale

        return cls(
            router=w((hidden_size, num_experts)),
            w_gate=[w((hidden_size, ffn_size)) for _ in range(num_experts)],
            w_up=[w((hidden_size, ffn_size)) for _ in range(num_experts)],
            w_down=[w((ffn_size, hidden_size)) for _ in range(num_experts)],
            experts_per_token=experts_per_token,
        )


@dataclass
class MoEMLPGradients:
    """Gradients matching :class:`MoEMLPParams`."""

    router: np.ndarray
    w_gate: List[np.ndarray]
    w_up: List[np.ndarray]
    w_down: List[np.ndarray]

    @classmethod
    def zeros_like(cls, params: MoEMLPParams) -> "MoEMLPGradients":
        return cls(
            router=np.zeros_like(params.router),
            w_gate=[np.zeros_like(w) for w in params.w_gate],
            w_up=[np.zeros_like(w) for w in params.w_up],
            w_down=[np.zeros_like(w) for w in params.w_down],
        )


@dataclass
class MoEMLPCache:
    """Saved tensors of the routed block."""

    x: np.ndarray
    router_logits: np.ndarray
    selected: np.ndarray  # [T, k] expert indices
    weights: np.ndarray  # [T, k] combine weights (softmax over selected logits)
    expert_tokens: Dict[int, np.ndarray]  # expert -> token indices routed to it
    expert_caches: Dict[int, Tuple[object, object, object, object]]
    expert_outputs: Dict[int, np.ndarray]


def _softmax(values: np.ndarray) -> np.ndarray:
    shifted = values - values.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def moe_mlp_forward(params: MoEMLPParams, x: np.ndarray) -> Tuple[np.ndarray, MoEMLPCache]:
    """Forward the routed MoE MLP over ``x`` of shape ``[T, h]``."""
    if x.ndim != 2 or x.shape[1] != params.hidden_size:
        raise ValueError(f"x must be [T, {params.hidden_size}]")
    tokens = x.shape[0]
    k = params.experts_per_token

    logits = x @ params.router  # [T, E]
    # Top-k selection (descending by logit), weights = softmax over the selected logits.
    selected = np.argsort(-logits, axis=-1)[:, :k]  # [T, k]
    selected_logits = np.take_along_axis(logits, selected, axis=-1)
    weights = _softmax(selected_logits)

    out = np.zeros_like(x)
    expert_tokens: Dict[int, np.ndarray] = {}
    expert_caches: Dict[int, Tuple[object, object, object, object]] = {}
    expert_outputs: Dict[int, np.ndarray] = {}
    for expert in range(params.num_experts):
        token_mask = (selected == expert).any(axis=-1)
        token_ids = np.nonzero(token_mask)[0]
        if token_ids.size == 0:
            continue
        expert_in = x[token_ids]
        gate, gate_cache = linear_forward(expert_in, params.w_gate[expert])
        up, up_cache = linear_forward(expert_in, params.w_up[expert])
        activated, swiglu_cache = swiglu_forward(gate, up)
        down, down_cache = linear_forward(activated, params.w_down[expert])
        expert_tokens[expert] = token_ids
        expert_caches[expert] = (gate_cache, up_cache, swiglu_cache, down_cache)
        expert_outputs[expert] = down
        # Combine with this expert's routing weight for each routed token.
        slot = np.argmax(selected[token_ids] == expert, axis=-1)
        w = weights[token_ids, slot][:, None]
        out[token_ids] += w * down

    cache = MoEMLPCache(
        x=x,
        router_logits=logits,
        selected=selected,
        weights=weights,
        expert_tokens=expert_tokens,
        expert_caches=expert_caches,
        expert_outputs=expert_outputs,
    )
    return out, cache


def moe_mlp_backward(
    params: MoEMLPParams, grad_out: np.ndarray, cache: MoEMLPCache
) -> Tuple[np.ndarray, MoEMLPGradients]:
    """Backward the routed MoE MLP; returns ``(grad_x, gradients)``."""
    grads = MoEMLPGradients.zeros_like(params)
    grad_x = np.zeros_like(cache.x)
    tokens, k = cache.selected.shape
    grad_selected_logits = np.zeros_like(cache.weights)  # [T, k]

    for expert, token_ids in cache.expert_tokens.items():
        gate_cache, up_cache, swiglu_cache, down_cache = cache.expert_caches[expert]
        expert_out = cache.expert_outputs[expert]
        slot = np.argmax(cache.selected[token_ids] == expert, axis=-1)
        w = cache.weights[token_ids, slot][:, None]
        g_out = grad_out[token_ids]

        # Gradient w.r.t. the combine weight of this (token, expert) pair.
        grad_selected_logits[token_ids, slot] += np.sum(g_out * expert_out, axis=-1)

        # Gradient through the expert itself.
        grad_expert_out = g_out * w
        grad_activated, d_down, _ = linear_backward(grad_expert_out, down_cache)
        grad_gate, grad_up = swiglu_backward(grad_activated, swiglu_cache)
        grad_in_gate, d_gate, _ = linear_backward(grad_gate, gate_cache)
        grad_in_up, d_up, _ = linear_backward(grad_up, up_cache)
        grads.w_down[expert] += d_down
        grads.w_gate[expert] += d_gate
        grads.w_up[expert] += d_up
        grad_x[token_ids] += grad_in_gate + grad_in_up

    # Softmax (over the selected logits) Jacobian: dz = w * (dw - sum(dw * w)).
    weights = cache.weights
    dot = np.sum(grad_selected_logits * weights, axis=-1, keepdims=True)
    grad_selected = weights * (grad_selected_logits - dot)

    # Scatter back into the full router-logit gradient and through the router.
    grad_logits = np.zeros_like(cache.router_logits)
    np.put_along_axis(grad_logits, cache.selected, grad_selected, axis=-1)
    grads.router += cache.x.T @ grad_logits
    grad_x += grad_logits @ params.router.T
    return grad_x, grads
