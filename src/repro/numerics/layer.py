"""One transformer layer of the numeric engine, processed slice by slice.

The layer follows the Llama architecture the paper evaluates: RMSNorm →
grouped-query causal self-attention (with rotary embeddings omitted — they are
orthogonal to the scheduling question) → residual → RMSNorm → SwiGLU MLP →
residual.

The forward processes one *slice* of the sequence given the KV chunks of all
earlier slices (the chunked KV cache), returning the slice's own new KV chunk.
The backward mirrors the SlimPipe LIFO order: it receives, in addition to the
upstream gradient, the ``dK``/``dV`` contributions that *later* slices'
backwards have already accumulated against this slice's KV chunk, and it
returns the contributions this slice's backward produces against *earlier*
slices' chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .attention import (
    AttentionOutput,
    attention_block_backward,
    blockwise_attention_forward,
)
from .functional import (
    LinearCache,
    RMSNormCache,
    SwiGLUCache,
    linear_backward,
    linear_forward,
    rmsnorm_backward,
    rmsnorm_forward,
    swiglu_backward,
    swiglu_forward,
)

__all__ = ["TransformerLayerParams", "LayerGradients", "LayerCache", "layer_forward", "layer_backward"]


@dataclass
class TransformerLayerParams:
    """Weights of one transformer layer.

    Shapes
    ------
    * ``attn_norm`` / ``mlp_norm``: ``[h]``
    * ``wq``: ``[h, a * d]``, ``wk`` / ``wv``: ``[h, g * d]``, ``wo``: ``[a * d, h]``
    * ``w_gate`` / ``w_up``: ``[h, ffn]``, ``w_down``: ``[ffn, h]``
    """

    attn_norm: np.ndarray
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    mlp_norm: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    num_heads: int
    num_groups: int

    def __post_init__(self) -> None:
        hidden = self.attn_norm.shape[0]
        head_dim = self.wq.shape[1] // self.num_heads
        if self.num_heads % self.num_groups != 0:
            raise ValueError("num_heads must be a multiple of num_groups")
        if self.wq.shape != (hidden, self.num_heads * head_dim):
            raise ValueError("wq shape inconsistent with num_heads")
        if self.wk.shape != (hidden, self.num_groups * head_dim):
            raise ValueError("wk shape inconsistent with num_groups")
        if self.wv.shape != self.wk.shape:
            raise ValueError("wv must match wk")
        if self.wo.shape != (self.num_heads * head_dim, hidden):
            raise ValueError("wo shape inconsistent")

    # ------------------------------------------------------------------
    @property
    def hidden_size(self) -> int:
        return self.attn_norm.shape[0]

    @property
    def head_dim(self) -> int:
        return self.wq.shape[1] // self.num_heads

    @classmethod
    def init(
        cls,
        rng: np.random.Generator,
        hidden_size: int,
        num_heads: int,
        num_groups: int,
        ffn_size: int,
        dtype=np.float64,
        scale: float = 0.02,
    ) -> "TransformerLayerParams":
        """Randomly initialise a layer (small scale keeps softmax well-conditioned)."""
        head_dim = hidden_size // num_heads

        def w(shape):
            return (rng.standard_normal(shape) * scale).astype(dtype)

        return cls(
            attn_norm=np.ones(hidden_size, dtype=dtype),
            wq=w((hidden_size, num_heads * head_dim)),
            wk=w((hidden_size, num_groups * head_dim)),
            wv=w((hidden_size, num_groups * head_dim)),
            wo=w((num_heads * head_dim, hidden_size)),
            mlp_norm=np.ones(hidden_size, dtype=dtype),
            w_gate=w((hidden_size, ffn_size)),
            w_up=w((hidden_size, ffn_size)),
            w_down=w((ffn_size, hidden_size)),
            num_heads=num_heads,
            num_groups=num_groups,
        )


@dataclass
class LayerGradients:
    """Gradients of one layer's weights (same shapes as the parameters)."""

    attn_norm: np.ndarray
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    mlp_norm: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray

    @classmethod
    def zeros_like(cls, params: TransformerLayerParams) -> "LayerGradients":
        return cls(
            attn_norm=np.zeros_like(params.attn_norm),
            wq=np.zeros_like(params.wq),
            wk=np.zeros_like(params.wk),
            wv=np.zeros_like(params.wv),
            wo=np.zeros_like(params.wo),
            mlp_norm=np.zeros_like(params.mlp_norm),
            w_gate=np.zeros_like(params.w_gate),
            w_up=np.zeros_like(params.w_up),
            w_down=np.zeros_like(params.w_down),
        )

    def add_(self, other: "LayerGradients") -> None:
        """In-place accumulation (gradient accumulation across slices)."""
        for name in vars(self):
            getattr(self, name).__iadd__(getattr(other, name))

    def as_dict(self) -> Dict[str, np.ndarray]:
        return dict(vars(self))


@dataclass
class LayerCache:
    """Activations a slice's forward saves for its backward."""

    attn_norm_cache: RMSNormCache
    q_cache: LinearCache
    k_cache: LinearCache
    v_cache: LinearCache
    o_cache: LinearCache
    attention: AttentionOutput
    q: np.ndarray
    kv_offsets: List[int]
    mlp_norm_cache: RMSNormCache
    gate_cache: LinearCache
    up_cache: LinearCache
    swiglu_cache: SwiGLUCache
    down_cache: LinearCache
    q_offset: int


def layer_forward(
    params: TransformerLayerParams,
    x: np.ndarray,
    kv_cache: Sequence[Tuple[np.ndarray, np.ndarray]],
    q_offset: int,
    kv_offsets: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray], LayerCache]:
    """Forward one slice through the layer.

    Parameters
    ----------
    x:
        Slice input, ``[T_slice, h]``.
    kv_cache:
        KV chunks of all *earlier* slices of the same sequence, oldest first.
    q_offset:
        Global position of the slice's first token.
    kv_offsets:
        Global position of each cached chunk's first token (defaults to the
        chunks being contiguous from position 0).

    Returns ``(output, (k_slice, v_slice), cache)`` — the new KV chunk is what
    the caller appends to the chunked KV cache.
    """
    tokens = x.shape[0]
    heads, groups, head_dim = params.num_heads, params.num_groups, params.head_dim

    normed, attn_norm_cache = rmsnorm_forward(x, params.attn_norm)
    q_flat, q_cache = linear_forward(normed, params.wq)
    k_flat, k_cache = linear_forward(normed, params.wk)
    v_flat, v_cache = linear_forward(normed, params.wv)
    q = q_flat.reshape(tokens, heads, head_dim)
    k = k_flat.reshape(tokens, groups, head_dim)
    v = v_flat.reshape(tokens, groups, head_dim)

    blocks = list(kv_cache) + [(k, v)]
    if kv_offsets is None:
        offsets = []
        pos = 0
        for bk, _ in kv_cache:
            offsets.append(pos)
            pos += bk.shape[0]
        offsets.append(q_offset)
    else:
        offsets = list(kv_offsets) + [q_offset]
    attention = blockwise_attention_forward(q, blocks, q_offset, block_offsets=offsets)

    attn_flat = attention.out.reshape(tokens, heads * head_dim)
    attn_proj, o_cache = linear_forward(attn_flat, params.wo)
    h1 = x + attn_proj

    normed2, mlp_norm_cache = rmsnorm_forward(h1, params.mlp_norm)
    gate, gate_cache = linear_forward(normed2, params.w_gate)
    up, up_cache = linear_forward(normed2, params.w_up)
    activated, swiglu_cache = swiglu_forward(gate, up)
    down, down_cache = linear_forward(activated, params.w_down)
    out = h1 + down

    cache = LayerCache(
        attn_norm_cache=attn_norm_cache,
        q_cache=q_cache,
        k_cache=k_cache,
        v_cache=v_cache,
        o_cache=o_cache,
        attention=attention,
        q=q,
        kv_offsets=offsets,
        mlp_norm_cache=mlp_norm_cache,
        gate_cache=gate_cache,
        up_cache=up_cache,
        swiglu_cache=swiglu_cache,
        down_cache=down_cache,
        q_offset=q_offset,
    )
    return out, (k, v), cache


def layer_backward(
    params: TransformerLayerParams,
    grad_out: np.ndarray,
    cache: LayerCache,
    kv_cache: Sequence[Tuple[np.ndarray, np.ndarray]],
    own_kv: Tuple[np.ndarray, np.ndarray],
    extra_dk_dv: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, LayerGradients, List[Tuple[np.ndarray, np.ndarray]]]:
    """Backward one slice through the layer (SlimPipe LIFO order).

    Parameters
    ----------
    grad_out:
        Gradient w.r.t. the slice's layer output.
    kv_cache:
        The same earlier-slice KV chunks the forward attended to.
    own_kv:
        This slice's own KV chunk (as returned by :func:`layer_forward`).
    extra_dk_dv:
        Accumulated gradient contributions against this slice's own KV chunk
        coming from *later* slices' backwards (``None`` for the last slice).

    Returns
    -------
    ``(grad_x, layer_gradients, earlier_chunk_grads)`` where
    ``earlier_chunk_grads[i]`` is this backward's ``(dK, dV)`` contribution to
    the ``i``-th earlier chunk — the caller adds it to that chunk's
    accumulator, to be consumed when that slice's backward runs.
    """
    tokens = grad_out.shape[0]
    heads, groups, head_dim = params.num_heads, params.num_groups, params.head_dim

    # MLP branch -----------------------------------------------------------
    grad_h1 = grad_out.copy()
    grad_down_in, d_w_down, _ = linear_backward(grad_out, cache.down_cache)
    grad_gate, grad_up = swiglu_backward(grad_down_in, cache.swiglu_cache)
    grad_normed2_a, d_w_gate, _ = linear_backward(grad_gate, cache.gate_cache)
    grad_normed2_b, d_w_up, _ = linear_backward(grad_up, cache.up_cache)
    grad_normed2 = grad_normed2_a + grad_normed2_b
    grad_h1_mlp, d_mlp_norm = rmsnorm_backward(grad_normed2, cache.mlp_norm_cache)
    grad_h1 += grad_h1_mlp

    # Attention branch ------------------------------------------------------
    grad_x = grad_h1.copy()
    grad_attn_flat, d_wo, _ = linear_backward(grad_h1, cache.o_cache)
    grad_attn = grad_attn_flat.reshape(tokens, heads, head_dim)

    blocks = list(kv_cache) + [own_kv]
    offsets = cache.kv_offsets
    dq_total = np.zeros_like(cache.q)
    chunk_grads: List[Tuple[np.ndarray, np.ndarray]] = []
    for (bk, bv), offset in zip(blocks, offsets):
        dq, dk, dv = attention_block_backward(
            grad_attn,
            cache.q,
            bk,
            bv,
            cache.attention.out,
            cache.attention.lse,
            q_offset=cache.q_offset,
            k_offset=offset,
        )
        dq_total += dq
        chunk_grads.append((dk, dv))

    earlier_chunk_grads = chunk_grads[:-1]
    own_dk, own_dv = chunk_grads[-1]
    if extra_dk_dv is not None:
        own_dk = own_dk + extra_dk_dv[0]
        own_dv = own_dv + extra_dk_dv[1]

    # Project gradients back through the slice's own Q/K/V linears ----------
    grad_q_flat = dq_total.reshape(tokens, heads * head_dim)
    grad_k_flat = own_dk.reshape(tokens, groups * head_dim)
    grad_v_flat = own_dv.reshape(tokens, groups * head_dim)
    grad_normed_q, d_wq, _ = linear_backward(grad_q_flat, cache.q_cache)
    grad_normed_k, d_wk, _ = linear_backward(grad_k_flat, cache.k_cache)
    grad_normed_v, d_wv, _ = linear_backward(grad_v_flat, cache.v_cache)
    grad_normed = grad_normed_q + grad_normed_k + grad_normed_v
    grad_x_attn, d_attn_norm = rmsnorm_backward(grad_normed, cache.attn_norm_cache)
    grad_x += grad_x_attn

    grads = LayerGradients(
        attn_norm=d_attn_norm,
        wq=d_wq,
        wk=d_wk,
        wv=d_wv,
        wo=d_wo,
        mlp_norm=d_mlp_norm,
        w_gate=d_w_gate,
        w_up=d_w_up,
        w_down=d_w_down,
    )
    return grad_x, grads, earlier_chunk_grads
