"""A complete decoder-only transformer in NumPy — the single-device reference.

:class:`ReferenceModel` runs the *unsliced* forward and backward over a whole
sequence on "one device": token embedding, ``L`` transformer layers, a final
RMSNorm, the vocabulary projection and the token-mean cross-entropy loss.  It
is the ground truth every sliced / exchanged / vocabulary-parallel execution
in :mod:`repro.numerics.pipeline_runner` is compared against.

:class:`ModelParams` is the shared parameter container: the pipeline runner
partitions the very same object by pipeline stage, so gradient comparisons are
parameter-by-parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .functional import (
    cross_entropy_backward,
    cross_entropy_forward,
    embedding_backward,
    embedding_forward,
    linear_backward,
    linear_forward,
    rmsnorm_backward,
    rmsnorm_forward,
)
from .layer import LayerGradients, TransformerLayerParams, layer_backward, layer_forward

__all__ = ["NumericModelConfig", "ModelParams", "ModelGradients", "ReferenceModel"]


@dataclass(frozen=True)
class NumericModelConfig:
    """Architecture of the numeric test model (a scaled-down Llama)."""

    num_layers: int = 2
    hidden_size: int = 16
    num_heads: int = 4
    num_groups: int = 2
    ffn_size: int = 32
    vocab_size: int = 64

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_groups != 0:
            raise ValueError("num_heads must be divisible by num_groups")
        for name in ("num_layers", "hidden_size", "num_heads", "num_groups", "ffn_size", "vocab_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass
class ModelParams:
    """All weights of the numeric model."""

    config: NumericModelConfig
    embedding: np.ndarray  # [V, h]
    layers: List[TransformerLayerParams]
    final_norm: np.ndarray  # [h]
    output_weight: np.ndarray  # [h, V]

    @classmethod
    def init(cls, config: NumericModelConfig, seed: int = 0) -> "ModelParams":
        rng = np.random.default_rng(seed)
        layers = [
            TransformerLayerParams.init(
                rng,
                hidden_size=config.hidden_size,
                num_heads=config.num_heads,
                num_groups=config.num_groups,
                ffn_size=config.ffn_size,
            )
            for _ in range(config.num_layers)
        ]
        return cls(
            config=config,
            embedding=rng.standard_normal((config.vocab_size, config.hidden_size)) * 0.02,
            layers=layers,
            final_norm=np.ones(config.hidden_size),
            output_weight=rng.standard_normal((config.hidden_size, config.vocab_size)) * 0.02,
        )


@dataclass
class ModelGradients:
    """Gradients matching :class:`ModelParams` structure."""

    embedding: np.ndarray
    layers: List[LayerGradients]
    final_norm: np.ndarray
    output_weight: np.ndarray

    @classmethod
    def zeros_like(cls, params: ModelParams) -> "ModelGradients":
        return cls(
            embedding=np.zeros_like(params.embedding),
            layers=[LayerGradients.zeros_like(layer) for layer in params.layers],
            final_norm=np.zeros_like(params.final_norm),
            output_weight=np.zeros_like(params.output_weight),
        )

    def flatten(self) -> Dict[str, np.ndarray]:
        """Flat name → gradient mapping, convenient for comparisons."""
        out: Dict[str, np.ndarray] = {
            "embedding": self.embedding,
            "final_norm": self.final_norm,
            "output_weight": self.output_weight,
        }
        for i, layer in enumerate(self.layers):
            for name, value in layer.as_dict().items():
                out[f"layer{i}.{name}"] = value
        return out


class ReferenceModel:
    """Unsliced single-device forward/backward — the gradient ground truth."""

    def __init__(self, params: ModelParams):
        self.params = params

    # ------------------------------------------------------------------
    def loss_and_gradients(
        self, tokens: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, ModelGradients]:
        """Token-mean cross-entropy loss and gradients of every parameter."""
        params = self.params
        tokens = np.asarray(tokens)
        targets = np.asarray(targets)
        if tokens.shape != targets.shape or tokens.ndim != 1:
            raise ValueError("tokens and targets must be 1-D and equally long")

        # Forward ---------------------------------------------------------
        x, emb_cache = embedding_forward(tokens, params.embedding)
        layer_caches = []
        layer_kv = []
        for layer in params.layers:
            x, own_kv, cache = layer_forward(layer, x, kv_cache=[], q_offset=0)
            layer_caches.append(cache)
            layer_kv.append(own_kv)
        normed, final_norm_cache = rmsnorm_forward(x, params.final_norm)
        logits, out_cache = linear_forward(normed, params.output_weight)
        loss, ce_cache = cross_entropy_forward(logits, targets)

        # Backward --------------------------------------------------------
        grads = ModelGradients.zeros_like(params)
        dlogits = cross_entropy_backward(1.0, ce_cache)
        dnormed, d_out_w, _ = linear_backward(dlogits, out_cache)
        grads.output_weight += d_out_w
        dx, d_final_norm = rmsnorm_backward(dnormed, final_norm_cache)
        grads.final_norm += d_final_norm
        for index in reversed(range(len(params.layers))):
            dx, layer_grads, earlier = layer_backward(
                params.layers[index],
                dx,
                layer_caches[index],
                kv_cache=[],
                own_kv=layer_kv[index],
            )
            assert earlier == []  # whole sequence processed as one slice
            grads.layers[index].add_(layer_grads)
        grads.embedding += embedding_backward(dx, emb_cache)
        return loss, grads

    # ------------------------------------------------------------------
    def loss(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Forward-only convenience."""
        value, _ = self.loss_and_gradients(tokens, targets)
        return value
