"""NumPy numeric engine.

This package re-implements, in plain NumPy, the exact arithmetic SlimPipe
performs on the GPU — a decoder-only transformer with RMSNorm, SwiGLU and
grouped-query causal attention, processed *slice by slice* with a KV cache,
attention context exchange merged through online softmax, and a
vocabulary-parallel sharded cross-entropy — so that the reproduction can
*prove* the method computes the same gradients as an unsliced single-device
reference (``tests/test_pipeline_runner.py``), which is the correctness claim
underlying the schedule and the exchange mechanism.

It is written for clarity and testability, not for speed: every operator
exposes an explicit ``forward`` returning a cache and a ``backward`` consuming
it, mirroring how a training framework stores activations.
"""

from .attention import (
    attention_block_backward,
    attention_forward,
    attention_reference,
    blockwise_attention_forward,
    merge_partial_attention,
)
from .functional import (
    cross_entropy_backward,
    cross_entropy_forward,
    embedding_backward,
    embedding_forward,
    linear_backward,
    linear_forward,
    rmsnorm_backward,
    rmsnorm_forward,
    swiglu_backward,
    swiglu_forward,
)
from .layer import LayerCache, TransformerLayerParams, layer_backward, layer_forward
from .model import ModelGradients, ModelParams, ReferenceModel
from .moe import MoEMLPGradients, MoEMLPParams, moe_mlp_backward, moe_mlp_forward
from .optimizer import SGD, Adam, named_parameters
from .pipeline_runner import SlimPipeNumericRunner, SlimPipeRunnerOptions
from .vocab_loss import (
    sharded_cross_entropy_backward,
    sharded_cross_entropy_forward,
    shard_vocab_weights,
)

__all__ = [
    "linear_forward",
    "linear_backward",
    "rmsnorm_forward",
    "rmsnorm_backward",
    "swiglu_forward",
    "swiglu_backward",
    "embedding_forward",
    "embedding_backward",
    "cross_entropy_forward",
    "cross_entropy_backward",
    "attention_forward",
    "attention_reference",
    "attention_block_backward",
    "blockwise_attention_forward",
    "merge_partial_attention",
    "TransformerLayerParams",
    "LayerCache",
    "layer_forward",
    "layer_backward",
    "ModelParams",
    "ModelGradients",
    "ReferenceModel",
    "shard_vocab_weights",
    "sharded_cross_entropy_forward",
    "sharded_cross_entropy_backward",
    "SlimPipeNumericRunner",
    "SlimPipeRunnerOptions",
    "MoEMLPParams",
    "MoEMLPGradients",
    "moe_mlp_forward",
    "moe_mlp_backward",
    "Adam",
    "SGD",
    "named_parameters",
]
