"""Pipeline-parallelism-aware activation offloading (Section 6.5).

For ultra-long contexts even SlimPipe's per-slice activations exceed device
memory, so the paper integrates activation offloading: a fraction of each
slice's stored activations is copied to host memory right after the forward
pass and fetched back just before the matching backward pass.  The transfers
ride the PCIe link and — as long as the per-slice compute time exceeds the
per-slice transfer time — overlap entirely with computation.

:class:`OffloadPlanner` answers the two questions Table 4 needs:

* **capacity**: what offload ratio makes the resident activations fit the
  device memory budget, and
* **overhead**: how much (if any) of the transfer time cannot be hidden
  behind compute, which inflates the iteration time and depresses MFU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import GPUSpec

__all__ = ["OffloadDecision", "OffloadPlanner"]


@dataclass(frozen=True)
class OffloadDecision:
    """Outcome of planning activation offload for one device.

    Attributes
    ----------
    ratio:
        Fraction of the stored activations moved to host memory (0 = keep
        everything on device, 1 = offload everything).
    resident_bytes:
        Activation bytes that stay on the device at the peak.
    offloaded_bytes:
        Activation bytes held in host memory at the peak.
    transfer_seconds_per_slice:
        D2H (or H2D) time of one slice's offloaded share.
    exposed_seconds_per_slice:
        Transfer time per slice that cannot be hidden behind the slice's
        compute (0 when fully overlapped).
    feasible:
        Whether the chosen ratio actually fits the memory budget.
    """

    ratio: float
    resident_bytes: float
    offloaded_bytes: float
    transfer_seconds_per_slice: float
    exposed_seconds_per_slice: float
    feasible: bool

    @property
    def fully_overlapped(self) -> bool:
        return self.exposed_seconds_per_slice <= 0.0


class OffloadPlanner:
    """Plan activation offloading against a device memory budget.

    Parameters
    ----------
    gpu:
        The accelerator, providing ``host_offload_bandwidth`` (bytes/s).
    ratio_granularity:
        Offload ratios are rounded *up* to a multiple of this value,
        mirroring the coarse (5%-step) ratios reported in Table 4.
    """

    def __init__(self, gpu: GPUSpec, ratio_granularity: float = 0.05):
        if not 0.0 < ratio_granularity <= 1.0:
            raise ValueError("ratio_granularity must be in (0, 1]")
        self.gpu = gpu
        self.ratio_granularity = ratio_granularity

    # ------------------------------------------------------------------
    def required_ratio(self, peak_activation_bytes: float, budget_bytes: float) -> float:
        """Minimum offload ratio that fits ``peak_activation_bytes`` in ``budget_bytes``."""
        if peak_activation_bytes < 0 or budget_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if peak_activation_bytes <= budget_bytes:
            return 0.0
        if budget_bytes <= 0.0:
            return 1.0
        raw = 1.0 - budget_bytes / peak_activation_bytes
        steps = raw / self.ratio_granularity
        ratio = self.ratio_granularity * (int(steps) + (0 if abs(steps - int(steps)) < 1e-9 else 1))
        return min(1.0, ratio)

    def plan(
        self,
        peak_activation_bytes: float,
        budget_bytes: float,
        slice_bytes: float,
        slice_compute_seconds: float,
        ratio: float | None = None,
    ) -> OffloadDecision:
        """Choose (or evaluate) an offload ratio for one device.

        Parameters
        ----------
        peak_activation_bytes:
            Peak stored activations without offloading.
        budget_bytes:
            Device memory available for activations.
        slice_bytes:
            Stored activation bytes of one slice (the transfer unit).
        slice_compute_seconds:
            Compute time of one slice — the window available to hide the
            slice's transfer behind.
        ratio:
            Force a specific ratio instead of the minimum feasible one
            (used by the offload-ratio sweep ablation).
        """
        if slice_bytes < 0 or slice_compute_seconds < 0:
            raise ValueError("slice_bytes and slice_compute_seconds must be non-negative")
        chosen = self.required_ratio(peak_activation_bytes, budget_bytes) if ratio is None else ratio
        if not 0.0 <= chosen <= 1.0:
            raise ValueError(f"offload ratio must be in [0, 1], got {chosen}")
        resident = peak_activation_bytes * (1.0 - chosen)
        offloaded = peak_activation_bytes * chosen
        transfer = slice_bytes * chosen / self.gpu.host_offload_bandwidth
        exposed = max(0.0, transfer - slice_compute_seconds)
        return OffloadDecision(
            ratio=chosen,
            resident_bytes=resident,
            offloaded_bytes=offloaded,
            transfer_seconds_per_slice=transfer,
            exposed_seconds_per_slice=exposed,
            feasible=resident <= budget_bytes + 1e-6,
        )

    # ------------------------------------------------------------------
    def max_context_scaling(
        self, peak_activation_bytes: float, budget_bytes: float
    ) -> float:
        """How much further activations could grow if everything were offloadable.

        A convenience for exploratory "how far can we push the context"
        questions: with ratio 1.0 the device only holds transient slices, so
        the growth factor is ``budget / (peak * (1 - 1.0)) → ∞``; in practice
        the KV cache and transient buffers are not offloadable, so callers
        pass only the offloadable share here.
        """
        if peak_activation_bytes <= 0:
            return float("inf")
        return budget_bytes / peak_activation_bytes
