"""Sequence slicing for fine-grained pipeline parallelism.

SlimPipe's schedule operates on *slices* of a microbatch's sequence rather
than whole microbatches.  The paper argues for **uniform** slicing
(Section 4.1.1): equal-length slices bound the accumulated memory, compose
cleanly with context parallelism, and keep arithmetic intensity up — at the
price of unequal computation time under causal attention, which the context
exchange of Section 4.2 then rebalances.

This module provides uniform slicing plus the "balanced-cost" alternative
(TeraPipe-style non-uniform slices whose causal-attention cost is equalised),
which the ablation benchmark compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["SliceSpec", "uniform_slices", "balanced_cost_slices", "slice_lengths"]


@dataclass(frozen=True)
class SliceSpec:
    """One contiguous slice of a sequence.

    ``kv_offset`` is the number of tokens that precede the slice — the keys
    and values already sitting in the KV cache that this slice's queries
    attend to; ``kv_tokens`` is the total attended length including the slice
    itself.
    """

    index: int
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.start < 0:
            raise ValueError("index and start must be non-negative")
        if self.length <= 0:
            raise ValueError("slice length must be positive")

    @property
    def stop(self) -> int:
        return self.start + self.length

    @property
    def kv_offset(self) -> int:
        return self.start

    @property
    def kv_tokens(self) -> int:
        return self.stop

    def attention_units(self) -> float:
        """Causal-attention work of the slice in "token·key" units.

        ``sum_{i in slice} (kv_offset + local position)`` — proportional to
        the attention-core FLOPs of the slice.
        """
        q = self.length
        return q * self.kv_offset + q * (q + 1) / 2.0


def uniform_slices(sequence_length: int, num_slices: int) -> List[SliceSpec]:
    """Split a sequence into ``num_slices`` equal-length slices.

    When the sequence length is not divisible, the remainder is spread over
    the earliest slices (keeping every slice within one token of the mean),
    so the memory bound of Eq. 1 still holds up to rounding.
    """
    if sequence_length <= 0:
        raise ValueError("sequence_length must be positive")
    if num_slices <= 0:
        raise ValueError("num_slices must be positive")
    if num_slices > sequence_length:
        raise ValueError(
            f"cannot cut {sequence_length} tokens into {num_slices} non-empty slices"
        )
    base = sequence_length // num_slices
    remainder = sequence_length % num_slices
    slices: List[SliceSpec] = []
    start = 0
    for index in range(num_slices):
        length = base + (1 if index < remainder else 0)
        slices.append(SliceSpec(index=index, start=start, length=length))
        start += length
    return slices


def slice_lengths(slices: Sequence[SliceSpec]) -> List[int]:
    """Lengths of a slice list (convenience for tests and reports)."""
    return [s.length for s in slices]


def balanced_cost_slices(sequence_length: int, num_slices: int) -> List[SliceSpec]:
    """Non-uniform slicing that equalises causal-attention cost per slice.

    The total attention work of a causal prefix of length ``x`` grows like
    ``x^2 / 2``, so cost-balanced boundaries sit at
    ``x_k = s * sqrt(k / n)``.  Used as the ablation baseline illustrating
    the memory drawback the paper attributes to non-uniform slicing: the last
    slices become very short (hurting arithmetic intensity) while the first
    slice is much longer than ``s / n`` (inflating the warm-up memory).
    """
    if sequence_length <= 0:
        raise ValueError("sequence_length must be positive")
    if num_slices <= 0:
        raise ValueError("num_slices must be positive")
    if num_slices > sequence_length:
        raise ValueError(
            f"cannot cut {sequence_length} tokens into {num_slices} non-empty slices"
        )
    boundaries = [0]
    for k in range(1, num_slices):
        boundary = int(round(sequence_length * math.sqrt(k / num_slices)))
        boundaries.append(boundary)
    boundaries.append(sequence_length)
    # Enforce strictly increasing boundaries (short sequences can collide).
    for i in range(1, len(boundaries)):
        if boundaries[i] <= boundaries[i - 1]:
            boundaries[i] = boundaries[i - 1] + 1
    overflow = boundaries[-1] - sequence_length
    if overflow > 0:
        # Walk backwards pulling boundaries in while keeping them increasing.
        boundaries[-1] = sequence_length
        for i in range(len(boundaries) - 2, 0, -1):
            boundaries[i] = min(boundaries[i], boundaries[i + 1] - 1)
    slices = []
    for index in range(num_slices):
        start, stop = boundaries[index], boundaries[index + 1]
        slices.append(SliceSpec(index=index, start=start, length=stop - start))
    return slices
