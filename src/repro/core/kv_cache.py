"""Chunked KV cache manager (Section 5, "Chunked KV Cache").

SlimPipe stores keys and values in *slice-sized chunks* rather than one
contiguous, repeatedly re-allocated buffer.  Because uniform slicing makes
every chunk the same size, freed chunks can be reused verbatim by the next
microbatch — the backward pass of one microbatch releases a chunk exactly
when the forward pass of the next microbatch needs one — eliminating
allocator fragmentation.

This module implements that bookkeeping.  It is used in two ways:

* the numeric pipeline runner stores real NumPy key/value arrays in it, and
* the tests assert the allocation-reuse invariants the paper relies on
  (stable chunk count in the steady phase, zero fragmentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

__all__ = ["KVChunk", "ChunkedKVCache", "KVCacheStats"]


@dataclass(slots=True)
class KVChunk:
    """One slice-sized chunk of cached keys and values.

    Serving allocates one of these per paged-KV block, so the record is kept
    slotted: large pools hold tens of thousands of live chunks.
    """

    chunk_id: int
    payload: Any = None

    def clear(self) -> None:
        self.payload = None


@dataclass(frozen=True)
class KVCacheStats:
    """Allocation statistics over the lifetime of a cache."""

    allocations: int
    reuses: int
    peak_live_chunks: int
    live_chunks: int

    @property
    def reuse_fraction(self) -> float:
        total = self.allocations + self.reuses
        return self.reuses / total if total else 0.0


class ChunkedKVCache:
    """Per-device KV cache holding one chunk per (microbatch, layer, slice).

    ``acquire`` is called by a forward pass to obtain a chunk (reusing a
    previously released one when possible); ``release`` is called by the
    matching backward pass.  ``capacity_chunks`` optionally caps the number
    of simultaneously live chunks, modelling the device memory budget.
    """

    def __init__(self, capacity_chunks: Optional[int] = None):
        if capacity_chunks is not None and capacity_chunks <= 0:
            raise ValueError("capacity_chunks must be positive when given")
        self.capacity_chunks = capacity_chunks
        self._live: Dict[Hashable, KVChunk] = {}
        self._free: List[KVChunk] = []
        self._next_id = 0
        self._allocations = 0
        self._reuses = 0
        self._peak_live = 0

    # ------------------------------------------------------------------
    def acquire(self, key: Hashable, payload: Any = None) -> KVChunk:
        """Obtain a chunk for ``key``, reusing a released chunk if available."""
        if key in self._live:
            raise KeyError(f"chunk for {key!r} is already live")
        if self.capacity_chunks is not None and len(self._live) >= self.capacity_chunks:
            raise MemoryError(
                f"KV cache capacity of {self.capacity_chunks} chunks exceeded"
            )
        if self._free:
            chunk = self._free.pop()
            self._reuses += 1
        else:
            chunk = KVChunk(chunk_id=self._next_id)
            self._next_id += 1
            self._allocations += 1
        chunk.payload = payload
        self._live[key] = chunk
        self._peak_live = max(self._peak_live, len(self._live))
        return chunk

    def get(self, key: Hashable) -> KVChunk:
        """Return the live chunk for ``key`` (e.g. to read cached K/V)."""
        try:
            return self._live[key]
        except KeyError:
            raise KeyError(f"no live chunk for {key!r}") from None

    def contains(self, key: Hashable) -> bool:
        return key in self._live

    def release(self, key: Hashable) -> None:
        """Release the chunk for ``key``, returning it to the free pool."""
        try:
            chunk = self._live.pop(key)
        except KeyError:
            raise KeyError(f"cannot release unknown chunk {key!r}") from None
        chunk.clear()
        self._free.append(chunk)

    def rename(self, old_key: Hashable, new_key: Hashable) -> KVChunk:
        """Re-home a live chunk under a new key, keeping its payload.

        Used by the serving prefix cache when a request-private KV block is
        *published* as a shared prefix block: ownership moves from the
        request to the prefix index without touching the chunk itself (no
        release/acquire churn, allocation statistics unchanged).
        """
        if new_key in self._live:
            raise KeyError(f"chunk for {new_key!r} is already live")
        try:
            chunk = self._live.pop(old_key)
        except KeyError:
            raise KeyError(f"cannot rename unknown chunk {old_key!r}") from None
        self._live[new_key] = chunk
        return chunk

    def release_matching(self, predicate) -> int:
        """Release every live chunk whose key satisfies ``predicate``."""
        keys = [key for key in self._live if predicate(key)]
        for key in keys:
            self.release(key)
        return len(keys)

    # ------------------------------------------------------------------
    @property
    def live_chunks(self) -> int:
        return len(self._live)

    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def total_chunks(self) -> int:
        """Distinct buffers ever allocated — constant in the steady phase."""
        return self._next_id

    def live_keys(self) -> List[Hashable]:
        return list(self._live)

    def stats(self) -> KVCacheStats:
        return KVCacheStats(
            allocations=self._allocations,
            reuses=self._reuses,
            peak_live_chunks=self._peak_live,
            live_chunks=len(self._live),
        )

    def clear(self) -> None:
        """Drop every chunk (end of iteration)."""
        self._live.clear()
        self._free.clear()
