"""SlimPipe's slice-level 1F1B pipeline schedule (Section 4.1).

The builder turns a ``(p, m, n, v)`` configuration into a
:class:`~repro.schedules.base.PipelineSchedule` whose unit of work is one
*slice* of a microbatch's sequence rather than a whole microbatch:

* forward passes process the slices of every microbatch in sequence order
  (the KV cache grows slice by slice),
* backward passes run in **reverse** slice order within each microbatch
  (last-in first-out), so that the KV chunk of a slice can be released the
  moment its backward finishes,
* each pipeline rank front-loads a few extra forward passes so that, in the
  steady phase, the forward and backward streams of neighbouring devices are
  aligned ("we put more forward passes ahead to align forward and backward
  passes separately", Section 4.1.2).

With ``v > 1`` the builder produces the interleaving form of Figure 5: every
device hosts ``v`` stages (stage ``chunk * p + rank``), slices are streamed
through the chunks in groups of ``p``, and warm-up depth grows by one chunk
round per extra stage.

The resulting accumulated activation matches Eq. 1 of the paper,

.. math::  M_{acc} = (1 + \\delta)\\,M_a / p, \\qquad \\delta = 2(p-1)/(n v),

counted in slice-stage units: the first rank accumulates ``n v + 2 (p - 1)``
live slice-stage activations before its first backward, each worth
``M_a / (n v p)`` bytes (``tests/test_slimpipe_schedule.py`` checks the unit
counts, and the memory tracker reproduces the byte counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..model.costs import PassKind
from ..schedules.base import Pass, PipelineSchedule

__all__ = [
    "SlimPipeScheduleConfig",
    "build_slimpipe_schedule",
    "warmup_units",
    "accumulated_slice_units",
]


@dataclass(frozen=True)
class SlimPipeScheduleConfig:
    """Shape of a SlimPipe schedule.

    Attributes
    ----------
    num_devices:
        Pipeline parallelism size ``p``.
    num_microbatches:
        Microbatches per iteration ``m``.
    num_slices:
        Slices per sequence ``n``; must be a positive multiple of ``p``
        (Section 4.1.2 requires ``n`` to be a multiple of ``p``).
    num_stages_per_device:
        Virtual stages per device ``v`` (1 = the plain form of Figure 4,
        >1 = the interleaving form of Figure 5).
    """

    num_devices: int
    num_microbatches: int
    num_slices: int
    num_stages_per_device: int = 1

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if self.num_stages_per_device < 1:
            raise ValueError("num_stages_per_device must be >= 1")
        if self.num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        if self.num_slices % self.num_devices != 0:
            raise ValueError(
                "num_slices must be a multiple of the pipeline size "
                f"({self.num_slices} % {self.num_devices})"
            )

    # Paper-notation aliases -------------------------------------------------
    @property
    def p(self) -> int:
        return self.num_devices

    @property
    def m(self) -> int:
        return self.num_microbatches

    @property
    def n(self) -> int:
        return self.num_slices

    @property
    def v(self) -> int:
        return self.num_stages_per_device

    @property
    def total_stages(self) -> int:
        return self.p * self.v

    @property
    def units_per_device(self) -> int:
        """Slice-stage forward passes each device executes per iteration."""
        return self.m * self.n * self.v


def warmup_units(config: SlimPipeScheduleConfig, rank: int) -> int:
    """Number of forward slice-stage units rank ``rank`` runs before its first backward.

    The first rank accumulates ``n v + 2 (p - 1)`` units and each subsequent
    rank two fewer, clamped to the total number of units (tiny workloads may
    never leave the warm-up phase).
    """
    if not 0 <= rank < config.num_devices:
        raise ValueError(f"rank {rank} out of range [0, {config.num_devices})")
    depth = config.n * config.v + 2 * (config.p - 1 - rank)
    return min(config.units_per_device, depth)


def accumulated_slice_units(config: SlimPipeScheduleConfig, rank: int = 0) -> int:
    """Peak number of live slice-stage activations on ``rank`` (Eq. 1 numerator).

    Equals the warm-up depth: in the steady phase every backward releases one
    unit before the next forward stores one.
    """
    return warmup_units(config, rank)


def _forward_unit(config: SlimPipeScheduleConfig, rank: int, unit: int) -> Tuple[int, int, int]:
    """Map forward unit ``unit`` on ``rank`` to ``(microbatch, slice, stage)``.

    Slices (across the whole microbatch stream) are grouped into blocks of
    ``p``; each block visits every chunk in order before the next block
    starts, exactly as the interleaved rows of Figure 5.
    """
    p, v, n = config.p, config.v, config.n
    block = unit // (p * v)
    within = unit % (p * v)
    chunk = within // p
    pos = within % p
    global_slice = block * p + pos
    microbatch = global_slice // n
    slice_index = global_slice % n
    stage = chunk * p + rank
    return microbatch, slice_index, stage


def _backward_unit(config: SlimPipeScheduleConfig, rank: int, unit: int) -> Tuple[int, int, int]:
    """Map backward unit ``unit`` on ``rank`` to ``(microbatch, slice, stage)``.

    The backward stream mirrors the forward stream: chunks are visited in
    reverse (deepest first) and slices within each microbatch in reverse
    order, so the last slice produced is the first consumed (Section 4.1.2).
    """
    p, v, n = config.p, config.v, config.n
    block = unit // (p * v)
    within = unit % (p * v)
    chunk = v - 1 - within // p
    pos = within % p
    forward_rank_order = block * p + pos
    microbatch = forward_rank_order // n
    slice_index = n - 1 - forward_rank_order % n
    stage = chunk * p + rank
    return microbatch, slice_index, stage


def build_slimpipe_schedule(
    num_devices: int,
    num_microbatches: int,
    num_slices: int,
    num_stages_per_device: int = 1,
    name: Optional[str] = None,
) -> PipelineSchedule:
    """Build the SlimPipe slice-level 1F1B schedule.

    Parameters mirror the paper's notation (``p``, ``m``, ``n``, ``v``).  The
    returned schedule validates its own structural invariants and is directly
    executable by :class:`~repro.sim.engine.SimulationEngine`.
    """
    config = SlimPipeScheduleConfig(
        num_devices=num_devices,
        num_microbatches=num_microbatches,
        num_slices=num_slices,
        num_stages_per_device=num_stages_per_device,
    )
    total_units = config.units_per_device
    device_orders: List[List[Pass]] = []
    for rank in range(config.p):
        warmup = warmup_units(config, rank)
        order: List[Pass] = []
        forward_unit = 0
        backward_unit = 0

        def emit_forward(unit: int) -> None:
            mb, sl, stage = _forward_unit(config, rank, unit)
            order.append(
                Pass(
                    kind=PassKind.FORWARD,
                    microbatch=mb,
                    stage=stage,
                    device=rank,
                    slice_index=sl,
                    num_slices=config.n,
                )
            )

        def emit_backward(unit: int) -> None:
            mb, sl, stage = _backward_unit(config, rank, unit)
            order.append(
                Pass(
                    kind=PassKind.BACKWARD,
                    microbatch=mb,
                    stage=stage,
                    device=rank,
                    slice_index=sl,
                    num_slices=config.n,
                )
            )

        for _ in range(warmup):
            emit_forward(forward_unit)
            forward_unit += 1
        # Steady phase: one backward, one forward — backward first because the
        # warm-up already placed the extra forwards ahead (Figure 4).
        while forward_unit < total_units:
            emit_backward(backward_unit)
            backward_unit += 1
            emit_forward(forward_unit)
            forward_unit += 1
        # Cool-down: drain the remaining backwards.
        while backward_unit < total_units:
            emit_backward(backward_unit)
            backward_unit += 1
        device_orders.append(order)

    schedule = PipelineSchedule(
        name=name or ("slimpipe" if config.v == 1 else "slimpipe-interleaved"),
        num_devices=config.p,
        num_stages=config.total_stages,
        num_microbatches=config.m,
        num_slices=config.n,
        device_orders=device_orders,
        metadata={
            "num_slices": config.n,
            "num_stages_per_device": config.v,
            "warmup_units": [warmup_units(config, r) for r in range(config.p)],
        },
    )
    schedule.validate()
    return schedule
