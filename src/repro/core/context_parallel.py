"""Commutated context parallelism (Section 5, "Commutated Context Parallelism").

Context parallelism (CP) splits every sequence across ``c`` devices.  The
standard implementations (Ring Attention, Megatron CP) circulate the **keys
and values** around the CP ring so that each device can attend its local
queries against the whole sequence.  That interacts badly with SlimPipe's KV
cache: every time a later slice arrives, the *entire cached* key/value history
has to be re-circulated, so the communication volume grows quadratically with
the number of slices already processed.

SlimPipe's commutated variant flips the direction: the **query, the partial
output and the softmax normalizer** travel instead, while keys and values stay
where they were produced.  A query slice visits each CP rank, accumulates a
partial attention output against that rank's resident KV shard, and the
partials are merged with the online softmax — the same identity context
exchange uses.  Since a query slice is the same size as a key or value slice
(and the normalizer is a scalar per query), the per-slice volume no longer
depends on how much KV cache has accumulated: "the communication volume of CP
is recovered to that without KV cache".

This module provides

* the communication-volume accounting for both variants
  (:func:`cp_volume_kv_passing`, :func:`cp_volume_query_passing`,
  :func:`cp_volume_comparison`), used by the CP ablation benchmark, and
* :func:`ring_attention_query_passing`, a numeric implementation of the
  commutated ring (queries travel, partials merge via online softmax) that the
  tests verify against dense attention — the correctness argument for the
  optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..constants import DType
from ..model.config import ModelConfig
from ..numerics.attention import (
    AttentionOutput,
    attention_block_forward,
    merge_partial_attention,
)

__all__ = [
    "CPVolumeComparison",
    "cp_volume_kv_passing",
    "cp_volume_query_passing",
    "cp_volume_comparison",
    "ring_attention_query_passing",
]


def _slice_tensor_bytes(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    context_parallel_size: int,
    channels: int,
    dtype: DType,
) -> float:
    """Bytes of one slice of one activation tensor resident on one CP rank."""
    tokens_per_rank = sequence_length / context_parallel_size
    return tokens_per_rank / num_slices * channels * dtype.bytes


def cp_volume_kv_passing(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    context_parallel_size: int,
    dtype: DType = DType.BF16,
) -> float:
    """Per-device CP traffic of one microbatch when keys/values circulate.

    For slice ``i`` (0-based) the ring must circulate the keys and values of
    every slice processed so far *plus* the current one — ``i + 1`` slices of
    K and V — to the other ``c - 1`` ranks (ring all-gather volume
    ``(c-1)/c`` of the gathered tensor per rank).  Summing over the ``n``
    slices gives the quadratic blow-up the paper calls "rather inefficient".
    """
    c = context_parallel_size
    if c <= 1:
        return 0.0
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    kv_slice = _slice_tensor_bytes(
        model, sequence_length, num_slices, c, 2 * model.kv_channels, dtype
    )
    circulated_slices = sum(i + 1 for i in range(num_slices))
    per_layer = circulated_slices * kv_slice * (c - 1)
    return per_layer * model.num_layers


def cp_volume_query_passing(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    context_parallel_size: int,
    dtype: DType = DType.BF16,
) -> float:
    """Per-device CP traffic of one microbatch with the commutated variant.

    Each slice sends its query once around the ring and receives the partial
    output (same size) plus one scalar normalizer per query and head; the
    volume is independent of how much KV cache has accumulated.
    """
    c = context_parallel_size
    if c <= 1:
        return 0.0
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    q_slice = _slice_tensor_bytes(
        model, sequence_length, num_slices, c, model.hidden_size, dtype
    )
    tokens_per_rank_slice = sequence_length / c / num_slices
    normalizer = tokens_per_rank_slice * model.num_attention_heads * 4.0  # fp32 scalar
    per_slice = (2.0 * q_slice + normalizer) * (c - 1)
    return per_slice * num_slices * model.num_layers


@dataclass(frozen=True)
class CPVolumeComparison:
    """Communication volumes of the two CP variants for one configuration."""

    kv_passing_bytes: float
    query_passing_bytes: float

    @property
    def reduction_factor(self) -> float:
        """How many times less traffic the commutated variant moves."""
        if self.query_passing_bytes <= 0:
            return float("inf")
        return self.kv_passing_bytes / self.query_passing_bytes


def cp_volume_comparison(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    context_parallel_size: int,
    dtype: DType = DType.BF16,
) -> CPVolumeComparison:
    """Compare the standard and commutated CP volumes at one operating point."""
    return CPVolumeComparison(
        kv_passing_bytes=cp_volume_kv_passing(
            model, sequence_length, num_slices, context_parallel_size, dtype
        ),
        query_passing_bytes=cp_volume_query_passing(
            model, sequence_length, num_slices, context_parallel_size, dtype
        ),
    )


# ---------------------------------------------------------------------------
# Numeric commutated ring attention
# ---------------------------------------------------------------------------
def ring_attention_query_passing(
    queries: Sequence[np.ndarray],
    keys: Sequence[np.ndarray],
    values: Sequence[np.ndarray],
    shard_offsets: Sequence[int] | None = None,
    scale: float | None = None,
) -> List[np.ndarray]:
    """Causal attention across CP shards by passing queries, not keys/values.

    Parameters
    ----------
    queries / keys / values:
        One entry per CP rank; rank ``r`` holds the contiguous sequence shard
        ``r`` with shapes ``[T_r, heads, d]`` (queries) and ``[T_r, groups, d]``
        (keys/values).  Shards are contiguous in sequence order.
    shard_offsets:
        Global position of each shard's first token; defaults to the shards
        being laid out back to back.

    Returns the attention output of every rank's queries over the *whole*
    (causally masked) sequence.  Each rank's query visits every rank's local
    KV shard — the "commutation" — and the per-rank partial outputs are merged
    with the online softmax, so the result is exactly dense causal attention
    (verified in ``tests/test_context_parallel.py``).
    """
    ranks = len(queries)
    if not (len(keys) == len(values) == ranks) or ranks == 0:
        raise ValueError("queries, keys and values must have one entry per rank")
    if shard_offsets is None:
        offsets = []
        position = 0
        for q in queries:
            offsets.append(position)
            position += q.shape[0]
    else:
        offsets = list(shard_offsets)
        if len(offsets) != ranks:
            raise ValueError("shard_offsets must have one entry per rank")

    outputs: List[np.ndarray] = []
    for query_rank in range(ranks):
        q = queries[query_rank]
        q_offset = offsets[query_rank]
        merged: AttentionOutput | None = None
        # The query (and its running output / normalizer) hops around the ring;
        # each hop computes the partial attention against that rank's local KV.
        for hop in range(ranks):
            kv_rank = (query_rank - hop) % ranks
            partial = attention_block_forward(
                q,
                keys[kv_rank],
                values[kv_rank],
                q_offset=q_offset,
                k_offset=offsets[kv_rank],
                scale=scale,
            )
            merged = partial if merged is None else merge_partial_attention(merged, partial)
        assert merged is not None
        outputs.append(merged.out)
    return outputs
