"""Attention context exchange (Section 4.2).

Uniform slicing makes slices equal in *length* but not in *cost*: a slice's
causal-attention work is proportional to the number of key/value tokens it
attends to, so at any instant the devices of a SlimPipe pipeline hold
attention workloads forming an arithmetic progression (the later the slice a
device is processing, the more KV cache it attends to).  Left alone, the
lightly-loaded devices finish early and wait — the *imbalance bubbles* of
Figure 7.

Context exchange removes the imbalance: a heavily-loaded device ships one
slice of query (and, after the attention, receives the partial output back)
plus a portion of its KV cache to a lightly-loaded device, which computes the
partial attention locally; partial outputs are merged with the online-softmax
method.  After redistribution every device processes the same amount of
key/value work to within one slice (Section 4.2.2), and the total exchanged
volume per microbatch per device is bounded by Eq. 2:

.. math::

   \\Theta = \\Bigl(2n + 2(n - p + 1)\\lfloor (p-1)/2 \\rfloor
             + 2(p - 1)\\lfloor (n-1)/2 \\rfloor\\Bigr) \\frac{L M_h}{p n}
           \\le \\Bigl(2 - \\frac{p-1}{n}\\Bigr) L M_h .

This module provides:

* :func:`balance_workloads` — the redistribution algorithm: given the KV
  lengths (in slices) each device currently attends to, decide how many KV
  slices each overloaded device hands to each underloaded one (Figure 8);
* :class:`ExchangePlan` / :class:`ExchangeTransfer` — the resulting plan, with
  per-device balanced workloads and transfer volumes;
* :func:`exchange_volume_per_microbatch` and
  :func:`exchange_volume_bound` — the exact Eq. 2 accounting and its upper
  bound, used by the cost models and checked against each other in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..model.config import ModelConfig
from ..constants import DType

__all__ = [
    "ExchangeTransfer",
    "ExchangePlan",
    "balance_workloads",
    "concurrent_kv_slices",
    "exchange_volume_per_microbatch",
    "exchange_volume_bound",
    "embedding_bytes_per_slice",
]


@dataclass(frozen=True)
class ExchangeTransfer:
    """One query/KV hand-off between a pair of devices.

    ``kv_slices`` key/value slices of the ``source`` device's cache are
    attended *on the target* against the source's current query slice; the
    partial output travels back to the source where it is merged via online
    softmax.  Query and output always travel with the transfer (one slice
    each); only the KV share varies.
    """

    source: int
    target: int
    kv_slices: float

    def __post_init__(self) -> None:
        if self.source < 0 or self.target < 0:
            raise ValueError("device indices must be non-negative")
        if self.source == self.target:
            raise ValueError("a transfer needs two distinct devices")
        if self.kv_slices <= 0:
            raise ValueError("kv_slices must be positive")


@dataclass
class ExchangePlan:
    """Workload redistribution decided for one pipeline instant.

    Attributes
    ----------
    original:
        Per-device attention workload before redistribution, in units of
        attended KV slices.
    balanced:
        Per-device workload after redistribution.
    transfers:
        The individual hand-offs realising the move from ``original`` to
        ``balanced``.
    """

    original: List[float]
    balanced: List[float]
    transfers: List[ExchangeTransfer] = field(default_factory=list)

    @property
    def num_devices(self) -> int:
        return len(self.original)

    @property
    def total_workload(self) -> float:
        return sum(self.original)

    @property
    def max_imbalance_before(self) -> float:
        if not self.original:
            return 0.0
        return max(self.original) - min(self.original)

    @property
    def max_imbalance_after(self) -> float:
        if not self.balanced:
            return 0.0
        return max(self.balanced) - min(self.balanced)

    def transferred_kv_slices(self) -> float:
        """Total KV slices moved by the plan (sum over transfers)."""
        return sum(t.kv_slices for t in self.transfers)

    def transfers_from(self, device: int) -> List[ExchangeTransfer]:
        return [t for t in self.transfers if t.source == device]

    def transfers_to(self, device: int) -> List[ExchangeTransfer]:
        return [t for t in self.transfers if t.target == device]


def concurrent_kv_slices(num_devices: int, phase_offset: int, num_slices: int) -> List[int]:
    """KV lengths (in slices) concurrently processed across the pipeline.

    At a steady-state instant the devices work on consecutive slices of the
    sequence: device ``p-1`` (the deepest) is on the earliest slice, device 0
    on the latest (Figure 7).  ``phase_offset`` selects the instant: the
    device processing the latest slice attends to ``phase_offset + p`` slices
    (capped at ``num_slices``), the next one slice fewer, and so on, wrapping
    to the start of the next microbatch at the juncture — which is where the
    imbalance is worst (up to ``n - 1`` slices, Section 4.2.1).
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if num_slices < num_devices:
        raise ValueError("num_slices must be at least num_devices")
    if phase_offset < 0:
        raise ValueError("phase_offset must be non-negative")
    lengths = []
    for rank in range(num_devices):
        # Device `rank` lags the head of the pipeline by `rank` slices.
        position = phase_offset + num_devices - rank
        wrapped = (position - 1) % num_slices + 1
        lengths.append(wrapped)
    return lengths


def balance_workloads(workloads: Sequence[float]) -> ExchangePlan:
    """Redistribute attention workloads so that every device holds ~the mean.

    The algorithm is the natural greedy matching the paper sketches in
    Figure 8: sort devices by load, pair the most overloaded with the most
    underloaded, and move ``min(surplus, deficit)`` KV slices between them;
    repeat until every device is within one slice of the mean.  Because the
    workload unit is "slices of key/value attended", the resulting plan's
    ``balanced`` loads differ by at most one slice, matching Section 4.2.2
    ("The difference between them is at most one slice of key-value").
    """
    loads = [float(w) for w in workloads]
    if not loads:
        return ExchangePlan(original=[], balanced=[])
    if any(w < 0 for w in loads):
        raise ValueError("workloads must be non-negative")
    mean = sum(loads) / len(loads)
    balanced = list(loads)
    transfers: List[ExchangeTransfer] = []

    # Iteratively move surplus to deficit.  The loop terminates because every
    # step strictly reduces the total absolute deviation from the mean.
    for _ in range(4 * len(loads) * len(loads)):
        surplus_device = max(range(len(balanced)), key=lambda d: balanced[d])
        deficit_device = min(range(len(balanced)), key=lambda d: balanced[d])
        surplus = balanced[surplus_device] - mean
        deficit = mean - balanced[deficit_device]
        move = min(surplus, deficit)
        if move <= 1e-12 or balanced[surplus_device] - balanced[deficit_device] <= 1.0 + 1e-12:
            break
        transfers.append(
            ExchangeTransfer(source=surplus_device, target=deficit_device, kv_slices=move)
        )
        balanced[surplus_device] -= move
        balanced[deficit_device] += move
    return ExchangePlan(original=loads, balanced=balanced, transfers=transfers)


def embedding_bytes_per_slice(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    pipeline_parallel_size: int,
    tensor_parallel_size: int = 1,
    dtype: DType = DType.BF16,
) -> float:
    """Bytes of one slice of one embedding-sized tensor on one device.

    The paper's ``M_h`` is the size of one embedding tensor for the whole
    sequence (``s * h`` elements); one slice of it held by one pipeline device
    spans the ``L/p`` local layers, i.e. ``(L/p) * M_h / n`` as used in the
    Eq. 2 derivation.  Tensor parallelism (with SP) shards it further.
    """
    if num_slices < 1 or pipeline_parallel_size < 1:
        raise ValueError("num_slices and pipeline_parallel_size must be >= 1")
    m_h = sequence_length * model.hidden_size * dtype.bytes / tensor_parallel_size
    layers_per_device = model.num_layers / pipeline_parallel_size
    return layers_per_device * m_h / num_slices


def exchange_volume_per_microbatch(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    pipeline_parallel_size: int,
    tensor_parallel_size: int = 1,
    dtype: DType = DType.BF16,
) -> float:
    """Exact exchanged bytes per microbatch per device (Eq. 2, left side).

    The exchanged context per microbatch per device counts

    * one slice of query plus one slice of output for each of the ``n``
      passes (``2 n`` slice-tensors),
    * ``⌊(p-1)/2⌋`` slices of key plus value for each of the ``n - p + 1``
      passes away from a microbatch juncture, and
    * ``⌊(n-1)/2⌋`` slices of key plus value for each of the ``p - 1`` passes
      at the juncture,

    each slice-tensor being ``(L/p) · M_h / n`` bytes on one device.
    """
    p = pipeline_parallel_size
    n = num_slices
    if n < p:
        raise ValueError("num_slices must be at least the pipeline size")
    if p == 1:
        # A single pipeline device never exchanges context with anyone.
        return 0.0
    slice_bytes = embedding_bytes_per_slice(
        model,
        sequence_length,
        num_slices,
        pipeline_parallel_size,
        tensor_parallel_size,
        dtype,
    )
    q_and_o = 2 * n
    kv_steady = 2 * (n - p + 1) * ((p - 1) // 2)
    kv_juncture = 2 * (p - 1) * ((n - 1) // 2)
    return (q_and_o + kv_steady + kv_juncture) * slice_bytes


def exchange_volume_bound(
    model: ModelConfig,
    sequence_length: int,
    num_slices: int,
    pipeline_parallel_size: int,
    tensor_parallel_size: int = 1,
    dtype: DType = DType.BF16,
) -> float:
    """Upper bound of Eq. 2: ``(2 - (p-1)/n) · L · M_h`` bytes per device.

    Note the ``p`` in the per-slice size ``(L/p)(M_h/n)`` cancels against the
    ``≈ p (2n - p + 1)`` slice-tensors exchanged, so the bound is independent
    of the pipeline size — the "virtually independent from the PP size and
    number of slices" observation of Section 4.2.3.
    """
    p = pipeline_parallel_size
    n = num_slices
    if n < p:
        raise ValueError("num_slices must be at least the pipeline size")
    m_h = sequence_length * model.hidden_size * dtype.bytes / tensor_parallel_size
    return (2.0 - (p - 1) / n) * model.num_layers * m_h
