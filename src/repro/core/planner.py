"""End-to-end SlimPipe execution planning.

:class:`SlimPipePlanner` assembles everything the rest of the repository
needs to *run* SlimPipe on a given (model, cluster, parallelism, workload)
point: the slice-level schedule, the model-driven cost provider, the memory
accountant, and — after simulation — the headline metrics (iteration time,
MFU, bubble fraction, per-device peak memory).  It is the programmatic
equivalent of launching one training iteration on the paper's cluster, and is
what the system models, the benchmarks and the examples build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hardware.gpu import GPUSpec
from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.costs import CostModel
from ..model.flops import model_flops_per_iteration
from ..model.memory import RecomputeMode
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..schedules.base import PipelineSchedule
from ..sim.engine import SimulationEngine
from ..sim.memory_tracker import DeviceMemoryProfile, MemoryTracker
from ..sim.metrics import IterationMetrics, mfu
from ..sim.providers import (
    ModelActivationAccountant,
    ModelCostProvider,
    PipelineModelSpec,
)
from ..sim.timeline import Timeline
from .offload import OffloadDecision, OffloadPlanner
from .schedule import build_slimpipe_schedule

__all__ = ["SlimPipeOptions", "SlimPipeExecution", "SlimPipePlanner"]


@dataclass(frozen=True)
class SlimPipeOptions:
    """Feature toggles of a SlimPipe run (the paper's defaults are all on)."""

    context_exchange: bool = True
    vocab_parallel: bool = True
    early_kv_exchange: bool = True
    recompute: RecomputeMode = RecomputeMode.NONE
    offload_ratio: Optional[float] = None

    @property
    def exchange_exposed_fraction(self) -> float:
        """Exchange traffic left exposed when early KV exchange is disabled."""
        return 0.0 if self.early_kv_exchange else 1.0


@dataclass
class SlimPipeExecution:
    """Result of simulating one SlimPipe training iteration."""

    schedule: PipelineSchedule
    timeline: Timeline
    memory_profiles: List[DeviceMemoryProfile]
    metrics: IterationMetrics
    offload: Optional[OffloadDecision] = None
    spec: Optional[PipelineModelSpec] = None

    @property
    def iteration_time(self) -> float:
        return self.metrics.iteration_time

    @property
    def mfu(self) -> float:
        return self.metrics.mfu

    @property
    def peak_memory_bytes(self) -> float:
        return self.metrics.peak_memory_bytes

    def peak_memory_per_device(self) -> List[float]:
        return [p.peak_bytes for p in self.memory_profiles]


class SlimPipePlanner:
    """Plan and simulate SlimPipe iterations.

    Parameters
    ----------
    model, cluster, parallel, workload:
        The training point to plan for.  ``parallel.num_slices`` selects the
        number of slices per sequence (defaults to ``p`` when unset).
    options:
        SlimPipe feature toggles.
    """

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        parallel: ParallelConfig,
        workload: WorkloadConfig,
        options: SlimPipeOptions = SlimPipeOptions(),
    ):
        parallel.validate_against_model(model)
        self.model = model
        self.cluster = cluster
        self.parallel = parallel
        self.workload = workload
        self.options = options
        self.cost_model = CostModel(cluster.gpu)

    # ------------------------------------------------------------------
    @property
    def num_slices(self) -> int:
        return self.parallel.num_slices or self.parallel.pipeline_parallel_size

    @property
    def num_microbatches(self) -> int:
        return self.workload.num_microbatches(self.parallel)

    def build_schedule(self) -> PipelineSchedule:
        """The slice-level 1F1B schedule for this configuration."""
        return build_slimpipe_schedule(
            num_devices=self.parallel.pipeline_parallel_size,
            num_microbatches=self.num_microbatches,
            num_slices=self.num_slices,
            num_stages_per_device=self.parallel.virtual_pipeline_size,
        )

    def build_spec(self) -> PipelineModelSpec:
        """The model/parallelism spec shared by the cost and memory providers."""
        return PipelineModelSpec(
            model=self.model,
            parallel=self.parallel,
            sequence_length=self.workload.microbatch_tokens(),
            num_stages=self.parallel.total_stages,
            num_slices=self.num_slices,
            recompute=self.options.recompute,
            context_exchange=self.options.context_exchange,
            vocab_parallel=self.options.vocab_parallel,
            exchange_exposed_fraction=self.options.exchange_exposed_fraction,
        )

    # ------------------------------------------------------------------
    def run(self) -> SlimPipeExecution:
        """Simulate one iteration and return timelines, memory and metrics."""
        schedule = self.build_schedule()
        spec = self.build_spec()
        costs = ModelCostProvider(spec, self.cluster, cost_model=self.cost_model)
        accountant = ModelActivationAccountant(spec, self.cluster)

        timeline = SimulationEngine(schedule, costs).run()
        profiles = MemoryTracker(schedule, accountant).profile()

        iteration_time = timeline.makespan
        offload_decision: Optional[OffloadDecision] = None
        peak_bytes = max(p.peak_bytes for p in profiles)

        if self.options.offload_ratio is not None:
            planner = OffloadPlanner(self.cluster.gpu)
            worst = max(profiles, key=lambda p: p.peak_bytes)
            budget = self.cluster.gpu.memory_bytes - worst.base_bytes
            slices = spec.slices()
            slice_bytes = worst.peak_activation_bytes / max(1, len(slices))
            slice_compute = iteration_time / max(1, schedule.total_passes())
            offload_decision = planner.plan(
                peak_activation_bytes=worst.peak_activation_bytes,
                budget_bytes=budget,
                slice_bytes=slice_bytes,
                slice_compute_seconds=slice_compute,
                ratio=self.options.offload_ratio,
            )
            peak_bytes = worst.base_bytes + offload_decision.resident_bytes
            exposed = offload_decision.exposed_seconds_per_slice * schedule.total_passes()
            iteration_time += exposed

        metrics = self._metrics(iteration_time, timeline, peak_bytes)
        return SlimPipeExecution(
            schedule=schedule,
            timeline=timeline,
            memory_profiles=profiles,
            metrics=metrics,
            offload=offload_decision,
            spec=spec,
        )

    # ------------------------------------------------------------------
    def _metrics(
        self, iteration_time: float, timeline: Timeline, peak_bytes: float
    ) -> IterationMetrics:
        sequences = self.num_microbatches * self.workload.microbatch_sequences
        flops = model_flops_per_iteration(
            self.model, self.workload.sequence_length, sequences
        )
        gpus_per_pipeline = (
            self.parallel.tensor_parallel_size
            * self.parallel.context_parallel_size
            * self.parallel.pipeline_parallel_size
        )
        return IterationMetrics(
            iteration_time=iteration_time,
            model_flops=flops,
            num_gpus=gpus_per_pipeline,
            mfu=mfu(flops, iteration_time, gpus_per_pipeline, self.cluster.gpu),
            tokens_per_iteration=self.workload.sequence_length * sequences,
            bubble_fraction=timeline.bubble_fraction(),
            peak_memory_bytes=peak_bytes,
        )

    # ------------------------------------------------------------------
    def gpu(self) -> GPUSpec:
        return self.cluster.gpu
