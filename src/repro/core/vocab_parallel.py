"""Vocabulary parallelism across pipeline devices (Section 4.3).

Classic pipeline schemes place the output projection (a GEMM into the
128,000-entry vocabulary) and the cross-entropy loss on the last pipeline
device, which

* adds a large compute lump to one device (the mid-pipeline bubble of
  Figure 9), and
* stores the fp32 logits of the whole microbatch there (about 16 GiB for a
  256K context under 8-way TP, Section 4.3.1).

SlimPipe instead shards the (tied) vocabulary matrix column-wise over all
``p`` pipeline devices: the final hidden states are broadcast, every device
computes its ``V/p`` columns of the logits, and the cross-entropy is computed
from the sharded logits with only scalar statistics (the per-token max and
log-sum-exp) synchronised.

This module contains the *accounting* side of that design — compute, memory
and communication of the output layer with and without vocabulary
parallelism — used by the simulator, the system models and the Figure 9
benchmark.  The numerically exact sharded cross-entropy lives in
:mod:`repro.numerics.vocab_loss` and is validated against an unsharded
reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DType
from ..hardware.comm import CommDomain, CommModel
from ..model.config import ModelConfig
from ..model.costs import CostModel, PassKind
from ..model.flops import output_layer_flops
from ..model.memory import logits_bytes_per_token

__all__ = ["VocabParallelConfig", "OutputLayerCosts", "output_layer_costs"]


@dataclass(frozen=True)
class VocabParallelConfig:
    """How the output layer is laid out across the pipeline.

    ``enabled=False`` reproduces the classic behaviour (everything on the
    last pipeline device); ``enabled=True`` spreads compute and logits over
    all ``pipeline_parallel_size`` devices.
    """

    enabled: bool
    pipeline_parallel_size: int
    tensor_parallel_size: int = 1

    def __post_init__(self) -> None:
        if self.pipeline_parallel_size < 1:
            raise ValueError("pipeline_parallel_size must be >= 1")
        if self.tensor_parallel_size < 1:
            raise ValueError("tensor_parallel_size must be >= 1")

    @property
    def vocab_shards(self) -> int:
        """Number of ways the vocabulary dimension is split."""
        return self.pipeline_parallel_size if self.enabled else 1

    def devices_holding_output(self) -> int:
        """How many pipeline devices run part of the output layer."""
        return self.pipeline_parallel_size if self.enabled else 1


@dataclass(frozen=True)
class OutputLayerCosts:
    """Per-device cost of the output layer for one slice of tokens.

    Attributes
    ----------
    compute_seconds:
        GEMM + loss time on each participating device.
    communication_seconds:
        Broadcast of the hidden states to all devices (vocab-parallel only)
        plus the scalar-statistics synchronisation of the sharded softmax.
    logits_bytes:
        fp32 logits stored on each participating device for the backward.
    participating_devices:
        1 (classic) or ``p`` (vocabulary parallelism).
    """

    compute_seconds: float
    communication_seconds: float
    logits_bytes: float
    participating_devices: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.communication_seconds


def output_layer_costs(
    model: ModelConfig,
    tokens: int,
    config: VocabParallelConfig,
    cost_model: CostModel,
    comm_model: CommModel | None = None,
    kind: PassKind = PassKind.FORWARD,
    pipeline_domain: CommDomain | None = None,
    dtype: DType = DType.BF16,
) -> OutputLayerCosts:
    """Cost of the vocabulary projection (+loss bookkeeping) for ``tokens`` tokens.

    With vocabulary parallelism the GEMM FLOPs and the stored logits are both
    divided by ``p``; the price is broadcasting the ``tokens × h`` hidden
    states over the pipeline group and an all-reduce of two fp32 scalars per
    token (softmax max and denominator).  Without it the full cost lands on a
    single device and no extra communication is needed.
    """
    if tokens < 0:
        raise ValueError("tokens must be non-negative")
    if tokens == 0:
        return OutputLayerCosts(0.0, 0.0, 0.0, config.devices_holding_output())

    shards = config.vocab_shards
    flops = output_layer_flops(model, tokens) * (
        1.0 / (config.tensor_parallel_size * shards)
    )
    compute = cost_model.time_of(flops, kind, tokens=tokens)

    communication = 0.0
    if config.enabled and config.pipeline_parallel_size > 1:
        if comm_model is None or pipeline_domain is None:
            raise ValueError(
                "vocabulary parallelism needs a communication model and a pipeline domain"
            )
        hidden_bytes = (
            tokens * model.hidden_size * dtype.bytes / config.tensor_parallel_size
        )
        communication += comm_model.broadcast_time(hidden_bytes, pipeline_domain)
        # Two fp32 statistics per token (running max and log-sum-exp).
        stats_bytes = 2 * 4.0 * tokens / config.tensor_parallel_size
        communication += comm_model.all_reduce_time(stats_bytes, pipeline_domain)

    logits = tokens * logits_bytes_per_token(
        model,
        tensor_parallel_size=config.tensor_parallel_size,
        vocab_parallel_size=shards,
    )
    return OutputLayerCosts(
        compute_seconds=compute,
        communication_seconds=communication,
        logits_bytes=logits,
        participating_devices=config.devices_holding_output(),
    )
