"""SlimPipe core: uniform slicing, slice-level 1F1B scheduling, attention
context exchange, vocabulary parallelism, chunked KV cache, offloading and
the end-to-end planner — the paper's primary contribution."""

from .context_exchange import (
    ExchangePlan,
    ExchangeTransfer,
    balance_workloads,
    concurrent_kv_slices,
    embedding_bytes_per_slice,
    exchange_volume_bound,
    exchange_volume_per_microbatch,
)
from .context_parallel import (
    CPVolumeComparison,
    cp_volume_comparison,
    cp_volume_kv_passing,
    cp_volume_query_passing,
    ring_attention_query_passing,
)
from .kv_cache import ChunkedKVCache, KVCacheStats, KVChunk
from .offload import OffloadDecision, OffloadPlanner
from .planner import SlimPipeExecution, SlimPipeOptions, SlimPipePlanner
from .schedule import (
    SlimPipeScheduleConfig,
    accumulated_slice_units,
    build_slimpipe_schedule,
    warmup_units,
)
from .slicing import SliceSpec, balanced_cost_slices, slice_lengths, uniform_slices
from .vocab_parallel import OutputLayerCosts, VocabParallelConfig, output_layer_costs

__all__ = [
    "SliceSpec",
    "uniform_slices",
    "balanced_cost_slices",
    "slice_lengths",
    "ChunkedKVCache",
    "KVChunk",
    "KVCacheStats",
    "SlimPipeScheduleConfig",
    "build_slimpipe_schedule",
    "warmup_units",
    "accumulated_slice_units",
    "ExchangePlan",
    "ExchangeTransfer",
    "balance_workloads",
    "concurrent_kv_slices",
    "exchange_volume_per_microbatch",
    "exchange_volume_bound",
    "embedding_bytes_per_slice",
    "VocabParallelConfig",
    "OutputLayerCosts",
    "output_layer_costs",
    "CPVolumeComparison",
    "cp_volume_comparison",
    "cp_volume_kv_passing",
    "cp_volume_query_passing",
    "ring_attention_query_passing",
    "OffloadDecision",
    "OffloadPlanner",
    "SlimPipeOptions",
    "SlimPipePlanner",
    "SlimPipeExecution",
]
