"""Registered sweep evaluators: one flat-dict metric function per point kind.

Evaluators are module-level functions registered by name so that

* a :class:`~repro.sweep.spec.SweepSpec` can reference them declaratively,
* ``ProcessPoolExecutor`` workers can resolve them by name (functions ship
  across the fork/pickle boundary as ``(module, qualname)`` references), and
* the cache key of a point never depends on closure state.

Each evaluator takes one sweep point (a flat dict of JSON scalars) and
returns a flat dict of JSON scalars.  An optional *pruner* registered next to
the evaluator gives a cheap memory-model early-out: it either returns ``None``
(evaluate normally) or a complete result dict for a point that provably
cannot fit, skipping the expensive grid search entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..constants import GIB, UnknownNameError, tokens_from_k
from ..hardware.topology import hopper_cluster
from ..model.config import get_model_config
from ..model.memory import RecomputeMode
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..systems import DeepSpeedSystem, MegatronSystem, SchemeSystem, SlimPipeSystem

from .spec import Scalar

__all__ = [
    "EVALUATOR_REGISTRY",
    "Evaluator",
    "get_evaluator",
    "get_pruner",
    "register_evaluator",
    "evaluate_fig12_cell",
    "evaluate_scheme_point",
    "evaluate_serving_scenario",
    "evaluate_fleet_scenario",
    "serving_metrics_from_result",
]

Evaluator = Callable[[Dict[str, Scalar]], Dict[str, Scalar]]

EVALUATOR_REGISTRY: Dict[str, Evaluator] = {}
_PRUNER_REGISTRY: Dict[str, Evaluator] = {}


def register_evaluator(
    name: str, pruner: Optional[Callable] = None
) -> Callable[[Evaluator], Evaluator]:
    """Class the decorated function as the evaluator behind ``name``."""

    def decorate(fn: Evaluator) -> Evaluator:
        EVALUATOR_REGISTRY[name] = fn
        if pruner is not None:
            _PRUNER_REGISTRY[name] = pruner
        return fn

    return decorate


def get_evaluator(name: str) -> Evaluator:
    try:
        return EVALUATOR_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown evaluator {name!r}; available: {sorted(EVALUATOR_REGISTRY)}"
        ) from None


def get_pruner(name: str) -> Optional[Evaluator]:
    """The memory-model early-out for ``name``, when one is registered."""
    return _PRUNER_REGISTRY.get(name)


# ===========================================================================
# Training-system grid cells (the Figure 12 unit of work)
# ===========================================================================
_SYSTEM_FACTORIES = {
    "deepspeed": DeepSpeedSystem,
    "megatron-lm": MegatronSystem,
    "slimpipe": SlimPipeSystem,
}


def _get_system(name: str):
    try:
        return _SYSTEM_FACTORIES[name]()
    except KeyError:
        raise UnknownNameError(
            f"unknown system {name!r}; available: {sorted(_SYSTEM_FACTORIES)}"
        ) from None


def _model_states_exceed_cluster(model_name: str, num_gpus: int) -> bool:
    """Memory-model prune: do minimal model states already exceed the cluster?

    Model states (bf16 params, fp32 grads, sharded fp32 optimizer) can be
    partitioned but never compressed, so if even the fully sharded optimizer
    state plus weights and gradients summed over the whole cluster exceeds
    the aggregate usable HBM, *no* hybrid-parallelism candidate fits and the
    grid search can be skipped outright.
    """
    from ..systems.estimator import AnalyticEstimator

    model = get_model_config(model_name)
    cluster = hopper_cluster(num_gpus)
    estimator = AnalyticEstimator(model, cluster)
    optimizer = estimator.settings.optimizer
    # Fully distributed optimizer: master weights + both Adam moments shard
    # across the cluster; bf16 params and fp32 grads exist once per pipeline
    # replica at best (lower bound: once).
    cluster_state_bytes = model.total_params() * (
        optimizer.param_bytes
        + optimizer.grad_bytes
        + optimizer.master_param_bytes
        + optimizer.exp_avg_bytes
        + optimizer.exp_avg_sq_bytes
    )
    return cluster_state_bytes > estimator.usable_memory_bytes() * cluster.total_gpus


def _prune_fig12_cell(point: Dict[str, Scalar]) -> Optional[Dict[str, Scalar]]:
    if _model_states_exceed_cluster(str(point["model"]), int(point["num_gpus"])):
        return {
            "feasible": False,
            "reason": "oom",
            "mfu": 0.0,
            "iteration_time": 0.0,
            "peak_memory_gib": 0.0,
            "config": "",
            "pruned": True,
        }
    return None


@register_evaluator("fig12-cell", pruner=_prune_fig12_cell)
def evaluate_fig12_cell(point: Dict[str, Scalar]) -> Dict[str, Scalar]:
    """Grid-search one (model, cluster, context, system) cell of Figure 12."""
    model = get_model_config(str(point["model"]))
    cluster = hopper_cluster(int(point["num_gpus"]))
    sequence = tokens_from_k(float(point["sequence_k"]))
    tokens_per_iteration = int(point.get("tokens_per_iteration", 4 * 1024 * 1024))
    workload = WorkloadConfig(
        sequence_length=sequence,
        tokens_per_iteration=max(tokens_per_iteration, sequence),
    )
    system = _get_system(str(point["system"]))
    estimate = system.best_configuration(model, cluster, workload)
    config = ""
    if estimate.parallel is not None:
        p = estimate.parallel
        config = f"t={p.t} c={p.c} d={p.d} e={p.e} p={p.p} v={p.v}"
        if p.num_slices:
            config += f" n={p.num_slices}"
    return {
        "feasible": estimate.feasible,
        "reason": estimate.reason,
        "mfu": estimate.mfu,
        "iteration_time": estimate.iteration_time,
        "peak_memory_gib": estimate.peak_memory_bytes / GIB,
        "config": config,
    }


# ===========================================================================
# Scheme-comparison points (the Figures 13 / 14 unit of work)
# ===========================================================================
def _prune_scheme_point(point: Dict[str, Scalar]) -> Optional[Dict[str, Scalar]]:
    num_gpus = int(point.get("tensor_parallel", 8)) * int(point.get("pipeline_parallel", 8))
    if _model_states_exceed_cluster(str(point.get("model", "llama-13b")), num_gpus):
        return {
            "feasible": False,
            "mfu": 0.0,
            "peak_memory_gib": 0.0,
            "bubble_fraction": 0.0,
            "iteration_time": 0.0,
            "pruned": True,
        }
    return None


@register_evaluator("scheme-point", pruner=_prune_scheme_point)
def evaluate_scheme_point(point: Dict[str, Scalar]) -> Dict[str, Scalar]:
    """Evaluate one pipeline scheme at one fixed operating point.

    Mirrors the Section 6.6 methodology (see
    :func:`repro.analysis.figures.scheme_context_sweep`): fixed TP/PP, full
    checkpointing except for the zero-bubble variants, interleaving only for
    the schemes that support it.
    """
    scheme = str(point["scheme"])
    model = get_model_config(str(point.get("model", "llama-13b")))
    t = int(point.get("tensor_parallel", 8))
    p = int(point.get("pipeline_parallel", 8))
    cluster = hopper_cluster(t * p)
    sequence = tokens_from_k(float(point["sequence_k"]))
    batch_sequences = int(point.get("batch_sequences", 4))
    virtual_stages = int(point.get("virtual_stages", 5))
    uses_virtual = scheme in ("interleaved-1f1b", "slimpipe")
    recompute = (
        RecomputeMode.NONE if scheme in ("zb-v", "v-half") else RecomputeMode.FULL
    )
    workload = WorkloadConfig(
        sequence_length=sequence, tokens_per_iteration=sequence * batch_sequences
    )
    parallel = ParallelConfig(
        tensor_parallel_size=t,
        pipeline_parallel_size=p,
        virtual_pipeline_size=virtual_stages if uses_virtual else 1,
        num_slices=int(point.get("slices_per_stage", 1)) * p if scheme == "slimpipe" else None,
    )
    system = SchemeSystem(scheme, forced_recompute=recompute)
    try:
        estimate = system.evaluate(model, cluster, workload, parallel)
    except ValueError:
        return {
            "feasible": False,
            "mfu": 0.0,
            "peak_memory_gib": 0.0,
            "bubble_fraction": 0.0,
            "iteration_time": 0.0,
        }
    return {
        "feasible": estimate.feasible,
        "mfu": estimate.mfu,
        "peak_memory_gib": estimate.peak_memory_bytes / GIB,
        "bubble_fraction": estimate.bubble_fraction,
        "iteration_time": estimate.iteration_time,
    }


# ===========================================================================
# Serving scenarios (the serving-comparison unit of work)
# ===========================================================================
@register_evaluator("serving-scenario")
def evaluate_serving_scenario(point: Dict[str, Scalar]) -> Dict[str, Scalar]:
    """Simulate one (scenario, deployment mode) pair end to end."""
    from ..serving.scenarios import get_scenario, run_scenario

    scenario = get_scenario(str(point["scenario"]))
    prefix_caching = point.get("prefix_caching")
    retain_records = point.get("retain_records")
    max_requests = point.get("max_requests")
    policy = point.get("policy")
    result = run_scenario(
        scenario,
        str(point.get("mode", "colocated")),
        seed=int(point.get("seed", 0)),
        policy=None if policy is None else str(policy),
        fast_forward=bool(point.get("fast_forward", True)),
        prefix_caching=None if prefix_caching is None else bool(prefix_caching),
        retain_records=None if retain_records is None else bool(retain_records),
        max_requests=None if max_requests is None else int(max_requests),
    )
    m = result.metrics
    row: Dict[str, Scalar] = {
        "num_requests": m.num_requests,
        "duration": m.duration,
        "ttft_p50": m.ttft_p50,
        "ttft_p95": m.ttft_p95,
        "ttft_p99": m.ttft_p99,
        "tpot_p50": m.tpot_p50,
        "tpot_p95": m.tpot_p95,
        "tpot_p99": m.tpot_p99,
        "e2e_p50": m.e2e_p50,
        "e2e_p95": m.e2e_p95,
        "e2e_p99": m.e2e_p99,
        "output_tokens_per_second": m.output_tokens_per_second,
        "requests_per_second": m.requests_per_second,
        "goodput_fraction": m.goodput_fraction,
        "goodput_rps": m.goodput_rps,
        "kv_utilization_mean": m.kv_utilization_mean,
        "kv_utilization_peak": m.kv_utilization_peak,
        "preemptions": m.preemptions,
        "slo_ttft": m.slo.ttft,
        "slo_tpot": m.slo.tpot,
        "prefix_hit_rate": result.prefix_hit_rate,
        "prefix_hit_tokens": result.prefix_hit_tokens,
        "prefix_flops_saved": result.prefix_flops_saved,
        "prefill_flops_executed": result.prefill_flops_executed,
        "prefix_evictions": result.prefix_evictions,
    }
    # Per-tenant QoS keys appear only for tenant-tagged scenarios, so every
    # pre-tenancy golden keeps exactly its historical key set.
    for tenant, tm in sorted(result.tenant_metrics.items()):
        prefix = f"tenant.{tenant}."
        row[prefix + "num_requests"] = tm.num_requests
        row[prefix + "output_tokens"] = tm.output_tokens
        row[prefix + "ttft_p50"] = tm.ttft_p50
        row[prefix + "ttft_p99"] = tm.ttft_p99
        row[prefix + "tpot_p50"] = tm.tpot_p50
        row[prefix + "tpot_p99"] = tm.tpot_p99
        row[prefix + "goodput_fraction"] = tm.goodput_fraction
        row[prefix + "goodput_rps"] = tm.goodput_rps
        row[prefix + "slo_ttft"] = tm.slo.ttft
        row[prefix + "slo_tpot"] = tm.slo.tpot
    return row


# ===========================================================================
# Fleet scenarios (the fleet-comparison / capacity-planner unit of work)
# ===========================================================================
@register_evaluator("fleet-scenario")
def evaluate_fleet_scenario(point: Dict[str, Scalar]) -> Dict[str, Scalar]:
    """Simulate one (scenario, router, fleet size) triple end to end."""
    from ..fleet.scenarios import get_fleet_scenario, run_fleet_scenario

    scenario = get_fleet_scenario(str(point["scenario"]))
    router = point.get("router")
    replicas = point.get("replicas")
    autoscale = point.get("autoscale")
    prefix_caching = point.get("prefix_caching")
    result = run_fleet_scenario(
        scenario,
        router=None if router is None else str(router),
        replicas=None if replicas is None else int(replicas),
        seed=int(point.get("seed", 0)),
        load_scale=float(point.get("load_scale", 1.0)),
        autoscale=None if autoscale is None else bool(autoscale),
        with_failures=bool(point.get("with_failures", True)),
        fast_forward=bool(point.get("fast_forward", True)),
        prefix_caching=None if prefix_caching is None else bool(prefix_caching),
    )
    m = result.metrics
    f = result.fleet
    return {
        "num_requests": m.num_requests,
        "duration": m.duration,
        "ttft_p50": m.ttft_p50,
        "ttft_p95": m.ttft_p95,
        "ttft_p99": m.ttft_p99,
        "tpot_p50": m.tpot_p50,
        "tpot_p95": m.tpot_p95,
        "tpot_p99": m.tpot_p99,
        "e2e_p50": m.e2e_p50,
        "e2e_p95": m.e2e_p95,
        "e2e_p99": m.e2e_p99,
        "output_tokens_per_second": m.output_tokens_per_second,
        "requests_per_second": m.requests_per_second,
        "goodput_fraction": m.goodput_fraction,
        "goodput_rps": m.goodput_rps,
        "kv_utilization_mean": m.kv_utilization_mean,
        "kv_utilization_peak": m.kv_utilization_peak,
        "preemptions": m.preemptions,
        "slo_ttft": m.slo.ttft,
        "slo_tpot": m.slo.tpot,
        "replicas_provisioned": f.replicas_provisioned,
        "replicas_peak": f.replicas_peak,
        "replicas_final": f.replicas_final,
        "scale_up_events": f.scale_up_events,
        "scale_down_events": f.scale_down_events,
        "crashes": f.crashes,
        "slow_events": f.slow_events,
        "rerouted_requests": f.rerouted_requests,
        "gpu_hours": f.gpu_hours,
        "cost_usd": f.cost_usd,
        "iterations": result.iterations,
        "token_accounting_balanced": result.token_accounting_balanced,
        "prefix_hit_rate": result.prefix_hit_rate,
        "prefix_hit_tokens": result.prefix_hit_tokens,
        "prefix_flops_saved": result.prefix_flops_saved,
        "prefill_flops_executed": result.prefill_flops_executed,
        "prefix_evictions": result.prefix_evictions,
    }


def serving_metrics_from_result(result: Dict[str, Scalar]):
    """Rebuild a :class:`~repro.serving.metrics.ServingMetrics` from a sweep row."""
    from ..serving.metrics import SLO, ServingMetrics

    return ServingMetrics(
        num_requests=int(result["num_requests"]),
        duration=float(result["duration"]),
        ttft_p50=float(result["ttft_p50"]),
        ttft_p95=float(result["ttft_p95"]),
        ttft_p99=float(result["ttft_p99"]),
        tpot_p50=float(result["tpot_p50"]),
        tpot_p95=float(result["tpot_p95"]),
        tpot_p99=float(result["tpot_p99"]),
        e2e_p50=float(result["e2e_p50"]),
        e2e_p95=float(result["e2e_p95"]),
        e2e_p99=float(result["e2e_p99"]),
        output_tokens_per_second=float(result["output_tokens_per_second"]),
        requests_per_second=float(result["requests_per_second"]),
        goodput_fraction=float(result["goodput_fraction"]),
        goodput_rps=float(result["goodput_rps"]),
        kv_utilization_mean=float(result["kv_utilization_mean"]),
        kv_utilization_peak=float(result["kv_utilization_peak"]),
        preemptions=int(result["preemptions"]),
        slo=SLO(ttft=float(result["slo_ttft"]), tpot=float(result["slo_tpot"])),
    )
