"""On-disk memoization of sweep results, invalidated by a constants fingerprint.

Every evaluated sweep point is stored in a JSON file per spec name under the
cache directory (``$REPRO_SWEEP_CACHE_DIR``, defaulting to
``~/.cache/repro-sweep``).  Entries are keyed by
:func:`repro.sweep.spec.point_key` — a stable hash of (evaluator, point) — so
re-running a sweep re-evaluates only the points that were never seen.

Staleness is handled by :func:`code_fingerprint`: a stable hash over the
code-relevant constants the evaluators depend on (GPU spec, estimator
settings, model registry, scheme formulas, serving scenarios, the fleet
layer).  The
fingerprint is written into every cache file and golden record; a file whose
fingerprint no longer matches is discarded wholesale, so changing any
modelled constant transparently invalidates every memoized number instead of
serving stale results.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import fields, is_dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from .spec import Scalar, SweepSpec, stable_hash

__all__ = ["SweepCache", "code_fingerprint", "default_cache_dir", "CACHE_DIR_ENV"]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_SWEEP_CACHE_DIR`` or ``~/.cache/repro-sweep``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sweep"


def _jsonable(obj: object) -> object:
    """Render constants (dataclasses, enums, containers) as plain JSON data."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


#: Modules whose *source* is hashed into the fingerprint: the numeric heart
#: of every evaluator.  Editing a closed form, a trace factory or a cost
#: model here must invalidate memoized results even when no registry constant
#: changed.
_FINGERPRINTED_MODULES = (
    "repro.fleet.autoscaler",
    "repro.fleet.cluster",
    "repro.fleet.failures",
    "repro.fleet.router",
    "repro.fleet.scenarios",
    "repro.hardware.comm",
    "repro.model.costs",
    "repro.model.flops",
    "repro.model.memory",
    "repro.schedules.formulas",
    "repro.serving.batcher",
    "repro.serving.engine",
    "repro.serving.metrics",
    "repro.serving.paged_kv",
    "repro.serving.prefix_cache",
    "repro.serving.scenarios",
    "repro.serving.tenancy",
    "repro.serving.workload",
    "repro.sweep.evaluators",
    "repro.systems.estimator",
    "repro.systems.pipeline_systems",
    "repro.systems.deepspeed",
)


@lru_cache(maxsize=None)
def code_fingerprint() -> str:
    """Stable hash of the constants and code the sweep evaluators depend on.

    Covers the GPU spec, the default estimator settings, every registered
    model configuration, every serving scenario's deployment knobs, and the
    source text of the numeric-core modules (closed-form scheme formulas,
    FLOPs/memory/cost models, communication model, workload generators,
    serving metrics, the sweep evaluators and the fleet layer).
    Perturbing any of them changes the fingerprint, which invalidates caches
    and flags goldens as stale.  (The package version is deliberately
    excluded: a version bump alone does not change any number.)

    Memoized per process (the inputs are module-level constants); tests that
    perturb a constant must ``code_fingerprint.cache_clear()`` around the
    perturbation.
    """
    # Imported lazily so this module stays cycle-free below the model,
    # hardware, systems and serving layers.
    import importlib
    import inspect

    from ..hardware import gpu as gpu_module
    from ..model.config import MODEL_REGISTRY
    from ..serving.scenarios import SCENARIO_REGISTRY
    from ..systems.estimator import EstimatorSettings

    scenarios = {
        name: {
            "model": s.model,
            "num_gpus": s.num_gpus,
            "slo": _jsonable(s.slo),
            "batcher": _jsonable(s.batcher),
            "block_tokens": s.block_tokens,
            "prefill_fraction": s.prefill_fraction,
            "tenancy": _jsonable(s.tenancy),
        }
        for name, s in SCENARIO_REGISTRY.items()
    }
    sources = {
        name: stable_hash(inspect.getsource(importlib.import_module(name)))
        for name in _FINGERPRINTED_MODULES
    }
    payload = {
        "gpu": _jsonable(gpu_module.HOPPER_80GB),
        "estimator": _jsonable(EstimatorSettings()),
        "models": {name: _jsonable(cfg) for name, cfg in MODEL_REGISTRY.items()},
        "scenarios": scenarios,
        "sources": sources,
    }
    return stable_hash(payload)


class SweepCache:
    """Per-spec JSON result store keyed by point hash.

    ``directory=None`` uses :func:`default_cache_dir`; ``enabled=False``
    makes every operation a no-op (the ``--no-cache`` path).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        enabled: bool = True,
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.enabled = enabled

    # ------------------------------------------------------------------
    def path_for(self, spec: SweepSpec) -> Path:
        return self.directory / f"{spec.name}.json"

    def load(self, spec: SweepSpec) -> Dict[str, Dict[str, Scalar]]:
        """Entries cached for ``spec``; empty when disabled, missing or stale."""
        if not self.enabled:
            return {}
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        if payload.get("format") != _FORMAT_VERSION:
            return {}
        if payload.get("fingerprint") != code_fingerprint():
            # A code-relevant constant changed: every memoized number is stale.
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    def store(self, spec: SweepSpec, entries: Mapping[str, Dict[str, Scalar]]) -> None:
        """Merge ``entries`` into the spec's cache file (atomic rewrite)."""
        if not self.enabled or not entries:
            return
        merged = self.load(spec)
        merged.update(entries)
        payload = {
            "format": _FORMAT_VERSION,
            "fingerprint": code_fingerprint(),
            "spec": spec.name,
            "evaluator": spec.evaluator,
            "entries": merged,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        # Unique temp name per writer: concurrent processes sharing the cache
        # directory must never interleave writes into the same staging file.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{spec.name}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
