"""Golden-metrics regression harness.

The classic systems-benchmark safety net: a registry of *golden definitions*
— named, fast-to-recompute flat dictionaries of headline metrics (the
figure/table numbers of the paper's evaluation and the serving scenarios'
SLO metrics) — pinned as JSON files under ``tests/goldens/`` and re-derived
on every test run.

A golden file stores the metrics, the tolerances they were recorded with and
the code-constants fingerprint of :func:`repro.sweep.cache.code_fingerprint`.
:func:`check_golden` recomputes the definition and fails on

* any metric drifting outside ``max(atol, rtol * |reference|)``,
* metrics appearing or disappearing, or
* a fingerprint mismatch (a modelled constant changed — every number is
  suspect even if the sampled metrics happen to agree).

Regenerate after an intentional change with::

    python -m repro.cli sweep golden --regenerate

and commit the rewritten ``tests/goldens/*.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..constants import UnknownNameError
from .cache import code_fingerprint
from .spec import Scalar

__all__ = [
    "GoldenDefinition",
    "GoldenCheck",
    "GOLDEN_REGISTRY",
    "available_goldens",
    "get_golden_definition",
    "goldens_dir",
    "golden_path",
    "record_golden",
    "record_all_goldens",
    "check_golden",
]

#: Environment variable overriding the golden directory.
GOLDENS_DIR_ENV = "REPRO_GOLDENS_DIR"

#: Default relative tolerance — the computations are deterministic, so the
#: tolerance only needs to absorb floating-point reassociation noise.
DEFAULT_RTOL = 1e-6
DEFAULT_ATOL = 1e-9


def goldens_dir() -> Path:
    """``tests/goldens`` of the repository (override with ``$REPRO_GOLDENS_DIR``)."""
    override = os.environ.get(GOLDENS_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


@dataclass(frozen=True)
class GoldenDefinition:
    """One pinned experiment: a name, a metric recomputation, tolerances."""

    name: str
    compute: Callable[[], Dict[str, Scalar]]
    rtol: float = DEFAULT_RTOL
    atol: float = DEFAULT_ATOL
    description: str = ""


@dataclass
class GoldenCheck:
    """Outcome of re-deriving one golden and diffing it against its file."""

    name: str
    ok: bool
    failures: List[str] = field(default_factory=list)

    def report(self) -> str:
        if self.ok:
            return f"golden {self.name}: ok"
        lines = [f"golden {self.name}: {len(self.failures)} failure(s)"] + [
            f"  - {failure}" for failure in self.failures
        ]
        lines.append(
            "  regenerate with `python -m repro.cli sweep golden --regenerate "
            f"{self.name}` if the change is intentional"
        )
        return "\n".join(lines)


GOLDEN_REGISTRY: Dict[str, GoldenDefinition] = {}


def _register(
    name: str, description: str = "", rtol: float = DEFAULT_RTOL, atol: float = DEFAULT_ATOL
):
    def decorate(fn: Callable[[], Dict[str, Scalar]]):
        GOLDEN_REGISTRY[name] = GoldenDefinition(
            name=name, compute=fn, rtol=rtol, atol=atol, description=description
        )
        return fn

    return decorate


def available_goldens() -> List[str]:
    return sorted(GOLDEN_REGISTRY)


def get_golden_definition(name: str) -> GoldenDefinition:
    try:
        return GOLDEN_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown golden {name!r}; available: {available_goldens()}"
        ) from None


# ===========================================================================
# Record / check
# ===========================================================================
def golden_path(name: str, directory: Optional[Union[str, Path]] = None) -> Path:
    return (Path(directory) if directory is not None else goldens_dir()) / f"{name}.json"


def record_golden(
    name: str,
    directory: Optional[Union[str, Path]] = None,
    definition: Optional[GoldenDefinition] = None,
) -> Path:
    """Recompute one golden and (re)write its JSON file."""
    definition = definition or get_golden_definition(name)
    payload = {
        "name": name,
        "description": definition.description,
        "fingerprint": code_fingerprint(),
        "rtol": definition.rtol,
        "atol": definition.atol,
        "metrics": definition.compute(),
    }
    path = golden_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    return path


def record_all_goldens(
    names: Optional[Sequence[str]] = None,
    directory: Optional[Union[str, Path]] = None,
) -> List[Path]:
    return [
        record_golden(name, directory)
        for name in (names if names else available_goldens())
    ]


def _within(reference: float, value: float, rtol: float, atol: float) -> bool:
    return abs(value - reference) <= max(atol, rtol * abs(reference))


def check_golden(
    name: str,
    directory: Optional[Union[str, Path]] = None,
    definition: Optional[GoldenDefinition] = None,
) -> GoldenCheck:
    """Recompute one golden and diff it against its pinned file."""
    definition = definition or get_golden_definition(name)
    path = golden_path(name, directory)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return GoldenCheck(
            name,
            ok=False,
            failures=[f"golden file {path} is missing; record it first"],
        )
    except ValueError as error:
        return GoldenCheck(name, ok=False, failures=[f"golden file {path} unreadable: {error}"])

    failures: List[str] = []
    if payload.get("fingerprint") != code_fingerprint():
        failures.append(
            "code-constants fingerprint changed (a modelled constant was "
            "perturbed since this golden was recorded)"
        )
    reference: Dict[str, Scalar] = payload.get("metrics", {})
    rtol = float(payload.get("rtol", definition.rtol))
    atol = float(payload.get("atol", definition.atol))
    current = definition.compute()

    for key in sorted(set(reference) - set(current)):
        failures.append(f"metric {key!r} disappeared (was {reference[key]!r})")
    for key in sorted(set(current) - set(reference)):
        failures.append(f"new metric {key!r} = {current[key]!r} not in the golden")
    for key in sorted(set(reference) & set(current)):
        ref, got = reference[key], current[key]
        if isinstance(ref, bool) or isinstance(got, bool) or not (
            isinstance(ref, (int, float)) and isinstance(got, (int, float))
        ):
            if ref != got:
                failures.append(f"{key}: expected {ref!r}, got {got!r}")
        elif not _within(float(ref), float(got), rtol, atol):
            failures.append(
                f"{key}: expected {ref!r}, got {got!r} "
                f"(tolerance max({atol:g}, {rtol:g}*|ref|))"
            )
    return GoldenCheck(name, ok=not failures, failures=failures)


# ===========================================================================
# Golden definitions — the paper's headline numbers
# ===========================================================================
# Every compute function imports the analysis layer lazily: this module is
# imported by ``repro.sweep`` which the analysis layer itself builds on.
@_register("fig01", "memory footprint vs PP size (Llama 70B, 64K)")
def _golden_fig01() -> Dict[str, Scalar]:
    from ..analysis.figures import figure1_memory_footprint

    metrics: Dict[str, Scalar] = {}
    for row in figure1_memory_footprint().rows:
        prefix = f"p{row.pipeline_parallel_size}"
        metrics[f"{prefix}.model_state_gib"] = row.model_state_gib
        metrics[f"{prefix}.classic_activation_gib"] = row.classic_activation_gib
        metrics[f"{prefix}.slimpipe_activation_gib"] = row.slimpipe_activation_gib
    return metrics


@_register("fig02", "maximum context length per PP scheme (Llama 13B)")
def _golden_fig02() -> Dict[str, Scalar]:
    from ..analysis.figures import figure2_max_context

    return {
        f"{row.scheme}.max_context_k": row.max_context_k
        for row in figure2_max_context().rows
    }


@_register("fig03", "theoretical bubble fractions per scheme")
def _golden_fig03() -> Dict[str, Scalar]:
    from ..analysis.figures import figure3_bubble_fractions

    return {
        f"{row.scheme}.bubble_fraction": row.bubble_fraction
        for row in figure3_bubble_fractions().rows
    }


def _schedule_structure_metrics(result) -> Dict[str, Scalar]:
    metrics: Dict[str, Scalar] = {
        "accumulated_fraction": result.accumulated_fraction_of_microbatch,
        "total_warmup_units": sum(result.warmup_units),
        "peak_activation_units_max": max(result.peak_activation_units),
    }
    for device, units in enumerate(result.warmup_units):
        metrics[f"warmup_units.dev{device}"] = units
    return metrics


@_register("fig04", "SlimPipe schedule structure (p=4, m=3, n=8)")
def _golden_fig04() -> Dict[str, Scalar]:
    from ..analysis.figures import figure4_schedule_structure

    return _schedule_structure_metrics(figure4_schedule_structure())


@_register("fig05", "interleaved SlimPipe schedule structure (p=4, m=2, n=8, v=2)")
def _golden_fig05() -> Dict[str, Scalar]:
    from ..analysis.figures import figure5_interleaved_schedule

    return _schedule_structure_metrics(figure5_interleaved_schedule())


@_register("fig06", "activation memory and bubbles vs number of slices")
def _golden_fig06() -> Dict[str, Scalar]:
    from ..analysis.figures import figure6_slices_sweep

    result = figure6_slices_sweep()
    metrics: Dict[str, Scalar] = {}
    for row in result.activation_rows:
        metrics[f"activation.p{row.pipeline_parallel_size}.n{row.num_slices}"] = (
            row.activation_fraction
        )
    for row in result.bubble_rows:
        metrics[f"bubble.m{row.num_microbatches}.n{row.num_slices}"] = row.bubble_fraction
    return metrics


@_register("fig07", "imbalance bubbles with / without context exchange")
def _golden_fig07() -> Dict[str, Scalar]:
    from ..analysis.figures import figure7_imbalance_bubbles

    result = figure7_imbalance_bubbles()
    return {
        "bubble_without_exchange": result.bubble_without_exchange,
        "bubble_with_exchange": result.bubble_with_exchange,
        "makespan_without_exchange": result.makespan_without_exchange,
        "makespan_with_exchange": result.makespan_with_exchange,
    }


@_register("fig08", "context-exchange rebalancing plan")
def _golden_fig08() -> Dict[str, Scalar]:
    from ..analysis.figures import figure8_context_exchange_plan

    result = figure8_context_exchange_plan()
    return {
        "num_transfers": result.num_transfers,
        "max_imbalance_before": result.max_imbalance_before,
        "max_imbalance_after": result.max_imbalance_after,
    }


@_register("fig09", "output-layer bubble with / without vocabulary parallelism")
def _golden_fig09() -> Dict[str, Scalar]:
    from ..analysis.figures import figure9_vocab_parallel_bubble

    result = figure9_vocab_parallel_bubble()
    return {
        "makespan_last_device_gemm": result.makespan_last_device_gemm,
        "makespan_vocab_parallel": result.makespan_vocab_parallel,
        "bubble_last_device_gemm": result.bubble_last_device_gemm,
        "bubble_vocab_parallel": result.bubble_vocab_parallel,
        "speedup": result.speedup,
    }


@_register("fig10", "memory scaling vs PP size (32K slice of the grid)")
def _golden_fig10() -> Dict[str, Scalar]:
    from ..analysis.figures import figure10_memory_scaling

    metrics: Dict[str, Scalar] = {}
    # The full grid takes several seconds; the 32K column with two pipeline
    # sizes pins the same code paths at a fraction of the cost.
    for row in figure10_memory_scaling(sequence_ks=(32,), pipeline_sizes=(2, 4)).rows:
        prefix = f"s{row.sequence_k}k.p{row.pipeline_parallel_size}"
        metrics[f"{prefix}.first_device_gib"] = row.first_device_gib
        metrics[f"{prefix}.last_device_gib"] = row.last_device_gib
        metrics[f"{prefix}.theoretical_gib"] = row.theoretical_gib
    return metrics


@_register("fig11", "MFU vs number of slices")
def _golden_fig11() -> Dict[str, Scalar]:
    from ..analysis.figures import figure11_mfu_vs_slices

    result = figure11_mfu_vs_slices()
    metrics: Dict[str, Scalar] = {
        f"s{row.sequence_k}k.n{row.num_slices}.mfu": row.mfu for row in result.rows
    }
    for seq_k in (128, 256, 512):
        metrics[f"s{seq_k}k.best_slices"] = result.best_slices(seq_k)
    return metrics


@_register("fig12", "end-to-end MFU headline cells (Llama 70B, 128 GPUs)")
def _golden_fig12() -> Dict[str, Scalar]:
    from ..analysis.figures import figure12_end_to_end
    from ..model.config import LLAMA_70B

    result = figure12_end_to_end(
        models=(LLAMA_70B,), gpu_counts=(128,), sequence_ks=(64, 256)
    )
    metrics: Dict[str, Scalar] = {}
    for cell in result.cells:
        prefix = f"s{cell.sequence_k}k.{cell.system}"
        metrics[f"{prefix}.feasible"] = cell.feasible
        metrics[f"{prefix}.mfu"] = cell.mfu
    for seq_k in (64, 256):
        speedup = result.speedup_over_megatron("llama-70b", 128, seq_k)
        metrics[f"s{seq_k}k.speedup_over_megatron"] = speedup
    return metrics


def _scheme_sweep_metrics(attr: str) -> Dict[str, Scalar]:
    from ..analysis.figures import scheme_context_sweep

    metrics: Dict[str, Scalar] = {}
    for row in scheme_context_sweep(sequence_ks=(64, 256)).rows:
        prefix = f"{row.scheme}.s{row.sequence_k}k"
        metrics[f"{prefix}.feasible"] = row.feasible
        metrics[f"{prefix}.{attr}"] = getattr(row, attr)
    return metrics


@_register("fig13", "scheme MFU across context lengths")
def _golden_fig13() -> Dict[str, Scalar]:
    return _scheme_sweep_metrics("mfu")


@_register("fig14", "scheme peak memory across context lengths")
def _golden_fig14() -> Dict[str, Scalar]:
    return _scheme_sweep_metrics("peak_memory_gib")


@_register("tab02", "closed-form scheme comparison at the Table 2 point")
def _golden_tab02() -> Dict[str, Scalar]:
    from ..analysis.tables import table2_scheme_comparison

    metrics: Dict[str, Scalar] = {}
    for row in table2_scheme_comparison():
        metrics[f"{row.scheme}.activation_memory_factor"] = row.activation_memory_factor
        metrics[f"{row.scheme}.bubble_fraction"] = row.bubble_fraction
    return metrics


@_register("tab03", "model parameter counts (Table 3)")
def _golden_tab03() -> Dict[str, Scalar]:
    from ..analysis.tables import table3_model_specifications

    return {
        f"{row.model}.params_billions": row.params_billions
        for row in table3_model_specifications()
    }


@_register("tab04", "ultra-long-context offloading (Table 4)")
def _golden_tab04() -> Dict[str, Scalar]:
    from ..analysis.tables import table4_ultra_long_context

    metrics: Dict[str, Scalar] = {}
    for row in table4_ultra_long_context():
        prefix = f"{row.model}.c{row.context_k}k"
        metrics[f"{prefix}.feasible"] = row.feasible
        metrics[f"{prefix}.offload_ratio"] = row.offload_ratio
        metrics[f"{prefix}.mfu"] = row.mfu
    return metrics


# ---------------------------------------------------------------------------
# Serving scenarios: TTFT / TPOT / goodput under both deployments, generated
# through the sweep engine itself (no cache — goldens must recompute).
# ---------------------------------------------------------------------------
_SERVING_GOLDEN_METRICS = (
    "ttft_p50",
    "ttft_p99",
    "tpot_p50",
    "tpot_p95",
    "tpot_p99",
    "goodput_fraction",
    "goodput_rps",
    "preemptions",
)


def _serving_golden(scenario: str) -> Dict[str, Scalar]:
    from .engine import run_sweep
    from .spec import SweepSpec

    spec = SweepSpec.make(
        name=f"golden-serving-{scenario}",
        evaluator="serving-scenario",
        axes={"mode": ("colocated", "disaggregated")},
        base={"scenario": scenario, "seed": 0},
    )
    result = run_sweep(spec)
    metrics: Dict[str, Scalar] = {}
    for point, row in result:
        for key in _SERVING_GOLDEN_METRICS:
            metrics[f"{point['mode']}.{key}"] = row[key]
    return metrics


def _register_serving_goldens() -> None:
    for scenario in (
        "chat",
        "rag-long-prompt",
        "summarize-512k",
        "bursty-long",
        "mixed-fleet",
        "shared-system-prompt",
        "rag-shared-corpus",
        "agentic-prefix-tree",
    ):
        GOLDEN_REGISTRY[f"serving-{scenario}"] = GoldenDefinition(
            name=f"serving-{scenario}",
            compute=(lambda s: (lambda: _serving_golden(s)))(scenario),
            description=f"TTFT/TPOT/goodput of the {scenario!r} scenario, both deployments",
        )


_register_serving_goldens()


# ---------------------------------------------------------------------------
# Multi-tenant scenarios: global SLO metrics plus every per-tenant QoS key
# (``tenant.<name>.<metric>``) under both deployments.  Pinning the tenant
# keys makes fair-scheduler and admission-control drift visible per tenant,
# not just in the blended aggregate.
# ---------------------------------------------------------------------------
def _tenant_golden(scenario: str) -> Dict[str, Scalar]:
    from .engine import run_sweep
    from .spec import SweepSpec

    spec = SweepSpec.make(
        name=f"golden-tenant-{scenario}",
        evaluator="serving-scenario",
        axes={"mode": ("colocated", "disaggregated")},
        base={"scenario": scenario, "seed": 0},
    )
    result = run_sweep(spec)
    metrics: Dict[str, Scalar] = {}
    for point, row in result:
        for key in _SERVING_GOLDEN_METRICS:
            metrics[f"{point['mode']}.{key}"] = row[key]
        for key in sorted(row):
            if key.startswith("tenant."):
                metrics[f"{point['mode']}.{key}"] = row[key]
    return metrics


def _register_tenant_goldens() -> None:
    for scenario in (
        "noisy-neighbour",
        "tenant-flash-crowd",
        "batch-backfill-under-interactive",
    ):
        GOLDEN_REGISTRY[f"tenant-{scenario}"] = GoldenDefinition(
            name=f"tenant-{scenario}",
            compute=(lambda s: (lambda: _tenant_golden(s)))(scenario),
            description=(
                f"per-tenant TTFT/TPOT/goodput of the {scenario!r} scenario "
                "under fair scheduling, both deployments"
            ),
        )


_register_tenant_goldens()


# ---------------------------------------------------------------------------
# Prefix caching A/B: the acceptance evidence that shared-prefix KV caching
# buys >= 2x median TTFT and >= 2x prefill FLOPs on shared-prompt traffic.
# ---------------------------------------------------------------------------
_PREFIX_AB_METRICS = (
    "ttft_p50",
    "ttft_p99",
    "tpot_p50",
    "goodput_fraction",
    "prefix_hit_rate",
    "prefix_hit_tokens",
    "prefix_flops_saved",
    "prefill_flops_executed",
    "prefix_evictions",
    "preemptions",
)


def _prefix_ab_golden(scenario: str) -> Dict[str, Scalar]:
    from .engine import run_sweep
    from .spec import SweepSpec

    spec = SweepSpec.make(
        name=f"golden-prefix-ab-{scenario}",
        evaluator="serving-scenario",
        axes={"prefix_caching": (False, True)},
        base={"scenario": scenario, "mode": "colocated", "seed": 0},
    )
    result = run_sweep(spec)
    metrics: Dict[str, Scalar] = {}
    for point, row in result:
        label = "cached" if point["prefix_caching"] else "uncached"
        for key in _PREFIX_AB_METRICS:
            metrics[f"{label}.{key}"] = row[key]
    return metrics


def _register_prefix_ab_goldens() -> None:
    for scenario in ("shared-system-prompt", "rag-shared-corpus", "agentic-prefix-tree"):
        GOLDEN_REGISTRY[f"prefix-ab-{scenario}"] = GoldenDefinition(
            name=f"prefix-ab-{scenario}",
            compute=(lambda s: (lambda: _prefix_ab_golden(s)))(scenario),
            description=(
                f"prefix caching on/off A/B of the {scenario!r} scenario "
                "(TTFT, hit rate, prefill FLOPs executed/saved)"
            ),
        )


_register_prefix_ab_goldens()


# ---------------------------------------------------------------------------
# Fleet scenarios: routing-policy comparison headline numbers, generated
# through the sweep engine itself (no cache — goldens must recompute).
# ---------------------------------------------------------------------------
_FLEET_GOLDEN_METRICS = (
    "ttft_p50",
    "ttft_p99",
    "tpot_p50",
    "goodput_fraction",
    "gpu_hours",
    "replicas_peak",
    "rerouted_requests",
    "preemptions",
)


def _fleet_golden(scenario: str) -> Dict[str, Scalar]:
    from .engine import run_sweep
    from .spec import SweepSpec

    spec = SweepSpec.make(
        name=f"golden-fleet-{scenario}",
        evaluator="fleet-scenario",
        axes={"router": ("round-robin", "least-tokens")},
        base={"scenario": scenario, "seed": 0},
    )
    result = run_sweep(spec)
    metrics: Dict[str, Scalar] = {}
    for point, row in result:
        for key in _FLEET_GOLDEN_METRICS:
            metrics[f"{point['router']}.{key}"] = row[key]
    return metrics


def _register_fleet_goldens() -> None:
    for scenario in ("steady-chat", "bursty-long", "unreliable"):
        GOLDEN_REGISTRY[f"fleet-{scenario}"] = GoldenDefinition(
            name=f"fleet-{scenario}",
            compute=(lambda s: (lambda: _fleet_golden(s)))(scenario),
            description=(
                f"fleet TTFT/goodput/GPU-hours of the {scenario!r} scenario "
                "under round-robin and least-tokens routing"
            ),
        )


_register_fleet_goldens()


def _fleet_prefix_golden() -> Dict[str, Scalar]:
    """Fleet-level prefix A/B: routing, autoscaling and caching composed."""
    from .engine import run_sweep
    from .spec import SweepSpec

    spec = SweepSpec.make(
        name="golden-fleet-prefix",
        evaluator="fleet-scenario",
        axes={"prefix_caching": (False, True)},
        base={"scenario": "shared-system-prompt", "seed": 0},
    )
    result = run_sweep(spec)
    metrics: Dict[str, Scalar] = {}
    keys = ("ttft_p50", "ttft_p99", "goodput_fraction", "gpu_hours", "replicas_peak",
            "prefix_hit_rate", "prefix_evictions", "preemptions")
    for point, row in result:
        label = "cached" if point["prefix_caching"] else "uncached"
        for key in keys:
            metrics[f"{label}.{key}"] = row[key]
    return metrics


GOLDEN_REGISTRY["fleet-shared-system-prompt"] = GoldenDefinition(
    name="fleet-shared-system-prompt",
    compute=_fleet_prefix_golden,
    description=(
        "fleet shared-system-prompt scenario with prefix caching on/off: "
        "TTFT, GPU-hours and peak replicas under the rate autoscaler's "
        "effective-capacity signal"
    ),
)
