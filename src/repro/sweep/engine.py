"""The sweep engine: expand, prune, memoize, fan out, collect.

:func:`run_sweep` turns a :class:`~repro.sweep.spec.SweepSpec` into a
:class:`SweepResult` in four stages:

1. **expand** the declarative spec into its grid of points;
2. **prune** points the evaluator's memory-model early-out can reject
   without running the expensive evaluation;
3. **memoize** — look the remaining points up in the on-disk
   :class:`~repro.sweep.cache.SweepCache` (keyed by a stable hash of the
   point and invalidated by the code-constants fingerprint);
4. **evaluate** the cache misses, either in-process (``workers <= 1``) or
   fanned out over a ``ProcessPoolExecutor`` with chunked dispatch so each
   worker amortises its warm-up (module imports, ``lru_cache`` fills) over
   many points.

The same module hosts :func:`argmax_stream`, the shared serial
"evaluate-and-keep-the-best" primitive that
:func:`repro.parallel.search.grid_search` and the system models' grid
searches reduce to.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from .cache import SweepCache
from .spec import Scalar, SweepSpec, point_key

__all__ = ["SweepStats", "SweepResult", "run_sweep", "argmax_stream"]

T = TypeVar("T")


def argmax_stream(
    items: Iterable[T],
    objective: Callable[[T], Optional[float]],
) -> Tuple[Optional[T], float]:
    """Evaluate ``objective`` over ``items`` and keep the best.

    ``None`` marks an infeasible item.  Returns ``(best_item, best_value)``,
    or ``(None, -inf)`` when every item is infeasible or the stream is empty.
    Ties keep the first item seen, so enumeration order is deterministic.
    """
    best_item: Optional[T] = None
    best_value = float("-inf")
    for item in items:
        value = objective(item)
        if value is None:
            continue
        if value > best_value:
            best_item, best_value = item, value
    return best_item, best_value


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepStats:
    """Where each point's result came from, plus the wall-clock cost."""

    total: int
    pruned: int
    cache_hits: int
    evaluated: int
    workers: int
    elapsed_seconds: float


@dataclass
class SweepResult:
    """Points and results of one sweep run, in expansion order."""

    spec: SweepSpec
    points: List[Dict[str, Scalar]]
    results: List[Dict[str, Scalar]]
    stats: SweepStats = field(
        default_factory=lambda: SweepStats(0, 0, 0, 0, 0, 0.0)
    )

    def __iter__(self):
        return iter(zip(self.points, self.results))

    def metric_names(self) -> List[str]:
        """Union of result keys, sorted so cold and cached runs render alike."""
        names = set()
        for result in self.results:
            names.update(result)
        return sorted(names)

    def to_text(self) -> str:
        from ..analysis.report import render_table

        def fmt(value: Scalar) -> str:
            if isinstance(value, bool) or not isinstance(value, float):
                return str(value)
            return f"{value:.4g}"

        axis_names = self.spec.axis_names
        metrics = self.metric_names()
        rows = [
            tuple(fmt(point.get(a)) for a in axis_names)
            + tuple(fmt(result.get(m, "-")) for m in metrics)
            for point, result in self
        ]
        s = self.stats
        title = (
            f"sweep {self.spec.name} — {s.total} points "
            f"({s.pruned} pruned, {s.cache_hits} cached, {s.evaluated} evaluated, "
            f"workers={s.workers}, {s.elapsed_seconds:.2f}s)"
        )
        return render_table(axis_names + metrics, rows, title=title)


# ---------------------------------------------------------------------------
# Worker entry point (module-level so ProcessPoolExecutor can pickle it)
# ---------------------------------------------------------------------------
def _evaluate_chunk(
    evaluator_name: str, points: List[Dict[str, Scalar]]
) -> List[Dict[str, Scalar]]:
    from .evaluators import get_evaluator

    evaluator = get_evaluator(evaluator_name)
    return [evaluator(point) for point in points]


def _chunked(items: List[T], chunk_size: int) -> List[List[T]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
    chunk_size: Optional[int] = None,
) -> SweepResult:
    """Run every point of ``spec`` and return the collected results.

    ``workers <= 1`` evaluates in-process (no pool overhead); larger values
    fan the cache-missing points out over that many worker processes in
    contiguous chunks (``chunk_size`` overrides the default of roughly four
    chunks per worker).  ``cache=None`` disables memoization entirely; pass a
    :class:`~repro.sweep.cache.SweepCache` to reuse and extend its entries.
    """
    from .evaluators import get_evaluator, get_pruner

    start = time.perf_counter()
    evaluator = get_evaluator(spec.evaluator)  # fail fast on unknown names
    pruner = get_pruner(spec.evaluator)
    points = spec.expand()
    results: List[Optional[Dict[str, Scalar]]] = [None] * len(points)

    # -------- prune --------------------------------------------------
    pruned = 0
    active_indices: List[int] = []
    for index, point in enumerate(points):
        verdict = pruner(point) if pruner is not None else None
        if verdict is not None:
            results[index] = verdict
            pruned += 1
        else:
            active_indices.append(index)

    # -------- memoize ------------------------------------------------
    cache_hits = 0
    pending: List[int] = []
    keys = {index: point_key(spec.evaluator, points[index]) for index in active_indices}
    cached = cache.load(spec) if cache is not None else {}
    for index in active_indices:
        hit = cached.get(keys[index])
        if hit is not None:
            results[index] = dict(hit)
            cache_hits += 1
        else:
            pending.append(index)

    # -------- evaluate -----------------------------------------------
    if pending:
        pending_points = [points[i] for i in pending]
        if workers <= 1:
            fresh = [evaluator(point) for point in pending_points]
        else:
            size = chunk_size or max(1, -(-len(pending_points) // (workers * 4)))
            chunks = _chunked(pending_points, size)
            with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
                futures = [
                    pool.submit(_evaluate_chunk, spec.evaluator, chunk)
                    for chunk in chunks
                ]
                fresh = [result for future in futures for result in future.result()]
        for index, result in zip(pending, fresh):
            results[index] = result
        if cache is not None:
            cache.store(
                spec, {keys[index]: results[index] for index in pending}
            )

    assert all(result is not None for result in results)
    stats = SweepStats(
        total=len(points),
        pruned=pruned,
        cache_hits=cache_hits,
        evaluated=len(pending),
        workers=workers,
        elapsed_seconds=time.perf_counter() - start,
    )
    return SweepResult(spec=spec, points=points, results=results, stats=stats)
