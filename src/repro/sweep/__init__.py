"""Parallel sweep engine and golden-metrics regression harness.

This package is the experiment-scaling layer of the reproduction: it turns
the serial "nested ``for`` loops over configurations" pattern used by the
grid searches, the Figure 12 end-to-end comparison and the serving
comparisons into one declarative, cacheable, parallelisable machine.

Sweep specs
-----------
A sweep is declared, not coded: a :class:`~repro.sweep.spec.SweepSpec` names
its *axes* (each a list of JSON scalars — model names, GPU counts, context
lengths, scheme or scenario names), a *base* of fixed parameters merged into
every point, and the registered *evaluator* that maps one expanded point to
a flat dict of metrics::

    spec = SweepSpec.make(
        name="fig12",
        evaluator="fig12-cell",
        axes={"model": ("llama-70b",), "num_gpus": (128,),
              "sequence_k": (64, 256), "system": ("megatron-lm", "slimpipe")},
        base={"tokens_per_iteration": 4 * 1024 * 1024},
    )
    result = run_sweep(spec, workers=4, cache=SweepCache())

Ready-made specs live in :data:`~repro.sweep.registry.SWEEP_REGISTRY`
(``fig12``, ``scheme-context``, ``serving``) and are runnable from the CLI:
``python -m repro.cli sweep run --name fig12 --workers 4``.

Execution
---------
:func:`~repro.sweep.engine.run_sweep` expands the spec, *prunes* points whose
model states provably exceed the cluster's aggregate memory (the memory-model
early-out), resolves the rest against the on-disk cache, and evaluates the
misses — in-process for ``workers <= 1``, otherwise over a
``ProcessPoolExecutor`` with chunked dispatch.

Caching
-------
Results are memoized per spec name as JSON under
``$REPRO_SWEEP_CACHE_DIR`` (default ``~/.cache/repro-sweep``), keyed by a
stable hash of (evaluator, point) and stamped with the
:func:`~repro.sweep.cache.code_fingerprint` over every modelled constant
(GPU spec, estimator settings, model registry, scheme formulas, serving
scenarios).  Changing any of those constants changes the fingerprint and
invalidates the file wholesale; ``--no-cache`` (or ``cache=None``) bypasses
memoization entirely.

Goldens
-------
:mod:`repro.sweep.golden` pins the headline numbers of every figure/table
and the serving scenarios' SLO metrics as JSON files under ``tests/goldens``;
``pytest tests -k golden`` recomputes and diffs them within tolerance, and
``python -m repro.cli sweep golden --regenerate`` rewrites them after an
intentional change.
"""

from .cache import SweepCache, code_fingerprint, default_cache_dir
from .engine import SweepResult, SweepStats, argmax_stream, run_sweep
from .golden import (
    GOLDEN_REGISTRY,
    GoldenCheck,
    GoldenDefinition,
    available_goldens,
    check_golden,
    get_golden_definition,
    goldens_dir,
    record_all_goldens,
    record_golden,
)
from .registry import SWEEP_REGISTRY, available_sweeps, get_sweep_spec
from .spec import SweepAxis, SweepSpec, point_key, stable_hash

__all__ = [
    "SweepAxis",
    "SweepSpec",
    "SweepCache",
    "SweepResult",
    "SweepStats",
    "SWEEP_REGISTRY",
    "GOLDEN_REGISTRY",
    "GoldenCheck",
    "GoldenDefinition",
    "argmax_stream",
    "available_goldens",
    "available_sweeps",
    "check_golden",
    "code_fingerprint",
    "get_golden_definition",
    "default_cache_dir",
    "get_sweep_spec",
    "goldens_dir",
    "point_key",
    "record_all_goldens",
    "record_golden",
    "run_sweep",
    "stable_hash",
]
