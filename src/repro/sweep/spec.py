"""Declarative sweep specifications.

A :class:`SweepSpec` names a grid of experiment points — the Cartesian
product of its :class:`SweepAxis` values merged over a ``base`` of fixed
parameters — together with the registered *evaluator* that turns one point
into a flat dictionary of metrics.  Points and results are deliberately
restricted to JSON scalars so that

* a point can be shipped to a ``ProcessPoolExecutor`` worker by name instead
  of by closure (evaluators are looked up in the worker),
* a point can be hashed stably (:func:`stable_hash`) for the on-disk result
  cache, and
* a whole sweep can be rendered, diffed and pinned as golden metrics.

Only the standard library is imported here: the spec layer sits below every
other part of the reproduction so the search, analysis and CLI layers can all
build on it without import cycles.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Scalar",
    "SweepAxis",
    "SweepSpec",
    "canonical_json",
    "stable_hash",
    "point_key",
]

#: The value types a sweep point may carry (JSON scalars).
Scalar = Union[str, int, float, bool, None]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def canonical_json(obj: object) -> str:
    """Canonical JSON rendering: sorted keys, no whitespace, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def stable_hash(obj: object) -> str:
    """Stable SHA-256 hex digest of ``obj``'s canonical JSON rendering."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def point_key(evaluator: str, point: Mapping[str, Scalar]) -> str:
    """Cache key of one sweep point: hash of (evaluator, point)."""
    return stable_hash({"evaluator": evaluator, "point": dict(point)})


def _check_scalar(owner: str, name: str, value: object) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise ValueError(
            f"{owner} {name!r} must hold JSON scalars, got {type(value).__name__}"
        )


@dataclass(frozen=True)
class SweepAxis:
    """One named dimension of a sweep and the values it takes."""

    name: str
    values: Tuple[Scalar, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.name!r} must have at least one value")
        seen = set()
        for value in self.values:
            _check_scalar("axis", self.name, value)
            if value in seen:
                raise ValueError(f"axis {self.name!r} repeats value {value!r}")
            seen.add(value)


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative grid of experiment points.

    ``axes`` vary across points (outer axes vary slowest, mirroring nested
    ``for`` loops); ``base`` parameters are merged verbatim into every point.
    ``evaluator`` names a function registered in
    :mod:`repro.sweep.evaluators`.
    """

    name: str
    evaluator: str
    axes: Tuple[SweepAxis, ...]
    base: Tuple[Tuple[str, Scalar], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if not self.evaluator:
            raise ValueError("spec evaluator must be non-empty")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in spec {self.name!r}: {names}")
        for key, value in self.base:
            _check_scalar("base parameter", key, value)
            if key in names:
                raise ValueError(
                    f"base parameter {key!r} clashes with an axis of spec {self.name!r}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        name: str,
        evaluator: str,
        axes: Mapping[str, Sequence[Scalar]],
        base: Optional[Mapping[str, Scalar]] = None,
        description: str = "",
    ) -> "SweepSpec":
        """Convenience constructor from plain mappings (insertion-ordered)."""
        return cls(
            name=name,
            evaluator=evaluator,
            axes=tuple(SweepAxis(k, tuple(v)) for k, v in axes.items()),
            base=tuple((base or {}).items()),
            description=description,
        )

    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> List[str]:
        return [axis.name for axis in self.axes]

    @property
    def num_points(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def expand(self) -> List[Dict[str, Scalar]]:
        """Materialise every point: base parameters plus one value per axis."""
        base = dict(self.base)
        points: List[Dict[str, Scalar]] = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            point = dict(base)
            point.update(zip(self.axis_names, combo))
            points.append(point)
        return points

    def describe(self) -> str:
        """Human-readable axis listing (the ``sweep list-axes`` rendering)."""
        lines = [f"{self.name}: evaluator={self.evaluator}, {self.num_points} points"]
        if self.description:
            lines.append(f"  {self.description}")
        for axis in self.axes:
            values = ", ".join(str(v) for v in axis.values)
            lines.append(f"  axis {axis.name} ({len(axis.values)}): {values}")
        for key, value in self.base:
            lines.append(f"  base {key} = {value}")
        return "\n".join(lines)
