"""Named sweep specifications (the ``sweep run --name ...`` registry).

Each entry is a ready-to-run :class:`~repro.sweep.spec.SweepSpec` covering
one of the paper-scale grids:

``fig12``
    The end-to-end Figure 12 grid: model x GPU count x context length x
    training system, each cell a full hybrid-parallelism grid search.
``scheme-context``
    The Figures 13/14 sweep: every Table 2 pipeline scheme across context
    lengths at the fixed Section 6.6 operating point.
``serving``
    Every registered serving scenario under both deployments (the serving
    comparison table).
``fleet``
    Representative fleet scenarios under the load-oblivious and token-aware
    routers (the fleet comparison table's core grid).
``prefix-cache``
    The shared-prefix scenario families with prefix caching A/B'd on and
    off (the prefix-cache comparison table's grid).
"""

from __future__ import annotations

from typing import Dict, List

from ..constants import UnknownNameError
from .spec import SweepSpec

__all__ = ["SWEEP_REGISTRY", "get_sweep_spec", "available_sweeps"]

#: The Table 2 schemes the scheme-comparison experiments evaluate.
_PAPER_SCHEMES = ("zb-v", "v-half", "1f1b", "interleaved-1f1b", "slimpipe")

_SERVING_SCENARIOS = (
    "chat",
    "rag-long-prompt",
    "summarize-512k",
    "bursty-long",
    "mixed-fleet",
    "shared-system-prompt",
    "rag-shared-corpus",
    "agentic-prefix-tree",
)

_PREFIX_SCENARIOS = (
    "shared-system-prompt",
    "rag-shared-corpus",
    "agentic-prefix-tree",
)


SWEEP_REGISTRY: Dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec.make(
            name="fig12",
            evaluator="fig12-cell",
            axes={
                "model": ("llama-70b", "mixtral-8x7b"),
                "num_gpus": (128, 256),
                "sequence_k": (64, 128, 256, 512),
                "system": ("deepspeed", "megatron-lm", "slimpipe"),
            },
            base={"tokens_per_iteration": 4 * 1024 * 1024},
            description="end-to-end MFU grid (Figure 12): per-cell grid search",
        ),
        SweepSpec.make(
            name="scheme-context",
            evaluator="scheme-point",
            axes={
                "scheme": _PAPER_SCHEMES,
                "sequence_k": (32, 64, 128, 256, 512),
            },
            base={
                "model": "llama-13b",
                "tensor_parallel": 8,
                "pipeline_parallel": 8,
                "batch_sequences": 4,
                "virtual_stages": 5,
                "slices_per_stage": 1,
            },
            description="PP scheme comparison across context lengths (Figures 13/14)",
        ),
        SweepSpec.make(
            name="serving",
            evaluator="serving-scenario",
            axes={
                "scenario": _SERVING_SCENARIOS,
                "mode": ("colocated", "disaggregated"),
            },
            base={"seed": 0},
            description="serving scenarios under both deployments (TTFT/TPOT/goodput)",
        ),
        SweepSpec.make(
            name="fleet",
            evaluator="fleet-scenario",
            axes={
                "scenario": ("steady-chat", "bursty-long", "unreliable"),
                "router": ("round-robin", "least-tokens"),
            },
            base={"seed": 0},
            description="fleet scenarios x routing policies (goodput/TTFT/GPU-hours)",
        ),
        SweepSpec.make(
            name="prefix-cache",
            evaluator="serving-scenario",
            axes={
                "scenario": _PREFIX_SCENARIOS,
                "prefix_caching": (False, True),
            },
            base={"seed": 0, "mode": "colocated"},
            description="shared-prefix scenarios, caching A/B (TTFT/prefill-FLOPs saved)",
        ),
    )
}


def available_sweeps() -> List[str]:
    return sorted(SWEEP_REGISTRY)


def get_sweep_spec(name: str) -> SweepSpec:
    """Look up a named sweep, listing the valid names on a miss."""
    try:
        return SWEEP_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown sweep {name!r}; available: {available_sweeps()}"
        ) from None
