"""Model-driven cost and memory providers for the pipeline simulator.

The simulation engine and the memory tracker are deliberately agnostic about
*what* a pass costs; this module supplies the two concrete providers used
throughout the evaluation:

* :class:`ModelCostProvider` prices every pass of a schedule (baseline or
  SlimPipe) from the FLOPs model, the GPU cost model, and the communication
  model — including causal-attention asymmetry across slices, activation
  recomputation, the output-layer GEMM, SlimPipe's attention context
  exchange, and vocabulary parallelism;
* :class:`ModelActivationAccountant` does the same for bytes: per-pass stored
  activations (with the KV cache and the fp32 logits), transient
  recomputation buffers, and the per-device model-state base.

Both accept either microbatch-level passes (``slice_index is None``) or
slice-level passes, so one implementation serves every schedule compared in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.context_exchange import exchange_volume_per_microbatch
from ..core.slicing import SliceSpec, uniform_slices
from ..constants import DType
from ..hardware.comm import CommModel
from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.costs import CostModel, PassKind
from ..model.flops import FlopsBreakdown, layer_forward_flops, output_layer_flops
from ..model.memory import (
    ADAM_MIXED_PRECISION,
    OptimizerSpec,
    RecomputeMode,
    activation_bytes_per_token_per_layer,
    kv_cache_bytes_per_token_per_layer,
    logits_bytes_per_token,
    model_state_bytes_per_device,
)
from ..parallel.config import ParallelConfig
from ..schedules.base import Pass, PipelineSchedule

__all__ = [
    "PipelineModelSpec",
    "ModelCostProvider",
    "ModelActivationAccountant",
    "spec_for_schedule",
]


@dataclass(frozen=True)
class PipelineModelSpec:
    """Everything the providers need to price one pipeline's schedule.

    Attributes
    ----------
    model:
        Transformer architecture.
    parallel:
        Hybrid-parallelism configuration (``t``, ``c``, ``p``, ``v`` …).
    sequence_length:
        Tokens of one microbatch's sequence *before* context parallelism.
    num_stages:
        Total pipeline stages of the schedule (``p * v``).
    num_slices:
        Slices per sequence (1 for microbatch-level schedules).
    recompute:
        Activation rematerialisation policy applied to every layer.
    context_exchange:
        Apply SlimPipe's attention context exchange (balances the attention
        cost across concurrently executing slices and adds the bounded
        exchange traffic of Eq. 2).
    vocab_parallel:
        Shard the output layer and its logits across pipeline devices.
    exchange_exposed_fraction:
        Fraction of the context-exchange traffic *not* hidden behind compute
        (0 with the early key-value exchange optimisation of Section 5, 1 in
        the ablation without it).
    dtype:
        Activation datatype.
    """

    model: ModelConfig
    parallel: ParallelConfig
    sequence_length: int
    num_stages: int
    num_slices: int = 1
    recompute: RecomputeMode = RecomputeMode.NONE
    context_exchange: bool = False
    vocab_parallel: bool = False
    exchange_exposed_fraction: float = 0.0
    dtype: DType = DType.BF16
    optimizer: OptimizerSpec = ADAM_MIXED_PRECISION

    def __post_init__(self) -> None:
        if self.sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        if self.num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if self.num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        if not 0.0 <= self.exchange_exposed_fraction <= 1.0:
            raise ValueError("exchange_exposed_fraction must be in [0, 1]")
        if self.model.num_layers % self.num_stages != 0:
            raise ValueError(
                f"{self.model.num_layers} layers are not divisible into "
                f"{self.num_stages} stages"
            )

    # ------------------------------------------------------------------
    @property
    def layers_per_stage(self) -> int:
        return self.model.num_layers // self.num_stages

    @property
    def device_sequence_length(self) -> int:
        """Per-device share of the sequence under context parallelism."""
        c = self.parallel.context_parallel_size
        if self.sequence_length % c != 0:
            raise ValueError(
                f"sequence length {self.sequence_length} not divisible by CP size {c}"
            )
        return self.sequence_length // c

    def slices(self) -> List[SliceSpec]:
        """Uniform slices of the per-device sequence."""
        return uniform_slices(self.device_sequence_length, self.num_slices)

    def slice_of(self, work: Pass) -> SliceSpec:
        """The sequence slice a pass operates on (whole sequence when unsliced)."""
        if work.slice_index is None:
            return SliceSpec(index=0, start=0, length=self.device_sequence_length)
        return self.slices()[work.slice_index]

    def is_first_stage(self, work: Pass) -> bool:
        return work.stage == 0

    def is_last_stage(self, work: Pass) -> bool:
        return work.stage == self.num_stages - 1

    @property
    def vocab_shards(self) -> int:
        return self.parallel.pipeline_parallel_size if self.vocab_parallel else 1


class ModelCostProvider:
    """Price passes of a pipeline schedule in seconds.

    Implements the :class:`~repro.sim.engine.PassCostProvider` protocol.
    """

    def __init__(
        self,
        spec: PipelineModelSpec,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        comm_model: Optional[CommModel] = None,
        include_pipeline_comm: bool = True,
    ):
        self.spec = spec
        self.cluster = cluster
        self.cost_model = cost_model or CostModel(cluster.gpu)
        self.comm_model = comm_model or CommModel(cluster)
        self.include_pipeline_comm = include_pipeline_comm
        self._pipeline_domain = self.comm_model.pipeline_domain(
            spec.parallel.pipeline_parallel_size, spec.parallel.ranks_per_pipeline_stage
        )
        self._slices = spec.slices()
        self._mean_attention_units = (
            sum(s.attention_units() for s in self._slices) / len(self._slices)
        )

    # ------------------------------------------------------------------
    # FLOPs of one pass
    # ------------------------------------------------------------------
    def _layer_flops(self, work: Pass) -> FlopsBreakdown:
        spec = self.spec
        sl = spec.slice_of(work)
        flops = layer_forward_flops(spec.model, sl.length, sl.kv_offset)
        if spec.context_exchange and work.slice_index is not None and len(self._slices) > 1:
            # Context exchange equalises the attention workload across the
            # concurrently executing slices; the per-microbatch total is
            # conserved, so each slice carries the mean attention cost
            # (Section 4.2.2: residual imbalance is at most one KV slice).
            own_units = sl.attention_units()
            if own_units > 0:
                scale = self._mean_attention_units / own_units
                flops = FlopsBreakdown(
                    linear=flops.linear, attention=flops.attention * scale
                )
        flops = flops * spec.layers_per_stage
        return flops * (1.0 / spec.parallel.tensor_parallel_size)

    def _output_layer_flops(self, work: Pass) -> FlopsBreakdown:
        spec = self.spec
        sl = spec.slice_of(work)
        flops = output_layer_flops(spec.model, sl.length)
        return flops * (
            1.0 / (spec.parallel.tensor_parallel_size * spec.vocab_shards)
        )

    def _recompute_flops(self, work: Pass) -> FlopsBreakdown:
        """Extra forward FLOPs re-executed during this backward pass."""
        spec = self.spec
        if spec.recompute is RecomputeMode.NONE:
            return FlopsBreakdown()
        sl = spec.slice_of(work)
        if spec.recompute is RecomputeMode.FULL:
            flops = layer_forward_flops(spec.model, sl.length, sl.kv_offset)
        else:  # SELECTIVE: re-run the gate and up projections (2 GEMMs) + SwiGLU
            h = spec.model.hidden_size
            ffn = spec.model.ffn_hidden_size * spec.model.active_experts
            flops = FlopsBreakdown(linear=4.0 * h * ffn * sl.length)
        flops = flops * spec.layers_per_stage
        return flops * (1.0 / spec.parallel.tensor_parallel_size)

    # ------------------------------------------------------------------
    # PassCostProvider protocol
    # ------------------------------------------------------------------
    def duration(self, work: Pass) -> float:
        spec = self.spec
        sl = spec.slice_of(work)
        flops = self._layer_flops(work)
        time = self.cost_model.time_of(flops, work.kind, tokens=sl.length)

        if spec.is_last_stage(work):
            out_flops = self._output_layer_flops(work)
            time += self.cost_model.time_of(
                out_flops, work.kind, tokens=sl.length, include_overhead=False
            )
            if spec.vocab_parallel and spec.parallel.pipeline_parallel_size > 1:
                hidden_bytes = (
                    sl.length
                    * spec.model.hidden_size
                    * spec.dtype.bytes
                    / spec.parallel.tensor_parallel_size
                )
                time += self.comm_model.broadcast_time(hidden_bytes, self._pipeline_domain)
                time += self.comm_model.scalar_sync_time(self._pipeline_domain)

        if work.is_backward and spec.recompute is not RecomputeMode.NONE:
            recompute = self._recompute_flops(work)
            time += self.cost_model.time_of(
                recompute, PassKind.FORWARD, tokens=sl.length, include_overhead=False
            )

        if (
            spec.context_exchange
            and work.slice_index is not None
            and spec.parallel.pipeline_parallel_size > 1
            and spec.exchange_exposed_fraction > 0.0
        ):
            time += self._exposed_exchange_time(work)
        return time

    def _exposed_exchange_time(self, work: Pass) -> float:
        """Exchange traffic charged to this pass when not overlapped."""
        spec = self.spec
        per_microbatch = exchange_volume_per_microbatch(
            spec.model,
            spec.device_sequence_length,
            spec.num_slices,
            spec.parallel.pipeline_parallel_size,
            spec.parallel.tensor_parallel_size,
            spec.dtype,
        )
        # The volume formula already covers forward-pass traffic for all n
        # slices on one device; backward reuses the same buffers, so spread
        # the volume over the n forward + n backward slice passes equally.
        per_pass = per_microbatch / (2.0 * spec.num_slices * spec.parallel.virtual_pipeline_size)
        intra = spec.parallel.ranks_per_pipeline_stage < self.cluster.gpus_per_node
        time = self.comm_model.p2p_time(per_pass, intra_node=intra)
        return time * spec.exchange_exposed_fraction

    def comm_delay(self, producer: Pass, consumer: Pass) -> float:
        if not self.include_pipeline_comm or producer.device == consumer.device:
            return 0.0
        spec = self.spec
        sl = spec.slice_of(consumer)
        boundary_bytes = (
            sl.length
            * spec.model.hidden_size
            * spec.dtype.bytes
            / spec.parallel.tensor_parallel_size
        )
        intra = (
            spec.parallel.ranks_per_pipeline_stage * spec.parallel.pipeline_parallel_size
            <= self.cluster.gpus_per_node
        )
        return self.comm_model.p2p_time(boundary_bytes, intra_node=intra)


class ModelActivationAccountant:
    """Account stored / transient activation bytes for every pass.

    Implements the :class:`~repro.sim.memory_tracker.ActivationAccountant`
    protocol.  The fp32 logits of the loss are attributed to the last-stage
    forward pass (divided by the number of vocabulary shards when vocabulary
    parallelism is enabled).
    """

    def __init__(
        self,
        spec: PipelineModelSpec,
        cluster: ClusterTopology,
        include_model_states: bool = True,
        keep_kv_cache: bool = True,
    ):
        self.spec = spec
        self.cluster = cluster
        self.include_model_states = include_model_states
        self.keep_kv_cache = keep_kv_cache

    # ------------------------------------------------------------------
    def _per_token_layer_bytes(self) -> float:
        spec = self.spec
        return activation_bytes_per_token_per_layer(
            spec.model,
            recompute=spec.recompute,
            tensor_parallel_size=spec.parallel.tensor_parallel_size,
            dtype=spec.dtype,
        )

    def _kv_bytes_per_token_layer(self) -> float:
        spec = self.spec
        return kv_cache_bytes_per_token_per_layer(
            spec.model,
            tensor_parallel_size=spec.parallel.tensor_parallel_size,
            dtype=spec.dtype,
        )

    def stored_bytes(self, work: Pass) -> float:
        if work.kind is not PassKind.FORWARD:
            return 0.0
        spec = self.spec
        sl = spec.slice_of(work)
        per_layer = self._per_token_layer_bytes()
        stored = per_layer * spec.layers_per_stage * sl.length
        if (
            self.keep_kv_cache
            and spec.recompute is RecomputeMode.FULL
            and work.slice_index is not None
        ):
            # Under full recomputation the saved activations no longer include
            # keys/values, but SlimPipe keeps the KV cache alive for later
            # slices (Section 4.1.2), so account it separately.
            stored += self._kv_bytes_per_token_layer() * spec.layers_per_stage * sl.length
        if spec.is_last_stage(work):
            stored += sl.length * logits_bytes_per_token(
                spec.model,
                tensor_parallel_size=spec.parallel.tensor_parallel_size,
                vocab_parallel_size=spec.vocab_shards,
            )
        return stored

    def transient_bytes(self, work: Pass) -> float:
        spec = self.spec
        sl = spec.slice_of(work)
        if work.is_backward and spec.recompute is not RecomputeMode.NONE:
            # Recomputation materialises one layer block's worth of full
            # activations while the backward runs.
            full = activation_bytes_per_token_per_layer(
                spec.model,
                recompute=RecomputeMode.NONE,
                tensor_parallel_size=spec.parallel.tensor_parallel_size,
                dtype=spec.dtype,
            )
            return full * sl.length
        return 0.0

    def base_bytes(self, device: int) -> float:
        if not self.include_model_states:
            return 0.0
        spec = self.spec
        states = model_state_bytes_per_device(
            spec.model,
            tensor_parallel_size=spec.parallel.tensor_parallel_size,
            pipeline_parallel_size=spec.parallel.pipeline_parallel_size,
            expert_parallel_size=spec.parallel.expert_parallel_size,
            data_parallel_size=spec.parallel.data_parallel_size,
            pipeline_rank=device,
            vocab_parallel=spec.vocab_parallel,
            optimizer=spec.optimizer,
        )
        return states.total


def spec_for_schedule(
    schedule: PipelineSchedule,
    model: ModelConfig,
    parallel: ParallelConfig,
    sequence_length: int,
    **kwargs,
) -> PipelineModelSpec:
    """Convenience: build a :class:`PipelineModelSpec` matching a schedule's shape."""
    return PipelineModelSpec(
        model=model,
        parallel=parallel,
        sequence_length=sequence_length,
        num_stages=schedule.num_stages,
        num_slices=schedule.num_slices,
        **kwargs,
    )
