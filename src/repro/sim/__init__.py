"""Discrete-event pipeline simulator: engine, timelines, memory and metrics."""

from .engine import DeadlockError, PassCostProvider, SimulationEngine, UniformCostProvider
from .memory_tracker import (
    ActivationAccountant,
    DeviceMemoryProfile,
    MemoryTracker,
    SimpleAccountant,
)
from .metrics import IterationMetrics, iteration_metrics, mfu
from .providers import (
    ModelActivationAccountant,
    ModelCostProvider,
    PipelineModelSpec,
    spec_for_schedule,
)
from .timeline import Timeline, TimelineSpan
from .trace import to_chrome_trace, utilization_summary, write_chrome_trace

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "utilization_summary",
    "PipelineModelSpec",
    "ModelCostProvider",
    "ModelActivationAccountant",
    "spec_for_schedule",
    "SimulationEngine",
    "UniformCostProvider",
    "PassCostProvider",
    "DeadlockError",
    "Timeline",
    "TimelineSpan",
    "MemoryTracker",
    "SimpleAccountant",
    "ActivationAccountant",
    "DeviceMemoryProfile",
    "IterationMetrics",
    "iteration_metrics",
    "mfu",
]
