"""Discrete-event execution of a pipeline schedule.

Every device executes its pass list strictly in order; a pass starts as soon
as (a) the device is free and (b) each structural dependency has finished and
its cross-device transfer (if any) has arrived.  The engine therefore turns a
:class:`~repro.schedules.base.PipelineSchedule` plus a cost provider into a
:class:`~repro.sim.timeline.Timeline`, from which bubbles, makespans and MFU
are computed.

The engine is deliberately conservative: if the schedule can never make
progress (a dependency appears *behind* a blocked pass), it raises
:class:`DeadlockError` rather than silently reordering work — this doubles as
an executability check for every schedule builder in the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

from ..schedules.base import Pass, PipelineSchedule
from .timeline import Timeline, TimelineSpan

__all__ = ["PassCostProvider", "UniformCostProvider", "DeadlockError", "SimulationEngine"]


class DeadlockError(RuntimeError):
    """The schedule cannot be executed in the given per-device order."""


class PassCostProvider(Protocol):
    """Durations and transfer delays the engine needs to time a schedule."""

    def duration(self, work: Pass) -> float:
        """Compute time of ``work`` on its device, in seconds."""
        ...

    def comm_delay(self, producer: Pass, consumer: Pass) -> float:
        """Transfer delay between a dependency and its consumer, in seconds."""
        ...


class UniformCostProvider:
    """Simple cost provider: fixed durations per pass kind, optional comm delay.

    Useful for structural tests and for reproducing "theoretical" bubble
    fractions where every pass costs one unit.
    """

    def __init__(
        self,
        forward: float = 1.0,
        backward: float = 2.0,
        backward_input: Optional[float] = None,
        backward_weight: Optional[float] = None,
        comm: float = 0.0,
    ):
        self.forward = forward
        self.backward = backward
        self.backward_input = backward_input if backward_input is not None else backward / 2
        self.backward_weight = backward_weight if backward_weight is not None else backward / 2
        self.comm = comm

    def duration(self, work: Pass) -> float:
        kind = work.kind.value
        if kind == "F":
            return self.forward
        if kind == "B":
            return self.backward
        if kind == "Bi":
            return self.backward_input
        return self.backward_weight

    def comm_delay(self, producer: Pass, consumer: Pass) -> float:
        return self.comm if producer.device != consumer.device else 0.0


class SimulationEngine:
    """Execute a schedule against a cost provider and produce a timeline."""

    def __init__(self, schedule: PipelineSchedule, costs: PassCostProvider):
        self.schedule = schedule
        self.costs = costs

    def run(self) -> Timeline:
        schedule = self.schedule
        orders = schedule.device_orders
        num_devices = schedule.num_devices
        pointers = [0] * num_devices
        device_time = [0.0] * num_devices
        finished: Dict[Tuple, Tuple[float, Pass]] = {}
        timeline = Timeline(num_devices=num_devices)
        remaining = schedule.total_passes()

        while remaining > 0:
            progressed = False
            for device in range(num_devices):
                while pointers[device] < len(orders[device]):
                    work = orders[device][pointers[device]]
                    ready_time = device_time[device]
                    blocked = False
                    for dep in schedule.dependencies(work):
                        key = (dep.kind, dep.work_key)
                        if key not in finished:
                            blocked = True
                            break
                        dep_finish, dep_pass = finished[key]
                        ready_time = max(
                            ready_time, dep_finish + self.costs.comm_delay(dep_pass, work)
                        )
                    if blocked:
                        break
                    start = ready_time
                    end = start + self.costs.duration(work)
                    timeline.add(TimelineSpan(device=device, work=work, start=start, end=end))
                    finished[(work.kind, work.work_key)] = (end, work)
                    device_time[device] = end
                    pointers[device] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                stuck = [
                    orders[d][pointers[d]].describe()
                    for d in range(num_devices)
                    if pointers[d] < len(orders[d])
                ]
                raise DeadlockError(
                    "schedule cannot make progress; blocked passes: " + ", ".join(stuck)
                )
        return timeline
