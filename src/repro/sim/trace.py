"""Timeline export: Chrome-trace JSON and per-device utilisation summaries.

The simulator's :class:`~repro.sim.timeline.Timeline` already renders a coarse
ASCII Gantt chart; this module adds two machine-readable exports used by the
examples and handy when debugging schedules:

* :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto JSON format
  (one row per pipeline device, one complete event per pass), so a simulated
  SlimPipe iteration can be inspected in a real trace viewer;
* :func:`utilization_summary` — per-device busy/idle accounting as plain
  dictionaries for quick reporting.

The trace-event JSON dialect itself (metadata / complete / counter event
shapes, the ``traceEvents`` container) lives in :mod:`repro.obs.chrome`,
shared with the serving/fleet event-stream exporter
(:mod:`repro.obs.trace`).
"""

from __future__ import annotations

from typing import Dict, List

from ..obs import chrome
from .timeline import Timeline

__all__ = ["to_chrome_trace", "write_chrome_trace", "utilization_summary"]

_KIND_NAMES = {
    "F": "forward",
    "B": "backward",
    "Bi": "backward-input",
    "Bw": "backward-weight",
}


def to_chrome_trace(timeline: Timeline, time_unit_us: float = 1e6) -> Dict:
    """Convert a timeline into the Chrome trace-event JSON structure.

    ``time_unit_us`` scales simulated seconds into trace microseconds
    (the default maps 1 simulated second to 1 trace second).
    """
    if time_unit_us <= 0:
        raise ValueError("time_unit_us must be positive")
    events: List[Dict] = []
    for device in range(timeline.num_devices):
        events.append(
            chrome.thread_name_event(0, device, f"pipeline device {device}")
        )
    for span in timeline.spans:
        work = span.work
        kind = _KIND_NAMES.get(work.kind.value, work.kind.value)
        name = f"{kind} mb{work.microbatch} stage{work.stage}"
        if work.slice_index is not None:
            name += f" slice{work.slice_index}"
        events.append(
            chrome.complete_event(
                name,
                0,
                span.device,
                span.start,
                span.duration,
                time_unit_us,
                cat=kind,
                args={
                    "microbatch": work.microbatch,
                    "stage": work.stage,
                    "slice": work.slice_index,
                },
            )
        )
    return chrome.trace_container(events)


def write_chrome_trace(timeline: Timeline, path: str, time_unit_us: float = 1e6) -> str:
    """Serialise :func:`to_chrome_trace` to ``path`` and return the path."""
    return chrome.write_trace(to_chrome_trace(timeline, time_unit_us), path)


def utilization_summary(timeline: Timeline) -> List[Dict[str, float]]:
    """Per-device busy time, idle time and utilisation for one iteration."""
    makespan = timeline.makespan
    summary = []
    for device in range(timeline.num_devices):
        busy = timeline.busy_time(device)
        summary.append(
            {
                "device": device,
                "busy_seconds": busy,
                "idle_seconds": max(0.0, makespan - busy),
                "utilization": busy / makespan if makespan > 0 else 0.0,
                "passes": len(timeline.spans_on_device(device)),
            }
        )
    return summary
