"""Training-efficiency metrics derived from simulated timelines.

MFU (Model FLOPs Utilization) follows the paper's convention: the FLOPs the
model fundamentally requires for one iteration (forward + backward, no
recomputation) divided by the time-integrated peak throughput of every GPU
used.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import GPUSpec
from ..model.config import ModelConfig
from ..model.flops import model_flops_per_iteration

__all__ = ["IterationMetrics", "mfu", "iteration_metrics"]


def mfu(
    model_flops: float,
    iteration_time: float,
    num_gpus: int,
    gpu: GPUSpec,
) -> float:
    """Model FLOPs Utilization for one iteration."""
    if iteration_time <= 0:
        raise ValueError("iteration_time must be positive")
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    return model_flops / (iteration_time * num_gpus * gpu.peak_flops)


@dataclass(frozen=True)
class IterationMetrics:
    """Headline numbers of one simulated training iteration."""

    iteration_time: float
    model_flops: float
    num_gpus: int
    mfu: float
    tokens_per_iteration: int
    bubble_fraction: float
    peak_memory_bytes: float

    @property
    def tokens_per_second(self) -> float:
        return self.tokens_per_iteration / self.iteration_time

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / (1024**3)


def iteration_metrics(
    model: ModelConfig,
    gpu: GPUSpec,
    sequence_length: int,
    num_sequences: int,
    num_gpus: int,
    iteration_time: float,
    bubble_fraction: float,
    peak_memory_bytes: float,
) -> IterationMetrics:
    """Assemble :class:`IterationMetrics` from simulator outputs."""
    flops = model_flops_per_iteration(model, sequence_length, num_sequences)
    return IterationMetrics(
        iteration_time=iteration_time,
        model_flops=flops,
        num_gpus=num_gpus,
        mfu=mfu(flops, iteration_time, num_gpus, gpu),
        tokens_per_iteration=sequence_length * num_sequences,
        bubble_fraction=bubble_fraction,
        peak_memory_bytes=peak_memory_bytes,
    )
