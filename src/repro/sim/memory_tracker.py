"""Per-device activation memory tracking along a schedule.

The tracker replays each device's pass list in order and maintains the bytes
of live activation state: a forward pass *stores* bytes that stay resident
until the pass that completes that work item's backward *releases* them, and
any pass may additionally require *transient* working memory while it runs
(e.g. the recomputed activations of a fully-checkpointed layer block, or the
fp32 logits of the loss).  The resulting per-device peaks reproduce the
memory curves of Figures 1, 10 and 14 when fed the system accountants from
:mod:`repro.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Tuple

from ..model.costs import PassKind
from ..schedules.base import Pass, PipelineSchedule

__all__ = ["ActivationAccountant", "SimpleAccountant", "MemoryTracker", "DeviceMemoryProfile"]


class ActivationAccountant(Protocol):
    """Bytes stored / required by each pass, plus the per-device static base."""

    def stored_bytes(self, work: Pass) -> float:
        """Bytes a forward pass leaves resident until its release pass."""
        ...

    def transient_bytes(self, work: Pass) -> float:
        """Extra bytes live only while ``work`` executes."""
        ...

    def base_bytes(self, device: int) -> float:
        """Static per-device memory (model states, buffers)."""
        ...


class SimpleAccountant:
    """Uniform accountant used by structural tests: every forward stores 1 byte."""

    def __init__(self, stored: float = 1.0, transient: float = 0.0, base: float = 0.0):
        self._stored = stored
        self._transient = transient
        self._base = base

    def stored_bytes(self, work: Pass) -> float:
        return self._stored

    def transient_bytes(self, work: Pass) -> float:
        return self._transient

    def base_bytes(self, device: int) -> float:
        return self._base


@dataclass(frozen=True)
class DeviceMemoryProfile:
    """Memory summary of one device over an iteration."""

    device: int
    base_bytes: float
    peak_bytes: float
    peak_activation_bytes: float

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / (1024**3)


class MemoryTracker:
    """Replay a schedule and report per-device peak memory."""

    def __init__(self, schedule: PipelineSchedule, accountant: ActivationAccountant):
        self.schedule = schedule
        self.accountant = accountant

    def _release_kind(self) -> PassKind:
        return (
            PassKind.BACKWARD_WEIGHT
            if self.schedule.splits_backward
            else PassKind.BACKWARD
        )

    def profile(self) -> List[DeviceMemoryProfile]:
        release_kind = self._release_kind()
        profiles: List[DeviceMemoryProfile] = []
        for device, order in enumerate(self.schedule.device_orders):
            base = self.accountant.base_bytes(device)
            live = 0.0
            peak = 0.0
            stored: Dict[Tuple, float] = {}
            for work in order:
                transient = self.accountant.transient_bytes(work)
                peak = max(peak, live + transient)
                if work.kind is PassKind.FORWARD:
                    bytes_stored = self.accountant.stored_bytes(work)
                    stored[work.work_key] = bytes_stored
                    live += bytes_stored
                    peak = max(peak, live + transient)
                elif work.kind is release_kind:
                    live -= stored.pop(work.work_key, 0.0)
            profiles.append(
                DeviceMemoryProfile(
                    device=device,
                    base_bytes=base,
                    peak_bytes=base + peak,
                    peak_activation_bytes=peak,
                )
            )
        return profiles

    def peak_bytes(self) -> List[float]:
        """Per-device peak total memory in bytes."""
        return [p.peak_bytes for p in self.profile()]

    def peak_activation_bytes(self) -> List[float]:
        """Per-device peak activation memory in bytes (excluding the base)."""
        return [p.peak_activation_bytes for p in self.profile()]

    def max_peak_bytes(self) -> float:
        """Worst peak across devices — the number that decides OOM."""
        peaks = self.peak_bytes()
        return max(peaks) if peaks else 0.0
