"""Execution timelines produced by the pipeline simulator.

A :class:`Timeline` is a list of :class:`TimelineSpan` records — one per
executed pass — from which the quantities the paper reports are derived:
per-device busy time, the iteration makespan, and the bubble fraction
(the fraction of device-time spent idle between the start and the end of the
iteration, as plotted in Figures 3 and 6b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..schedules.base import Pass

__all__ = ["TimelineSpan", "Timeline"]


@dataclass(frozen=True)
class TimelineSpan:
    """One executed pass: which device ran what, and when."""

    device: int
    work: Pass
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("span end precedes its start")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Chronological record of every pass executed in one iteration."""

    num_devices: int
    spans: List[TimelineSpan] = field(default_factory=list)

    def add(self, span: TimelineSpan) -> None:
        if not 0 <= span.device < self.num_devices:
            raise ValueError(f"device {span.device} out of range")
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans_on_device(self, device: int) -> List[TimelineSpan]:
        return sorted(
            (s for s in self.spans if s.device == device), key=lambda s: s.start
        )

    @property
    def makespan(self) -> float:
        """End-to-end duration of the iteration."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def busy_time(self, device: Optional[int] = None) -> float:
        """Total compute time, for one device or summed over all of them."""
        spans: Iterable[TimelineSpan] = (
            self.spans if device is None else self.spans_on_device(device)
        )
        return sum(s.duration for s in spans)

    def device_busy_times(self) -> List[float]:
        return [self.busy_time(d) for d in range(self.num_devices)]

    def bubble_fraction(self) -> float:
        """Fraction of total device-time spent idle.

        ``1 - sum(busy) / (p * makespan)`` — the quantity Table 2 and
        Figures 3 / 6b call the bubble fraction.
        """
        makespan = self.makespan
        if makespan <= 0.0:
            return 0.0
        total = self.num_devices * makespan
        return max(0.0, 1.0 - self.busy_time() / total)

    def bubble_time(self, device: int) -> float:
        """Idle time of one device within the iteration window."""
        return self.makespan - self.busy_time(device)

    def device_utilizations(self) -> List[float]:
        makespan = self.makespan
        if makespan <= 0.0:
            return [0.0] * self.num_devices
        return [self.busy_time(d) / makespan for d in range(self.num_devices)]

    def finish_times(self) -> Dict[tuple, float]:
        """Finish time of every pass keyed by ``(kind, work_key)``."""
        return {(s.work.kind, s.work.work_key): s.end for s in self.spans}

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 100, max_devices: int = 16) -> str:
        """Render a coarse ASCII Gantt chart (one row per device).

        Forward passes render as ``F``, combined backwards as ``B``, split
        backward halves as ``b``/``w``; idle time as ``.``.  Useful for
        eyeballing schedules the way Figures 4, 5 and 7 do.
        """
        if not self.spans:
            return "(empty timeline)"
        makespan = self.makespan
        origin = min(s.start for s in self.spans)
        rows = []
        symbol = {"F": "F", "B": "B", "Bi": "b", "Bw": "w"}
        for device in range(min(self.num_devices, max_devices)):
            row = ["."] * width
            for span in self.spans_on_device(device):
                lo = int((span.start - origin) / makespan * (width - 1))
                hi = max(lo, int((span.end - origin) / makespan * (width - 1)))
                for col in range(lo, hi + 1):
                    row[col] = symbol.get(span.work.kind.value, "?")
            rows.append(f"dev{device:>2} |" + "".join(row) + "|")
        return "\n".join(rows)
