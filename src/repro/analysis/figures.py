"""Data generators for every figure in the paper's evaluation.

Each ``figureN_*`` function reproduces the data series behind the paper's
figure N using the reproduction's own substrates (closed forms, the
discrete-event simulator, the analytic system models).  The returned result
objects hold plain lists of row dataclasses plus a ``to_text()`` rendering, so
the benchmark harness and the examples can print exactly the rows the paper
plots without any plotting dependency.

See DESIGN.md section 3 for the experiment-by-experiment index and
EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..constants import GIB, KILO_TOKENS, tokens_from_k
from ..core.context_exchange import balance_workloads, concurrent_kv_slices
from ..core.planner import SlimPipeOptions, SlimPipePlanner
from ..core.schedule import SlimPipeScheduleConfig, build_slimpipe_schedule, warmup_units
from ..hardware.topology import hopper_cluster
from ..model.config import LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B, ModelConfig
from ..model.memory import RecomputeMode
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..schedules.formulas import (
    activation_memory_factor,
    bubble_fraction_estimate,
)
from ..sim.engine import SimulationEngine, UniformCostProvider
from ..sim.memory_tracker import MemoryTracker
from ..sim.providers import ModelActivationAccountant
from ..sweep.cache import SweepCache
from ..sweep.engine import run_sweep
from ..sweep.spec import SweepSpec
from ..systems import AnalyticEstimator, SchemeSystem, SystemEstimate
from .report import render_table

__all__ = [
    "figure1_memory_footprint",
    "figure2_max_context",
    "figure3_bubble_fractions",
    "figure4_schedule_structure",
    "figure5_interleaved_schedule",
    "figure6a_activation_vs_slices",
    "figure6b_bubble_vs_slices",
    "figure7_imbalance_bubbles",
    "figure8_context_exchange_plan",
    "figure9_vocab_parallel_bubble",
    "figure10_memory_scaling",
    "figure11_mfu_vs_slices",
    "figure12_end_to_end",
    "figure13_scheme_mfu",
    "figure14_scheme_memory",
    "PAPER_SCHEMES",
]

#: The pipeline schemes the paper's scheme-comparison figures evaluate.
PAPER_SCHEMES = ("zb-v", "v-half", "1f1b", "interleaved-1f1b", "slimpipe")


# ===========================================================================
# Figure 1 — memory footprint vs PP size, classic PP vs SlimPipe
# ===========================================================================
@dataclass(frozen=True)
class Figure1Row:
    pipeline_parallel_size: int
    model_state_gib: float
    classic_activation_gib: float
    slimpipe_activation_gib: float


@dataclass
class Figure1Result:
    model: str
    sequence_length: int
    rows: List[Figure1Row] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            ["p", "model states (GiB)", "classic PP activations (GiB)", "SlimPipe activations (GiB)"],
            [
                (
                    r.pipeline_parallel_size,
                    f"{r.model_state_gib:.1f}",
                    f"{r.classic_activation_gib:.1f}",
                    f"{r.slimpipe_activation_gib:.1f}",
                )
                for r in self.rows
            ],
            title=f"Figure 1 — GPU memory vs PP size ({self.model}, {self.sequence_length // KILO_TOKENS}K)",
        )


def figure1_memory_footprint(
    model: ModelConfig = LLAMA_70B,
    sequence_length: int = 64 * KILO_TOKENS,
    pipeline_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    tensor_parallel_size: int = 8,
    num_microbatches: int = 16,
    slices_per_stage: int = 4,
) -> Figure1Result:
    """Classic PP keeps activation memory constant; SlimPipe divides it by ``p``.

    Pipeline sizes that do not divide the model's layer count are skipped.
    """
    cluster = hopper_cluster(max(pipeline_sizes) * tensor_parallel_size)
    result = Figure1Result(model=model.name, sequence_length=sequence_length)
    for p in pipeline_sizes:
        if model.num_layers % p != 0:
            continue
        parallel = ParallelConfig(
            tensor_parallel_size=tensor_parallel_size, pipeline_parallel_size=p
        )
        estimator = AnalyticEstimator(model, cluster)
        states = estimator.model_state_bytes(parallel)
        m_a = estimator.microbatch_activation_bytes(
            parallel, sequence_length, RecomputeMode.NONE
        )
        classic = m_a * activation_memory_factor("1f1b", p, num_microbatches)
        slim = m_a * activation_memory_factor(
            "slimpipe", p, num_microbatches, slices_per_stage * p
        )
        result.rows.append(
            Figure1Row(
                pipeline_parallel_size=p,
                model_state_gib=states / GIB,
                classic_activation_gib=classic / GIB,
                slimpipe_activation_gib=slim / GIB,
            )
        )
    return result


# ===========================================================================
# Figure 2 — maximum context length per PP scheme
# ===========================================================================
@dataclass(frozen=True)
class Figure2Row:
    scheme: str
    max_context_k: int


@dataclass
class Figure2Result:
    model: str
    rows: List[Figure2Row] = field(default_factory=list)

    def max_context(self, scheme: str) -> int:
        for row in self.rows:
            if row.scheme == scheme:
                return row.max_context_k
        raise KeyError(scheme)

    def to_text(self) -> str:
        return render_table(
            ["scheme", "max context (K tokens)"],
            [(r.scheme, r.max_context_k) for r in self.rows],
            title=f"Figure 2 — maximum context length ({self.model}, 8-way TP, 8-way PP)",
        )


def figure2_max_context(
    model: ModelConfig = LLAMA_13B,
    schemes: Sequence[str] = PAPER_SCHEMES,
    tensor_parallel_size: int = 8,
    pipeline_parallel_size: int = 8,
    tokens_per_iteration: int = 4 * 1024 * 1024,
    max_context_k: int = 1024,
    step_k: int = 4,
) -> Figure2Result:
    """Largest context each scheme can fit (no recompute restriction lifted).

    A scheme's maximum context is the largest multiple of ``step_k`` K tokens
    whose activations still fit device memory at the fixed TP/PP sizes
    *without* recomputation — Figure 2 measures the memory headroom of the
    schedule itself, before any memory/compute trade-off is invoked.
    """
    cluster = hopper_cluster(tensor_parallel_size * pipeline_parallel_size)
    result = Figure2Result(model=model.name)
    for scheme in schemes:
        system = SchemeSystem(scheme, forced_recompute=RecomputeMode.NONE)
        feasible_k = 0
        low, high = step_k, max_context_k
        # Binary search over the context length grid.
        while low <= high:
            mid = (low + high) // 2 // step_k * step_k
            mid = max(step_k, mid)
            seq = tokens_from_k(mid)
            workload = WorkloadConfig(
                sequence_length=seq,
                tokens_per_iteration=max(tokens_per_iteration, seq),
            )
            parallel = ParallelConfig(
                tensor_parallel_size=tensor_parallel_size,
                pipeline_parallel_size=pipeline_parallel_size,
                data_parallel_size=1,
                num_slices=4 * pipeline_parallel_size,
            )
            estimate = system.evaluate(model, cluster, workload, parallel)
            if estimate.feasible:
                feasible_k = mid
                low = mid + step_k
            else:
                high = mid - step_k
        result.rows.append(Figure2Row(scheme=scheme, max_context_k=feasible_k))
    return result


# ===========================================================================
# Figure 3 — theoretical bubble fraction per scheme
# ===========================================================================
@dataclass(frozen=True)
class Figure3Row:
    scheme: str
    bubble_fraction: float


@dataclass
class Figure3Result:
    rows: List[Figure3Row] = field(default_factory=list)

    def fraction(self, scheme: str) -> float:
        for row in self.rows:
            if row.scheme == scheme:
                return row.bubble_fraction
        raise KeyError(scheme)

    def to_text(self) -> str:
        return render_table(
            ["scheme", "bubble fraction"],
            [(r.scheme, f"{r.bubble_fraction:.3f}") for r in self.rows],
            title="Figure 3 — theoretical bubble fractions (p=8, m=4, 256K context)",
        )


def figure3_bubble_fractions(
    model: ModelConfig = LLAMA_13B,
    schemes: Sequence[str] = PAPER_SCHEMES,
    pipeline_parallel_size: int = 8,
    num_microbatches: int = 4,
    sequence_length: int = 256 * KILO_TOKENS,
    num_slices: Optional[int] = None,
    virtual_stages: int = 5,
) -> Figure3Result:
    """Bubble fractions of the schemes at the Figure 3 operating point."""
    cluster = hopper_cluster(8)
    estimator = AnalyticEstimator(model, cluster)
    share = estimator.attention_share(sequence_length)
    n = num_slices or 4 * pipeline_parallel_size
    result = Figure3Result()
    for scheme in schemes:
        v = virtual_stages if scheme in ("interleaved-1f1b", "slimpipe") else 1
        result.rows.append(
            Figure3Row(
                scheme=scheme,
                bubble_fraction=bubble_fraction_estimate(
                    scheme,
                    pipeline_parallel_size,
                    num_microbatches,
                    n,
                    v,
                    attention_share=share,
                ),
            )
        )
    return result


# ===========================================================================
# Figures 4 & 5 — schedule structure
# ===========================================================================
@dataclass
class ScheduleStructureResult:
    name: str
    num_devices: int
    num_microbatches: int
    num_slices: int
    stages_per_device: int
    warmup_units: List[int]
    peak_activation_units: List[int]
    accumulated_fraction_of_microbatch: float
    ascii_timeline: str

    def to_text(self) -> str:
        header = (
            f"{self.name}: p={self.num_devices} m={self.num_microbatches} "
            f"n={self.num_slices} v={self.stages_per_device}\n"
            f"warm-up units per device: {self.warmup_units}\n"
            f"peak live slice-stage units: {self.peak_activation_units}\n"
            f"accumulated activation (fraction of one microbatch M_a): "
            f"{self.accumulated_fraction_of_microbatch:.4f}\n"
        )
        return header + self.ascii_timeline


def _schedule_structure(
    p: int, m: int, n: int, v: int, name: str
) -> ScheduleStructureResult:
    schedule = build_slimpipe_schedule(p, m, n, v)
    config = SlimPipeScheduleConfig(p, m, n, v)
    timeline = SimulationEngine(schedule, UniformCostProvider(1.0, 2.0)).run()
    peaks = schedule.max_inflight_activations()
    return ScheduleStructureResult(
        name=name,
        num_devices=p,
        num_microbatches=m,
        num_slices=n,
        stages_per_device=v,
        warmup_units=[warmup_units(config, r) for r in range(p)],
        peak_activation_units=peaks,
        accumulated_fraction_of_microbatch=max(peaks) / (n * v * p),
        ascii_timeline=timeline.render_ascii(),
    )


def figure4_schedule_structure(
    pipeline_parallel_size: int = 4, num_microbatches: int = 3, num_slices: int = 8
) -> ScheduleStructureResult:
    """The plain SlimPipe schedule of Figure 4 (bottom)."""
    return _schedule_structure(
        pipeline_parallel_size, num_microbatches, num_slices, 1, "Figure 4 — SlimPipe schedule"
    )


def figure5_interleaved_schedule(
    pipeline_parallel_size: int = 4,
    num_microbatches: int = 2,
    num_slices: int = 8,
    stages_per_device: int = 2,
) -> ScheduleStructureResult:
    """The interleaved SlimPipe schedule of Figure 5."""
    return _schedule_structure(
        pipeline_parallel_size,
        num_microbatches,
        num_slices,
        stages_per_device,
        "Figure 5 — interleaved SlimPipe schedule",
    )


# ===========================================================================
# Figure 6 — activation memory and bubble fraction vs number of slices
# ===========================================================================
@dataclass(frozen=True)
class Figure6aRow:
    pipeline_parallel_size: int
    num_slices: int
    activation_fraction: float


@dataclass(frozen=True)
class Figure6bRow:
    num_microbatches: int
    num_slices: int
    bubble_fraction: float


@dataclass
class Figure6Result:
    activation_rows: List[Figure6aRow] = field(default_factory=list)
    bubble_rows: List[Figure6bRow] = field(default_factory=list)

    def to_text(self) -> str:
        a = render_table(
            ["p", "n", "activation (fraction of M_a)"],
            [
                (r.pipeline_parallel_size, r.num_slices, f"{r.activation_fraction:.4f}")
                for r in self.activation_rows
            ],
            title="Figure 6a — activation memory vs number of slices",
        )
        b = render_table(
            ["m", "n", "bubble fraction"],
            [
                (r.num_microbatches, r.num_slices, f"{r.bubble_fraction:.4f}")
                for r in self.bubble_rows
            ],
            title="Figure 6b — bubble fraction vs number of slices (p=4)",
        )
        return a + "\n" + b


def figure6a_activation_vs_slices(
    pipeline_sizes: Sequence[int] = (4, 8, 16),
    slice_multipliers: Sequence[int] = (1, 2, 3, 4, 5, 6),
    num_microbatches: int = 8,
) -> List[Figure6aRow]:
    rows = []
    for p in pipeline_sizes:
        for mult in slice_multipliers:
            n = mult * p
            rows.append(
                Figure6aRow(
                    pipeline_parallel_size=p,
                    num_slices=n,
                    activation_fraction=activation_memory_factor(
                        "slimpipe", p, num_microbatches, n
                    ),
                )
            )
    return rows


def figure6b_bubble_vs_slices(
    pipeline_parallel_size: int = 4,
    microbatch_counts: Sequence[int] = (2, 4, 8),
    slice_multipliers: Sequence[int] = (1, 2, 3, 4, 5, 6),
    attention_share: float = 0.5,
) -> List[Figure6bRow]:
    rows = []
    p = pipeline_parallel_size
    for m in microbatch_counts:
        for mult in slice_multipliers:
            n = mult * p
            rows.append(
                Figure6bRow(
                    num_microbatches=m,
                    num_slices=n,
                    bubble_fraction=bubble_fraction_estimate(
                        "slimpipe", p, m, n, attention_share=attention_share
                    ),
                )
            )
    return rows


def figure6_slices_sweep() -> Figure6Result:
    """Both panels of Figure 6 at their default operating points."""
    return Figure6Result(
        activation_rows=figure6a_activation_vs_slices(),
        bubble_rows=figure6b_bubble_vs_slices(),
    )


# ===========================================================================
# Figure 7 — imbalance bubbles without context exchange
# ===========================================================================
@dataclass
class Figure7Result:
    bubble_without_exchange: float
    bubble_with_exchange: float
    makespan_without_exchange: float
    makespan_with_exchange: float

    @property
    def bubble_reduction(self) -> float:
        return self.bubble_without_exchange - self.bubble_with_exchange

    def to_text(self) -> str:
        return render_table(
            ["context exchange", "bubble fraction", "iteration time (s)"],
            [
                ("off", f"{self.bubble_without_exchange:.3f}", f"{self.makespan_without_exchange:.2f}"),
                ("on", f"{self.bubble_with_exchange:.3f}", f"{self.makespan_with_exchange:.2f}"),
            ],
            title="Figure 7 — imbalance bubbles caused by causal attention",
        )


def figure7_imbalance_bubbles(
    model: ModelConfig = LLAMA_13B,
    pipeline_parallel_size: int = 4,
    num_microbatches: int = 2,
    num_slices: int = 8,
    sequence_length: int = 256 * KILO_TOKENS,
    tensor_parallel_size: int = 8,
) -> Figure7Result:
    """Simulate the SlimPipe timeline with and without attention rebalancing."""
    results = {}
    for exchange in (False, True):
        parallel = ParallelConfig(
            tensor_parallel_size=tensor_parallel_size,
            pipeline_parallel_size=pipeline_parallel_size,
            num_slices=num_slices,
        )
        cluster = hopper_cluster(parallel.world_size)
        workload = WorkloadConfig(
            sequence_length=sequence_length,
            tokens_per_iteration=sequence_length * num_microbatches,
        )
        planner = SlimPipePlanner(
            model,
            cluster,
            parallel,
            workload,
            SlimPipeOptions(context_exchange=exchange, vocab_parallel=True),
        )
        execution = planner.run()
        results[exchange] = execution
    return Figure7Result(
        bubble_without_exchange=results[False].metrics.bubble_fraction,
        bubble_with_exchange=results[True].metrics.bubble_fraction,
        makespan_without_exchange=results[False].iteration_time,
        makespan_with_exchange=results[True].iteration_time,
    )


# ===========================================================================
# Figure 8 — attention workload rebalancing
# ===========================================================================
@dataclass
class Figure8Result:
    original: List[float]
    balanced: List[float]
    num_transfers: int
    max_imbalance_before: float
    max_imbalance_after: float

    def to_text(self) -> str:
        return render_table(
            ["device", "KV slices before", "KV slices after"],
            [
                (d, f"{o:.1f}", f"{b:.1f}")
                for d, (o, b) in enumerate(zip(self.original, self.balanced))
            ],
            title="Figure 8 — attention workload rebalanced by context exchange",
        )


def figure8_context_exchange_plan(
    num_devices: int = 6, num_slices: int = 12, phase_offset: int = 3
) -> Figure8Result:
    """The Figure 8 rebalancing example: arithmetic-progression loads equalised."""
    loads = concurrent_kv_slices(num_devices, phase_offset, num_slices)
    plan = balance_workloads(loads)
    return Figure8Result(
        original=plan.original,
        balanced=plan.balanced,
        num_transfers=len(plan.transfers),
        max_imbalance_before=plan.max_imbalance_before,
        max_imbalance_after=plan.max_imbalance_after,
    )


# ===========================================================================
# Figure 9 — the output-layer bubble and vocabulary parallelism
# ===========================================================================
@dataclass
class Figure9Result:
    makespan_last_device_gemm: float
    makespan_vocab_parallel: float
    bubble_last_device_gemm: float
    bubble_vocab_parallel: float

    @property
    def speedup(self) -> float:
        return self.makespan_last_device_gemm / self.makespan_vocab_parallel

    def to_text(self) -> str:
        return render_table(
            ["output layer placement", "iteration time (s)", "bubble fraction"],
            [
                ("last device only", f"{self.makespan_last_device_gemm:.2f}", f"{self.bubble_last_device_gemm:.3f}"),
                ("vocabulary parallel", f"{self.makespan_vocab_parallel:.2f}", f"{self.bubble_vocab_parallel:.3f}"),
            ],
            title="Figure 9 — output-layer GEMM bubble with / without vocabulary parallelism",
        )


def figure9_vocab_parallel_bubble(
    model: ModelConfig = LLAMA_13B,
    pipeline_parallel_size: int = 4,
    num_microbatches: int = 2,
    num_slices: int = 8,
    sequence_length: int = 128 * KILO_TOKENS,
    tensor_parallel_size: int = 8,
) -> Figure9Result:
    results = {}
    for vocab_parallel in (False, True):
        parallel = ParallelConfig(
            tensor_parallel_size=tensor_parallel_size,
            pipeline_parallel_size=pipeline_parallel_size,
            num_slices=num_slices,
        )
        cluster = hopper_cluster(parallel.world_size)
        workload = WorkloadConfig(
            sequence_length=sequence_length,
            tokens_per_iteration=sequence_length * num_microbatches,
        )
        planner = SlimPipePlanner(
            model,
            cluster,
            parallel,
            workload,
            SlimPipeOptions(context_exchange=True, vocab_parallel=vocab_parallel),
        )
        results[vocab_parallel] = planner.run()
    return Figure9Result(
        makespan_last_device_gemm=results[False].iteration_time,
        makespan_vocab_parallel=results[True].iteration_time,
        bubble_last_device_gemm=results[False].metrics.bubble_fraction,
        bubble_vocab_parallel=results[True].metrics.bubble_fraction,
    )


# ===========================================================================
# Figure 10 — memory scaling with PP size, measured vs M_t / p
# ===========================================================================
@dataclass(frozen=True)
class Figure10Row:
    sequence_k: int
    pipeline_parallel_size: int
    first_device_gib: float
    last_device_gib: float
    theoretical_gib: float


@dataclass
class Figure10Result:
    model: str
    rows: List[Figure10Row] = field(default_factory=list)

    def rows_for(self, sequence_k: int) -> List[Figure10Row]:
        return [r for r in self.rows if r.sequence_k == sequence_k]

    def to_text(self) -> str:
        return render_table(
            ["context", "p", "first device (GiB)", "last device (GiB)", "M_t / p (GiB)"],
            [
                (
                    f"{r.sequence_k}K",
                    r.pipeline_parallel_size,
                    f"{r.first_device_gib:.1f}",
                    f"{r.last_device_gib:.1f}",
                    f"{r.theoretical_gib:.1f}",
                )
                for r in self.rows
            ],
            title=f"Figure 10 — memory vs PP size ({self.model}, 8-way TP, max interleave)",
        )


def figure10_memory_scaling(
    model: ModelConfig = LLAMA_13B,
    sequence_ks: Sequence[int] = (32, 64, 96),
    pipeline_sizes: Sequence[int] = (2, 4, 5, 8, 10),
    tensor_parallel_size: int = 8,
    num_microbatches: int = 4,
    slices_per_stage: int = 4,
) -> Figure10Result:
    """Per-device peak memory of SlimPipe vs the ``M_t / p`` theoretical curve."""
    result = Figure10Result(model=model.name)
    for seq_k in sequence_ks:
        seq = tokens_from_k(seq_k)
        for p in pipeline_sizes:
            if model.num_layers % p != 0:
                continue
            layers_per_device = model.num_layers // p
            v = layers_per_device  # maximum interleaving, as in the paper
            parallel = ParallelConfig(
                tensor_parallel_size=tensor_parallel_size,
                pipeline_parallel_size=p,
                virtual_pipeline_size=v,
                num_slices=slices_per_stage * p,
            )
            cluster = hopper_cluster(parallel.world_size)
            workload = WorkloadConfig(
                sequence_length=seq, tokens_per_iteration=seq * num_microbatches
            )
            planner = SlimPipePlanner(model, cluster, parallel, workload)
            schedule = planner.build_schedule()
            spec = planner.build_spec()
            profiles = MemoryTracker(
                schedule, ModelActivationAccountant(spec, cluster)
            ).profile()

            # Theoretical M_t / p: everything the training run needs, divided by p.
            no_pp = ParallelConfig(tensor_parallel_size=tensor_parallel_size)
            estimator = AnalyticEstimator(model, cluster)
            m_t = (
                estimator.model_state_bytes(no_pp)
                + estimator.microbatch_activation_bytes(no_pp, seq, RecomputeMode.NONE)
                + estimator.loss_logits_bytes(no_pp, seq)
            )
            result.rows.append(
                Figure10Row(
                    sequence_k=seq_k,
                    pipeline_parallel_size=p,
                    first_device_gib=profiles[0].peak_bytes / GIB,
                    last_device_gib=profiles[-1].peak_bytes / GIB,
                    theoretical_gib=m_t / p / GIB,
                )
            )
    return result


# ===========================================================================
# Figure 11 — MFU vs number of slices
# ===========================================================================
@dataclass(frozen=True)
class Figure11Row:
    sequence_k: int
    num_slices: int
    mfu: float


@dataclass
class Figure11Result:
    model: str
    rows: List[Figure11Row] = field(default_factory=list)

    def series(self, sequence_k: int) -> List[Tuple[int, float]]:
        return [
            (r.num_slices, r.mfu) for r in self.rows if r.sequence_k == sequence_k
        ]

    def best_slices(self, sequence_k: int) -> int:
        series = self.series(sequence_k)
        return max(series, key=lambda item: item[1])[0]

    def to_text(self) -> str:
        return render_table(
            ["context", "n", "MFU (%)"],
            [(f"{r.sequence_k}K", r.num_slices, f"{r.mfu * 100:.1f}") for r in self.rows],
            title=f"Figure 11 — MFU vs number of slices ({self.model}, p=4)",
        )


def figure11_mfu_vs_slices(
    model: ModelConfig = LLAMA_13B,
    sequence_ks: Sequence[int] = (128, 256, 512),
    slice_multipliers: Sequence[int] = (1, 2, 3, 4, 5, 6, 8),
    pipeline_parallel_size: int = 4,
    tensor_parallel_size: int = 8,
    virtual_stages: int = 5,
    num_microbatches: int = 2,
) -> Figure11Result:
    """Finer slicing first helps (fewer bubbles) then hurts (arithmetic intensity)."""
    result = Figure11Result(model=model.name)
    cluster = hopper_cluster(tensor_parallel_size * pipeline_parallel_size)
    for seq_k in sequence_ks:
        seq = tokens_from_k(seq_k)
        workload = WorkloadConfig(
            sequence_length=seq, tokens_per_iteration=seq * num_microbatches
        )
        for mult in slice_multipliers:
            n = mult * pipeline_parallel_size
            system = SchemeSystem(
                "slimpipe",
                forced_recompute=RecomputeMode.FULL,
                num_slices=n,
                vocab_parallel=True,
            )
            parallel = ParallelConfig(
                tensor_parallel_size=tensor_parallel_size,
                pipeline_parallel_size=pipeline_parallel_size,
                virtual_pipeline_size=virtual_stages,
                num_slices=n,
            )
            estimate = system.evaluate(model, cluster, workload, parallel)
            result.rows.append(
                Figure11Row(
                    sequence_k=seq_k,
                    num_slices=n,
                    mfu=estimate.mfu if estimate.feasible else 0.0,
                )
            )
    return result


# ===========================================================================
# Figure 12 — end-to-end comparison DeepSpeed vs Megatron-LM vs SlimPipe
# ===========================================================================
@dataclass(frozen=True)
class Figure12Cell:
    model: str
    num_gpus: int
    sequence_k: int
    system: str
    feasible: bool
    reason: str
    mfu: float

    @property
    def label(self) -> str:
        if self.feasible:
            return f"{self.mfu * 100:.1f}%"
        return "OOM" if self.reason == "oom" else "no-config"


@dataclass
class Figure12Result:
    cells: List[Figure12Cell] = field(default_factory=list)

    def cell(self, model: str, num_gpus: int, sequence_k: int, system: str) -> Figure12Cell:
        for c in self.cells:
            if (
                c.model == model
                and c.num_gpus == num_gpus
                and c.sequence_k == sequence_k
                and c.system == system
            ):
                return c
        raise KeyError((model, num_gpus, sequence_k, system))

    def speedup_over_megatron(self, model: str, num_gpus: int, sequence_k: int) -> Optional[float]:
        slim = self.cell(model, num_gpus, sequence_k, "slimpipe")
        base = self.cell(model, num_gpus, sequence_k, "megatron-lm")
        if slim.feasible and base.feasible and base.mfu > 0:
            return slim.mfu / base.mfu
        return None

    def to_text(self) -> str:
        rows = [
            (c.model, c.num_gpus, f"{c.sequence_k}K", c.system, c.label)
            for c in self.cells
        ]
        return render_table(
            ["model", "GPUs", "context", "system", "MFU"],
            rows,
            title="Figure 12 — end-to-end MFU comparison",
        )


def figure12_end_to_end(
    models: Sequence[ModelConfig] = (LLAMA_70B, MIXTRAL_8X7B),
    gpu_counts: Sequence[int] = (128, 256),
    sequence_ks: Sequence[int] = (64, 128, 256, 512),
    tokens_per_iteration: int = 4 * 1024 * 1024,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> Figure12Result:
    """The Figure 12 grid (a subset by default; pass the full lists to widen it).

    Each cell is one independent grid search, so the whole figure is a sweep:
    ``workers > 1`` fans the cells out over that many processes and ``cache``
    memoizes per-cell results on disk (see :mod:`repro.sweep`).  Cell order
    matches the historical nested loops (model, GPUs, context, system).

    Models travel to the evaluator by registry name, so every entry of
    ``models`` must be (equal to) a registered configuration.
    """
    from ..model.config import get_model_config

    for model in models:
        if get_model_config(model.name) != model:
            raise ValueError(
                f"figure12_end_to_end requires registered model configs; "
                f"{model.name!r} differs from MODEL_REGISTRY[{model.name!r}]"
            )
    spec = SweepSpec.make(
        name="fig12",
        evaluator="fig12-cell",
        axes={
            "model": tuple(model.name for model in models),
            "num_gpus": tuple(gpu_counts),
            "sequence_k": tuple(sequence_ks),
            "system": ("deepspeed", "megatron-lm", "slimpipe"),
        },
        base={"tokens_per_iteration": tokens_per_iteration},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = Figure12Result()
    for point, row in sweep:
        result.cells.append(
            Figure12Cell(
                model=str(point["model"]),
                num_gpus=int(point["num_gpus"]),
                sequence_k=int(point["sequence_k"]),
                system=str(point["system"]),
                feasible=bool(row["feasible"]),
                reason=str(row["reason"]),
                mfu=float(row["mfu"]),
            )
        )
    return result


# ===========================================================================
# Figures 13 & 14 — scheme comparison: MFU and memory vs context length
# ===========================================================================
@dataclass(frozen=True)
class SchemeSweepRow:
    scheme: str
    sequence_k: int
    feasible: bool
    mfu: float
    peak_memory_gib: float


@dataclass
class SchemeSweepResult:
    model: str
    rows: List[SchemeSweepRow] = field(default_factory=list)

    def row(self, scheme: str, sequence_k: int) -> SchemeSweepRow:
        for r in self.rows:
            if r.scheme == scheme and r.sequence_k == sequence_k:
                return r
        raise KeyError((scheme, sequence_k))

    def to_text(self) -> str:
        return render_table(
            ["scheme", "context", "MFU (%)", "memory (GiB)"],
            [
                (
                    r.scheme,
                    f"{r.sequence_k}K",
                    f"{r.mfu * 100:.1f}" if r.feasible else "OOM",
                    f"{r.peak_memory_gib:.1f}" if r.feasible else "-",
                )
                for r in self.rows
            ],
            title=f"Figures 13/14 — PP scheme comparison ({self.model}, 8-way TP)",
        )


def scheme_context_sweep(
    model: ModelConfig = LLAMA_13B,
    schemes: Sequence[str] = PAPER_SCHEMES,
    sequence_ks: Sequence[int] = (32, 64, 128, 256, 512),
    tensor_parallel_size: int = 8,
    pipeline_parallel_size: int = 8,
    batch_sequences: int = 4,
    virtual_stages: int = 5,
    num_slices: int = 1,
) -> SchemeSweepResult:
    """Shared sweep behind Figures 13 (MFU) and 14 (memory).

    Mirrors Section 6.6: Llama 13B, per-iteration batch of 4 sequences,
    8-way TP, full checkpointing, 5 stages per device for the interleaved
    schemes, 4 slices per sequence for SlimPipe.  The zero-bubble variants run
    *without* checkpointing because, as the paper notes, "its built-in full
    checkpointing implementation does not work properly in this scheme" —
    which is what makes them run out of memory first (Figure 14).
    """
    cluster = hopper_cluster(tensor_parallel_size * pipeline_parallel_size)
    result = SchemeSweepResult(model=model.name)
    for scheme in schemes:
        uses_virtual = scheme in ("interleaved-1f1b", "slimpipe")
        recompute = (
            RecomputeMode.NONE if scheme in ("zb-v", "v-half") else RecomputeMode.FULL
        )
        for seq_k in sequence_ks:
            seq = tokens_from_k(seq_k)
            workload = WorkloadConfig(
                sequence_length=seq, tokens_per_iteration=seq * batch_sequences
            )
            parallel = ParallelConfig(
                tensor_parallel_size=tensor_parallel_size,
                pipeline_parallel_size=pipeline_parallel_size,
                virtual_pipeline_size=virtual_stages if uses_virtual else 1,
                num_slices=num_slices * pipeline_parallel_size if scheme == "slimpipe" else None,
            )
            system = SchemeSystem(scheme, forced_recompute=recompute)
            try:
                estimate = system.evaluate(model, cluster, workload, parallel)
            except ValueError:
                estimate = SystemEstimate(system=scheme, feasible=False, reason="invalid")
            result.rows.append(
                SchemeSweepRow(
                    scheme=scheme,
                    sequence_k=seq_k,
                    feasible=estimate.feasible,
                    mfu=estimate.mfu,
                    peak_memory_gib=estimate.peak_memory_bytes / GIB,
                )
            )
    return result


def figure13_scheme_mfu(**kwargs) -> SchemeSweepResult:
    """Figure 13: MFU of the PP schemes across context lengths."""
    return scheme_context_sweep(**kwargs)


def figure14_scheme_memory(**kwargs) -> SchemeSweepResult:
    """Figure 14: peak GPU memory of the PP schemes across context lengths."""
    return scheme_context_sweep(**kwargs)
