"""Data generators for the paper's tables.

* Table 2 — the closed-form comparison of pipeline schemes;
* Table 3 — the model specifications (parameter counts);
* Table 4 — ultra-long-context training with activation offloading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..constants import GIB, tokens_from_k
from ..hardware.topology import hopper_cluster
from ..model.config import (
    LLAMA_13B,
    LLAMA_70B,
    LLAMA_149B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    ModelConfig,
)
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..schedules.formulas import (
    activation_memory_factor,
    available_schemes,
    bubble_fraction_estimate,
)
from ..systems import SlimPipeSystem, SystemEstimate
from .report import render_table

__all__ = [
    "Table2Row",
    "table2_scheme_comparison",
    "Table3Row",
    "table3_model_specifications",
    "Table4Config",
    "Table4Row",
    "PAPER_TABLE4_CONFIGS",
    "table4_ultra_long_context",
]


# ===========================================================================
# Table 2
# ===========================================================================
@dataclass(frozen=True)
class Table2Row:
    scheme: str
    activation_memory_factor: float
    bubble_fraction: float


def table2_scheme_comparison(
    pipeline_parallel_size: int = 8,
    num_microbatches: int = 8,
    num_slices: Optional[int] = None,
    virtual_stages: int = 2,
    attention_share: float = 0.5,
    schemes: Sequence[str] = None,
) -> List[Table2Row]:
    """Evaluate the Table 2 closed forms at a concrete operating point."""
    names = list(schemes) if schemes is not None else available_schemes()
    n = num_slices or 4 * pipeline_parallel_size
    rows = []
    for scheme in names:
        rows.append(
            Table2Row(
                scheme=scheme,
                activation_memory_factor=activation_memory_factor(
                    scheme, pipeline_parallel_size, num_microbatches, n, virtual_stages
                ),
                bubble_fraction=bubble_fraction_estimate(
                    scheme,
                    pipeline_parallel_size,
                    num_microbatches,
                    n,
                    virtual_stages,
                    attention_share,
                ),
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    return render_table(
        ["scheme", "activation memory (x M_a)", "bubble fraction"],
        [(r.scheme, f"{r.activation_memory_factor:.3f}", f"{r.bubble_fraction:.3f}") for r in rows],
        title="Table 2 — pipeline scheme comparison",
    )


# ===========================================================================
# Table 3
# ===========================================================================
@dataclass(frozen=True)
class Table3Row:
    model: str
    num_layers: int
    num_heads: int
    num_groups: Optional[int]
    hidden_size: int
    ffn_size: int
    params_billions: float


def table3_model_specifications(
    models: Sequence[ModelConfig] = (
        LLAMA_13B,
        LLAMA_70B,
        LLAMA_149B,
        MIXTRAL_8X7B,
        MIXTRAL_8X22B,
    ),
) -> List[Table3Row]:
    """The Table 3 model zoo with parameter counts derived from the configs."""
    return [
        Table3Row(
            model=m.name,
            num_layers=m.num_layers,
            num_heads=m.num_attention_heads,
            num_groups=m.num_query_groups,
            hidden_size=m.hidden_size,
            ffn_size=m.ffn_hidden_size,
            params_billions=m.total_params() / 1e9,
        )
        for m in models
    ]


# ===========================================================================
# Table 4
# ===========================================================================
@dataclass(frozen=True)
class Table4Config:
    """One row of the paper's Table 4: the configuration it reports."""

    model: ModelConfig
    context_k: int
    tensor_parallel: int
    context_parallel: int
    expert_parallel: int
    data_parallel: int
    pipeline_parallel: int
    slices_per_pipeline: int  # n = slices_per_pipeline * p
    paper_offload_ratio: float
    paper_mfu: float


#: The exact configurations of Table 4 (16M tokens per iteration, <= 256 GPUs).
PAPER_TABLE4_CONFIGS: List[Table4Config] = [
    Table4Config(LLAMA_70B, 2048, 4, 4, 1, 1, 16, 4, 0.75, 0.450),
    Table4Config(LLAMA_149B, 1024, 4, 2, 1, 1, 32, 2, 0.80, 0.437),
    Table4Config(MIXTRAL_8X7B, 4096, 1, 16, 8, 1, 16, 4, 0.95, 0.400),
    Table4Config(MIXTRAL_8X22B, 2048, 1, 8, 8, 1, 28, 4, 1.00, 0.420),
]


@dataclass(frozen=True)
class Table4Row:
    model: str
    context_k: int
    feasible: bool
    offload_ratio: float
    mfu: float
    paper_offload_ratio: float
    paper_mfu: float
    peak_memory_gib: float


def table4_ultra_long_context(
    configs: Sequence[Table4Config] = tuple(PAPER_TABLE4_CONFIGS),
    tokens_per_iteration: int = 16 * 1024 * 1024,
) -> List[Table4Row]:
    """Evaluate SlimPipe + offloading at the paper's Table 4 operating points.

    As in Section 6.5, selective checkpointing is enabled uniformly and the
    offload ratio is whatever the planner needs to fit device memory.
    """
    from ..model.memory import RecomputeMode

    rows: List[Table4Row] = []
    for cfg in configs:
        seq = tokens_from_k(cfg.context_k)
        gpus = (
            cfg.tensor_parallel
            * cfg.context_parallel
            * cfg.data_parallel
            * cfg.pipeline_parallel
        )
        cluster = hopper_cluster(gpus, gpus_per_node=min(8, gpus))
        workload = WorkloadConfig(
            sequence_length=seq,
            tokens_per_iteration=max(tokens_per_iteration, seq),
        )
        parallel = ParallelConfig(
            tensor_parallel_size=cfg.tensor_parallel,
            context_parallel_size=cfg.context_parallel,
            expert_parallel_size=cfg.expert_parallel,
            data_parallel_size=cfg.data_parallel,
            pipeline_parallel_size=cfg.pipeline_parallel,
            num_slices=cfg.slices_per_pipeline * cfg.pipeline_parallel,
        )
        system = SlimPipeSystem(allow_offload=True)
        system.recompute_ladder = (RecomputeMode.SELECTIVE,)
        estimate: SystemEstimate = system.evaluate(cfg.model, cluster, workload, parallel)
        rows.append(
            Table4Row(
                model=cfg.model.name,
                context_k=cfg.context_k,
                feasible=estimate.feasible,
                offload_ratio=float(estimate.details.get("offload_ratio", 0.0)),
                mfu=estimate.mfu,
                paper_offload_ratio=cfg.paper_offload_ratio,
                paper_mfu=cfg.paper_mfu,
                peak_memory_gib=estimate.peak_memory_bytes / GIB,
            )
        )
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    return render_table(
        ["model", "context", "offload (ours/paper)", "MFU (ours/paper)", "peak mem (GiB)"],
        [
            (
                r.model,
                f"{r.context_k}K",
                f"{r.offload_ratio:.0%} / {r.paper_offload_ratio:.0%}",
                (f"{r.mfu * 100:.1f}% / {r.paper_mfu * 100:.1f}%" if r.feasible else "OOM"),
                f"{r.peak_memory_gib:.1f}",
            )
            for r in rows
        ],
        title="Table 4 — ultra-long-context training with activation offloading",
    )
