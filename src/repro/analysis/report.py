"""Plain-text rendering helpers for analysis results.

The reproduction has no plotting dependency; every figure/table generator
renders its rows through :func:`render_table`, and :func:`render_markdown_table`
produces the GitHub-flavoured variant used when regenerating parts of
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_markdown_table", "format_bytes", "format_percent"]


def _stringify(rows: Iterable[Sequence[object]]) -> List[List[str]]:
    return [[str(cell) for cell in row] for row in rows]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    ``rows`` may contain any objects; they are stringified with ``str``.
    """
    str_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def render_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = _stringify(rows)
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (GiB for anything large)."""
    if num_bytes >= 1024**3:
        return f"{num_bytes / 1024**3:.1f} GiB"
    if num_bytes >= 1024**2:
        return f"{num_bytes / 1024**2:.1f} MiB"
    if num_bytes >= 1024:
        return f"{num_bytes / 1024:.1f} KiB"
    return f"{num_bytes:.0f} B"


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"
