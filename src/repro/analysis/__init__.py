"""Analysis layer: closed forms, per-figure/table data generators and reports.

Every figure and table of the paper's evaluation has a generator here that
returns plain-Python result objects (no plotting dependencies); the matching
``benchmarks/`` module times it and prints the same rows/series the paper
reports, and ``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from ..schedules.formulas import (
    activation_memory_factor,
    available_schemes,
    bubble_fraction_estimate,
    slimpipe_accumulated_activation_factor,
)
from . import figures, observability, report, tables


def __getattr__(name):
    # Imported lazily: analysis.serving / analysis.fleet drive repro.serving
    # and repro.fleet, whose metrics render through analysis.report — an
    # eager import here would be cyclic.
    if name == "serving":
        from . import serving

        return serving
    if name == "fleet":
        from . import fleet

        return fleet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "figures",
    "tables",
    "report",
    "observability",
    "serving",
    "fleet",
    "activation_memory_factor",
    "bubble_fraction_estimate",
    "slimpipe_accumulated_activation_factor",
    "available_schemes",
]
