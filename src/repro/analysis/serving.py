"""Serving comparison table: colocated vs disaggregated across scenarios.

The serving analogue of the scheme-comparison tables: every registered
scenario is simulated under both deployments and the SLO-relevant headline
numbers are tabulated side by side.  The table makes the
prefill/decode-disaggregation tradeoff visible in one place — lower tail
TTFT (the prefill pool is never throttled to protect decode latency) bought
with higher TPOT (the decode pool is a fraction of the fleet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..serving.metrics import ServingMetrics
from ..serving.scenarios import SCENARIO_REGISTRY, get_scenario
from ..sweep.cache import SweepCache
from ..sweep.engine import run_sweep
from ..sweep.evaluators import serving_metrics_from_result
from ..sweep.spec import SweepSpec
from .report import format_percent, render_table

__all__ = ["ServingComparisonRow", "ServingComparisonResult", "serving_comparison"]


@dataclass(frozen=True)
class ServingComparisonRow:
    scenario: str
    mode: str
    model: str
    num_gpus: int
    metrics: ServingMetrics
    preemptions: int


@dataclass
class ServingComparisonResult:
    seed: int
    rows: List[ServingComparisonRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "mode",
                "TTFT p50",
                "TTFT p99",
                "TPOT p50",
                "goodput",
                "KV util",
                "preempt",
            ],
            [
                (
                    row.scenario,
                    row.mode,
                    f"{row.metrics.ttft_p50:.2f} s",
                    f"{row.metrics.ttft_p99:.2f} s",
                    f"{row.metrics.tpot_p50 * 1e3:.1f} ms",
                    format_percent(row.metrics.goodput_fraction),
                    format_percent(row.metrics.kv_utilization_mean),
                    row.preemptions,
                )
                for row in self.rows
            ],
            title=f"Serving — colocated vs disaggregated (seed {self.seed})",
        )


def serving_comparison(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> ServingComparisonResult:
    """Simulate every (scenario, deployment) pair and tabulate the results.

    Runs as a sweep over (scenario, mode): ``workers > 1`` simulates the
    pairs in parallel processes and ``cache`` memoizes per-pair metrics
    (see :mod:`repro.sweep`).
    """
    names = list(scenarios) if scenarios is not None else sorted(SCENARIO_REGISTRY)
    for name in names:
        get_scenario(name)  # fail fast with the list of valid names
    spec = SweepSpec.make(
        name="serving-comparison",
        evaluator="serving-scenario",
        axes={"scenario": tuple(names), "mode": ("colocated", "disaggregated")},
        base={"seed": seed},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = ServingComparisonResult(seed=seed)
    for point, row in sweep:
        scenario = get_scenario(str(point["scenario"]))
        result.rows.append(
            ServingComparisonRow(
                scenario=scenario.name,
                mode=str(point["mode"]),
                model=scenario.model,
                num_gpus=scenario.num_gpus,
                metrics=serving_metrics_from_result(row),
                preemptions=int(row["preemptions"]),
            )
        )
    return result
