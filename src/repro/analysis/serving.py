"""Serving comparison table: colocated vs disaggregated across scenarios.

The serving analogue of the scheme-comparison tables: every registered
scenario is simulated under both deployments and the SLO-relevant headline
numbers are tabulated side by side.  The table makes the
prefill/decode-disaggregation tradeoff visible in one place — lower tail
TTFT (the prefill pool is never throttled to protect decode latency) bought
with higher TPOT (the decode pool is a fraction of the fleet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..serving.metrics import ServingMetrics
from ..serving.scenarios import SCENARIO_REGISTRY, get_scenario, run_scenario
from .report import format_percent, render_table

__all__ = ["ServingComparisonRow", "ServingComparisonResult", "serving_comparison"]


@dataclass(frozen=True)
class ServingComparisonRow:
    scenario: str
    mode: str
    model: str
    num_gpus: int
    metrics: ServingMetrics
    preemptions: int


@dataclass
class ServingComparisonResult:
    seed: int
    rows: List[ServingComparisonRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "mode",
                "TTFT p50",
                "TTFT p99",
                "TPOT p50",
                "goodput",
                "KV util",
                "preempt",
            ],
            [
                (
                    row.scenario,
                    row.mode,
                    f"{row.metrics.ttft_p50:.2f} s",
                    f"{row.metrics.ttft_p99:.2f} s",
                    f"{row.metrics.tpot_p50 * 1e3:.1f} ms",
                    format_percent(row.metrics.goodput_fraction),
                    format_percent(row.metrics.kv_utilization_mean),
                    row.preemptions,
                )
                for row in self.rows
            ],
            title=f"Serving — colocated vs disaggregated (seed {self.seed})",
        )


def serving_comparison(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ServingComparisonResult:
    """Simulate every (scenario, deployment) pair and tabulate the results."""
    names = list(scenarios) if scenarios is not None else sorted(SCENARIO_REGISTRY)
    result = ServingComparisonResult(seed=seed)
    for name in names:
        scenario = get_scenario(name)
        for mode in ("colocated", "disaggregated"):
            run = run_scenario(scenario, mode, seed=seed)
            result.rows.append(
                ServingComparisonRow(
                    scenario=name,
                    mode=mode,
                    model=scenario.model,
                    num_gpus=scenario.num_gpus,
                    metrics=run.metrics,
                    preemptions=run.preemptions,
                )
            )
    return result
