"""Serving comparison table: colocated vs disaggregated across scenarios.

The serving analogue of the scheme-comparison tables: every registered
scenario is simulated under both deployments and the SLO-relevant headline
numbers are tabulated side by side.  The table makes the
prefill/decode-disaggregation tradeoff visible in one place — lower tail
TTFT (the prefill pool is never throttled to protect decode latency) bought
with higher TPOT (the decode pool is a fraction of the fleet).

:func:`prefix_cache_comparison` is the same idea for shared-prefix KV
caching: each shared-prefix scenario simulated with caching on and off,
tabulating TTFT, goodput, hit rate and prefill FLOPs executed vs saved
(the ``experiments prefix-cache`` CLI table).

:func:`tenant_qos_comparison` is the multi-tenant analogue: each
tenant-tagged scenario simulated under FCFS and fair scheduling —
identical trace, only the policy flipped — with one row per (policy,
tenant) so the isolation a fair scheduler buys (and the tail latency FCFS
costs the interactive tenant) is visible per tenant, not blended away in
the aggregate (the ``experiments tenant-qos`` CLI table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..serving.metrics import ServingMetrics
from ..serving.scenarios import SCENARIO_REGISTRY, get_scenario
from ..sweep.cache import SweepCache
from ..sweep.engine import run_sweep
from ..sweep.evaluators import serving_metrics_from_result
from ..sweep.spec import SweepSpec
from .report import format_percent, render_table

__all__ = [
    "ServingComparisonRow",
    "ServingComparisonResult",
    "serving_comparison",
    "PrefixCacheComparisonRow",
    "PrefixCacheComparisonResult",
    "prefix_cache_comparison",
    "TenantQoSRow",
    "TenantQoSResult",
    "tenant_qos_comparison",
]

#: Default scenario set for the multi-tenant QoS comparison.
TENANT_SCENARIOS = (
    "noisy-neighbour",
    "tenant-flash-crowd",
    "batch-backfill-under-interactive",
)


@dataclass(frozen=True)
class ServingComparisonRow:
    scenario: str
    mode: str
    model: str
    num_gpus: int
    metrics: ServingMetrics
    preemptions: int


@dataclass
class ServingComparisonResult:
    seed: int
    rows: List[ServingComparisonRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "mode",
                "TTFT p50",
                "TTFT p99",
                "TPOT p50",
                "goodput",
                "KV util",
                "preempt",
            ],
            [
                (
                    row.scenario,
                    row.mode,
                    f"{row.metrics.ttft_p50:.2f} s",
                    f"{row.metrics.ttft_p99:.2f} s",
                    f"{row.metrics.tpot_p50 * 1e3:.1f} ms",
                    format_percent(row.metrics.goodput_fraction),
                    format_percent(row.metrics.kv_utilization_mean),
                    row.preemptions,
                )
                for row in self.rows
            ],
            title=f"Serving — colocated vs disaggregated (seed {self.seed})",
        )


@dataclass(frozen=True)
class PrefixCacheComparisonRow:
    scenario: str
    prefix_caching: bool
    ttft_p50: float
    ttft_p99: float
    goodput_fraction: float
    prefix_hit_rate: float
    prefill_flops_executed: float
    prefix_flops_saved: float
    prefix_evictions: int


@dataclass
class PrefixCacheComparisonResult:
    seed: int
    rows: List[PrefixCacheComparisonRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "prefix cache",
                "TTFT p50",
                "TTFT p99",
                "goodput",
                "hit rate",
                "prefill PFLOPs",
                "saved PFLOPs",
                "evictions",
            ],
            [
                (
                    row.scenario,
                    "on" if row.prefix_caching else "off",
                    f"{row.ttft_p50:.3f} s",
                    f"{row.ttft_p99:.3f} s",
                    format_percent(row.goodput_fraction),
                    format_percent(row.prefix_hit_rate),
                    f"{row.prefill_flops_executed / 1e15:.2f}",
                    f"{row.prefix_flops_saved / 1e15:.2f}",
                    row.prefix_evictions,
                )
                for row in self.rows
            ],
            title=f"Shared-prefix KV caching — on vs off (seed {self.seed})",
        )


def prefix_cache_comparison(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> PrefixCacheComparisonResult:
    """A/B every shared-prefix scenario with prefix caching on and off.

    The colocated deployment is simulated twice per scenario — identical
    trace, identical knobs, only ``prefix_caching`` flipped — and the
    SLO-relevant numbers plus the cache's own outcomes (hit rate, prefill
    FLOPs executed and saved, LRU evictions) are tabulated side by side.
    """
    names = (
        list(scenarios)
        if scenarios is not None
        else ["shared-system-prompt", "rag-shared-corpus", "agentic-prefix-tree"]
    )
    for name in names:
        get_scenario(name)  # fail fast with the list of valid names
    spec = SweepSpec.make(
        name="prefix-cache-comparison",
        evaluator="serving-scenario",
        axes={"scenario": tuple(names), "prefix_caching": (False, True)},
        base={"seed": seed, "mode": "colocated"},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = PrefixCacheComparisonResult(seed=seed)
    for point, row in sweep:
        result.rows.append(
            PrefixCacheComparisonRow(
                scenario=str(point["scenario"]),
                prefix_caching=bool(point["prefix_caching"]),
                ttft_p50=float(row["ttft_p50"]),
                ttft_p99=float(row["ttft_p99"]),
                goodput_fraction=float(row["goodput_fraction"]),
                prefix_hit_rate=float(row["prefix_hit_rate"]),
                prefill_flops_executed=float(row["prefill_flops_executed"]),
                prefix_flops_saved=float(row["prefix_flops_saved"]),
                prefix_evictions=int(row["prefix_evictions"]),
            )
        )
    return result


@dataclass(frozen=True)
class TenantQoSRow:
    scenario: str
    policy: str
    tenant: str
    num_requests: int
    ttft_p50: float
    ttft_p99: float
    tpot_p99: float
    slo_ttft: float
    goodput_fraction: float
    goodput_rps: float

    @property
    def ttft_within_slo(self) -> bool:
        return self.ttft_p99 <= self.slo_ttft


@dataclass
class TenantQoSResult:
    seed: int
    rows: List[TenantQoSRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "policy",
                "tenant",
                "requests",
                "TTFT p50",
                "TTFT p99",
                "TTFT SLO",
                "TPOT p99",
                "attainment",
                "goodput req/s",
            ],
            [
                (
                    row.scenario,
                    row.policy,
                    row.tenant,
                    row.num_requests,
                    f"{row.ttft_p50:.3f} s",
                    f"{row.ttft_p99:.3f} s",
                    ("ok" if row.ttft_within_slo else "MISS") + f" ({row.slo_ttft:g} s)",
                    f"{row.tpot_p99 * 1e3:.1f} ms",
                    format_percent(row.goodput_fraction),
                    f"{row.goodput_rps:.3f}",
                )
                for row in self.rows
            ],
            title=f"Per-tenant QoS — FCFS vs fair scheduling (seed {self.seed})",
        )


def tenant_qos_comparison(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> TenantQoSResult:
    """A/B every tenant-tagged scenario under FCFS and fair scheduling.

    The colocated deployment is simulated twice per scenario — identical
    trace and tenancy knobs, only the batching policy flipped — and the
    per-tenant SLO numbers are tabulated one row per (policy, tenant).
    The noisy-neighbour story reads straight off the table: under FCFS the
    interactive tenant's TTFT p99 blows through its SLO, under ``fair`` it
    stays inside while the batch tenant keeps backfilling.
    """
    names = list(scenarios) if scenarios is not None else list(TENANT_SCENARIOS)
    for name in names:
        get_scenario(name)  # fail fast with the list of valid names
    spec = SweepSpec.make(
        name="tenant-qos-comparison",
        evaluator="serving-scenario",
        axes={"scenario": tuple(names), "policy": ("fcfs", "fair")},
        base={"seed": seed, "mode": "colocated"},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = TenantQoSResult(seed=seed)
    for point, row in sweep:
        tenants = sorted(
            {key.split(".", 2)[1] for key in row if key.startswith("tenant.")}
        )
        for tenant in tenants:
            prefix = f"tenant.{tenant}."
            result.rows.append(
                TenantQoSRow(
                    scenario=str(point["scenario"]),
                    policy=str(point["policy"]),
                    tenant=tenant,
                    num_requests=int(row[prefix + "num_requests"]),
                    ttft_p50=float(row[prefix + "ttft_p50"]),
                    ttft_p99=float(row[prefix + "ttft_p99"]),
                    tpot_p99=float(row[prefix + "tpot_p99"]),
                    slo_ttft=float(row[prefix + "slo_ttft"]),
                    goodput_fraction=float(row[prefix + "goodput_fraction"]),
                    goodput_rps=float(row[prefix + "goodput_rps"]),
                )
            )
    return result


def serving_comparison(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> ServingComparisonResult:
    """Simulate every (scenario, deployment) pair and tabulate the results.

    Runs as a sweep over (scenario, mode): ``workers > 1`` simulates the
    pairs in parallel processes and ``cache`` memoizes per-pair metrics
    (see :mod:`repro.sweep`).
    """
    names = list(scenarios) if scenarios is not None else sorted(SCENARIO_REGISTRY)
    for name in names:
        get_scenario(name)  # fail fast with the list of valid names
    spec = SweepSpec.make(
        name="serving-comparison",
        evaluator="serving-scenario",
        axes={"scenario": tuple(names), "mode": ("colocated", "disaggregated")},
        base={"seed": seed},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = ServingComparisonResult(seed=seed)
    for point, row in sweep:
        scenario = get_scenario(str(point["scenario"]))
        result.rows.append(
            ServingComparisonRow(
                scenario=scenario.name,
                mode=str(point["mode"]),
                model=scenario.model,
                num_gpus=scenario.num_gpus,
                metrics=serving_metrics_from_result(row),
                preemptions=int(row["preemptions"]),
            )
        )
    return result
