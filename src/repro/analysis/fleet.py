"""Fleet comparison table: routing policies across fleet scenarios.

The cluster-level analogue of :mod:`repro.analysis.serving`: each selected
fleet scenario is simulated under each routing policy and the operator-facing
headline numbers — goodput under SLO, tail TTFT, GPU-hours and dollar cost,
failover re-routes — are tabulated side by side.  The table is where the
routing tradeoff becomes visible in one place: round-robin keeps up on
uniform chat traffic but loses its tail the moment 32K prefills land
unevenly, while the token- and KV-aware policies buy their lower p99 with no
extra GPU-hours (same fleet, same trace — only the assignment differs).

Runs as a sweep over (scenario, router): ``workers > 1`` simulates the pairs
in parallel processes and ``cache`` memoizes per-pair metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..fleet.router import available_routers
from ..fleet.scenarios import FLEET_SCENARIO_REGISTRY, get_fleet_scenario
from ..sweep.cache import SweepCache
from ..sweep.engine import run_sweep
from ..sweep.spec import Scalar, SweepSpec
from .report import format_percent, render_table

__all__ = ["FleetComparisonRow", "FleetComparisonResult", "fleet_comparison"]


@dataclass(frozen=True)
class FleetComparisonRow:
    scenario: str
    router: str
    ttft_p50: float
    ttft_p99: float
    goodput_fraction: float
    gpu_hours: float
    cost_usd: float
    replicas_peak: int
    rerouted_requests: int
    preemptions: int


@dataclass
class FleetComparisonResult:
    seed: int
    rows: List[FleetComparisonRow] = field(default_factory=list)

    def to_text(self) -> str:
        return render_table(
            [
                "scenario",
                "router",
                "TTFT p50",
                "TTFT p99",
                "goodput",
                "GPU-hours",
                "cost",
                "peak replicas",
                "rerouted",
                "preempt",
            ],
            [
                (
                    row.scenario,
                    row.router,
                    f"{row.ttft_p50:.2f} s",
                    f"{row.ttft_p99:.2f} s",
                    format_percent(row.goodput_fraction),
                    f"{row.gpu_hours:.2f}",
                    f"${row.cost_usd:.2f}",
                    row.replicas_peak,
                    row.rerouted_requests,
                    row.preemptions,
                )
                for row in self.rows
            ],
            title=f"Fleet — routing policy x scenario (seed {self.seed})",
        )


def fleet_comparison(
    scenarios: Optional[Sequence[str]] = None,
    routers: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> FleetComparisonResult:
    """Simulate every (scenario, router) pair and tabulate the results."""
    names = list(scenarios) if scenarios is not None else sorted(FLEET_SCENARIO_REGISTRY)
    for name in names:
        get_fleet_scenario(name)  # fail fast with the list of valid names
    policies = list(routers) if routers is not None else available_routers()
    spec = SweepSpec.make(
        name="fleet-comparison",
        evaluator="fleet-scenario",
        axes={"scenario": tuple(names), "router": tuple(policies)},
        base={"seed": seed},
    )
    sweep = run_sweep(spec, workers=workers, cache=cache)
    result = FleetComparisonResult(seed=seed)
    for point, row in sweep:
        result.rows.append(
            FleetComparisonRow(
                scenario=str(point["scenario"]),
                router=str(point["router"]),
                ttft_p50=float(row["ttft_p50"]),
                ttft_p99=float(row["ttft_p99"]),
                goodput_fraction=float(row["goodput_fraction"]),
                gpu_hours=float(row["gpu_hours"]),
                cost_usd=float(row["cost_usd"]),
                replicas_peak=int(row["replicas_peak"]),
                rerouted_requests=int(row["rerouted_requests"]),
                preemptions=int(row["preemptions"]),
            )
        )
    return result
