"""Text renderers for the observability layer's outputs.

The :mod:`repro.obs` primitives return plain data (event streams, phase
profiles, burn windows); this module turns them into the aligned tables the
CLI prints, following the same :func:`~repro.analysis.report.render_table`
discipline as the serving and fleet reports.
"""

from __future__ import annotations

from typing import List, Tuple

from ..obs.events import CLUSTER_TRACK, EventRecorder
from ..obs.profile import PhaseProfiler
from .report import format_percent, render_table

__all__ = ["event_summary_rows", "event_summary_table", "profile_rows", "profile_table"]


def event_summary_rows(recorder: EventRecorder) -> List[Tuple[str, int]]:
    """(kind, count) rows sorted by count descending, kind ascending."""
    counts = recorder.counts()
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def event_summary_table(recorder: EventRecorder, title: str = "recorded events") -> str:
    """Aligned per-kind event counts plus the recorded track labels."""
    rows = event_summary_rows(recorder)
    table = render_table(["event", "count"], rows, title=title)
    tracks = ", ".join(
        name for track, name in sorted(recorder.track_names.items()) if track != CLUSTER_TRACK
    )
    footer = f"{len(recorder)} events on {len(recorder.track_names)} tracks"
    if tracks:
        footer += f" ({tracks})"
    return table + footer + "\n"


def profile_rows(profiler: PhaseProfiler) -> List[Tuple[str, int, str, str]]:
    """(phase, calls, seconds, share) rows, largest total first."""
    return [
        (phase, calls, f"{seconds:.4f}s", format_percent(fraction))
        for phase, calls, seconds, fraction in profiler.rows()
    ]


def profile_table(profiler: PhaseProfiler, title: str = "simulator self-profile") -> str:
    """Aligned wall-clock-per-phase table of one observed run."""
    if not profiler.phases:
        return f"{title}: no phases metered (the run recorded no work)\n"
    table = render_table(["phase", "calls", "wall-clock", "share"], profile_rows(profiler), title=title)
    return table + f"metered total {profiler.total_seconds():.4f}s\n"
