"""Text renderers for the observability layer's outputs.

The :mod:`repro.obs` primitives return plain data (event streams, phase
profiles, burn windows); this module turns them into the aligned tables the
CLI prints, following the same :func:`~repro.analysis.report.render_table`
discipline as the serving and fleet reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..obs.anomaly import Anomaly
from ..obs.attribution import RunDiff, TailAttribution, tail_attribution
from ..obs.critical_path import RequestAttribution
from ..obs.events import CLUSTER_TRACK, EventRecorder
from ..obs.profile import PhaseProfiler
from .report import format_percent, render_table

__all__ = [
    "event_summary_rows",
    "event_summary_table",
    "profile_rows",
    "profile_table",
    "attribution_rows",
    "attribution_table",
    "diff_rows",
    "diff_table",
    "anomaly_rows",
    "anomaly_table",
]


def event_summary_rows(recorder: EventRecorder) -> List[Tuple[str, int]]:
    """(kind, count) rows sorted by count descending, kind ascending."""
    counts = recorder.counts()
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def event_summary_table(recorder: EventRecorder, title: str = "recorded events") -> str:
    """Aligned per-kind event counts plus the recorded track labels."""
    rows = event_summary_rows(recorder)
    table = render_table(["event", "count"], rows, title=title)
    tracks = ", ".join(
        name for track, name in sorted(recorder.track_names.items()) if track != CLUSTER_TRACK
    )
    footer = f"{len(recorder)} events on {len(recorder.track_names)} tracks"
    if tracks:
        footer += f" ({tracks})"
    return table + footer + "\n"


def profile_rows(profiler: PhaseProfiler) -> List[Tuple[str, int, str, str]]:
    """(phase, calls, seconds, share) rows, largest total first."""
    return [
        (phase, calls, f"{seconds:.4f}s", format_percent(fraction))
        for phase, calls, seconds, fraction in profiler.rows()
    ]


def profile_table(profiler: PhaseProfiler, title: str = "simulator self-profile") -> str:
    """Aligned wall-clock-per-phase table of one observed run."""
    if not profiler.phases:
        return f"{title}: no phases metered (the run recorded no work)\n"
    table = render_table(["phase", "calls", "wall-clock", "share"], profile_rows(profiler), title=title)
    return table + f"metered total {profiler.total_seconds():.4f}s\n"


def attribution_rows(tail: TailAttribution) -> List[Tuple[str, str, str, str]]:
    """(span, tail seconds, tail share, mean seconds) rows per span kind."""
    kinds = list(tail.totals)
    for kind in tail.mean:
        if kind not in tail.totals:
            kinds.append(kind)
    return [
        (
            kind,
            f"{tail.totals.get(kind, 0.0):.3f}s",
            format_percent(tail.shares.get(kind, 0.0)),
            f"{tail.mean.get(kind, 0.0):.3f}s",
        )
        for kind in kinds
    ]


def attribution_table(
    attributions: Dict[int, RequestAttribution],
    metric: str = "ttft",
    quantile: float = 99.0,
    title: str = "latency attribution",
) -> str:
    """Aligned tail-attribution table of one run's span breakdown."""
    tail = tail_attribution(attributions, metric=metric, quantile=quantile)
    table = render_table(
        [
            "span",
            f"p{quantile:g} tail",
            "tail share",
            "mean/request",
        ],
        attribution_rows(tail),
        title=f"{title} ({metric})",
    )
    footer = (
        f"p{tail.quantile:g} {tail.metric} = {tail.threshold:.3f}s over "
        f"{len(tail.request_ids)} tail request(s): "
        + ", ".join(f"{rid}" for rid in tail.request_ids[:8])
        + ("…" if len(tail.request_ids) > 8 else "")
    )
    return table + footer + "\n"


def diff_rows(diff: RunDiff) -> List[Tuple[str, str, str, str]]:
    """(span, baseline mean, current mean, delta) rows per span kind."""
    return [
        (
            kind,
            f"{diff.baseline_mean.get(kind, 0.0):.3f}s",
            f"{diff.current_mean.get(kind, 0.0):.3f}s",
            f"{delta:+.3f}s",
        )
        for kind, delta in diff.span_deltas.items()
    ]


def diff_table(diff: RunDiff, title: str = "run diff") -> str:
    """Aligned two-run diff: which span buckets moved the quantile."""
    table = render_table(
        ["span", "baseline mean", "current mean", "delta"],
        diff_rows(diff),
        title=f"{title} ({diff.metric} p{diff.quantile:g})",
    )
    dominant = diff.dominant()
    footer = (
        f"p{diff.quantile:g} {diff.metric}: {diff.baseline_value:.3f}s -> "
        f"{diff.current_value:.3f}s ({diff.delta:+.3f}s); "
        f"prefix-cache tokens/request {diff.baseline_prefix_tokens:.0f} -> "
        f"{diff.current_prefix_tokens:.0f}"
    )
    if dominant is not None:
        footer += f"; dominant shift: {dominant} ({diff.span_deltas[dominant]:+.3f}s)"
    return table + footer + "\n"


def anomaly_rows(anomalies: Sequence[Anomaly]) -> List[Tuple[str, str, str, str, str]]:
    """(time, kind, metric, observed vs baseline, severity) rows."""
    return [
        (
            f"{a.time:.1f}s",
            a.kind,
            a.metric,
            f"{a.value:.3f} vs {a.baseline:.3f}",
            f"{a.severity:.1f}",
        )
        for a in anomalies
    ]


def anomaly_table(anomalies: Sequence[Anomaly], title: str = "anomalies") -> str:
    """Aligned table of detected anomalies (empty-safe)."""
    if not anomalies:
        return f"{title}: none detected\n"
    table = render_table(
        ["time", "kind", "metric", "observed", "severity"],
        anomaly_rows(anomalies),
        title=title,
    )
    return table + f"{len(anomalies)} anomalies\n"
