"""SlimPipe reproduction: memory-thrifty fine-grained pipeline parallelism.

A from-scratch Python reproduction of *SlimPipe: Memory-Thrifty and Efficient
Pipeline Parallelism for Long-Context LLM Training* (SC 2025), built on three
substrates:

* an analytic + discrete-event **simulation stack** (``repro.model``,
  ``repro.hardware``, ``repro.schedules``, ``repro.sim``) that prices any
  pipeline schedule on a Hopper-class cluster,
* the **SlimPipe core** (``repro.core``): uniform slicing, the slice-level
  1F1B schedule, attention context exchange, vocabulary parallelism, the
  chunked KV cache, activation offloading and an end-to-end planner,
* a NumPy **numeric engine** (``repro.numerics``) that proves the sliced,
  exchanged, vocabulary-parallel execution computes exactly the gradients of
  an unsliced single-device reference,

plus the **system models** (``repro.systems``) and the **analysis layer**
(``repro.analysis``) that regenerate every table and figure of the paper's
evaluation, and the **serving simulator** (``repro.serving``): the
inference-side dual of the training stack — continuous batching with chunked
prefill, a paged KV-cache allocator built on the Section 5 chunked cache,
shared-prefix KV caching over a radix-tree block index, prefill/decode
disaggregation with comm-priced KV hand-off, and TTFT/TPOT/goodput metrics
over a registry of named scenarios (see the ``serve`` CLI subcommand).  See
README.md for the quickstart and subsystem map, and the ``docs/`` tree for
per-subsystem guides (``docs/architecture.md`` is the entry point).

Fleet layer (``repro.fleet``)
-----------------------------
One replica is a simulator; production is a *fleet*.  ``repro.fleet`` lifts
the serving simulator to cluster scale:

* **Cluster.**  ``FleetEngine`` runs many serving replicas — each its own
  continuous-batching pool, heterogeneous GPU types cycled across replica
  indices — on one discrete-event heap, metering replica-hours and dollars
  (``GPU_HOURLY_USD``).
* **Routing.**  Arrivals are assigned by a pluggable policy over observable
  replica snapshots: ``round-robin``, ``least-tokens`` (outstanding-token
  aware), ``session-affinity`` (sticky sessions), ``kv-aware`` (free paged-KV
  share).
* **Autoscaling.**  A reactive queue-depth policy and a predictive
  arrival-rate EWMA policy scale the fleet against configurable cold/warm
  provisioning latencies; scaled-down replicas drain before retiring.
* **Failures.**  Deterministic ``FailurePlan`` schedules crash replicas
  (queued and running requests re-route, full-context re-prefill on the
  survivor) and degrade slow nodes by an iteration-time multiplier.
* **Capacity planning.**  ``plan_capacity`` answers "how many replicas meet
  this TTFT-p99/goodput SLO at this load?" with a doubling ladder plus
  bisection, evaluated through the sweep engine (parallel + memoized).

``python -m repro.cli fleet run --scenario bursty-long`` simulates a named
fleet scenario; ``fleet plan --scenario bursty-long --slo-ttft-p99 2.0``
prints the capacity frontier and the chosen fleet; ``experiments fleet``
tabulates routing policies across scenarios.

Sweeps and goldens (``repro.sweep``)
------------------------------------
Every paper-scale experiment is a grid, and ``repro.sweep`` is the machine
that runs grids:

* **Sweep specs.**  A ``SweepSpec`` declares *axes* (lists of JSON scalars:
  model names, GPU counts, context lengths ``sequence_k``, scheme or
  scenario names), a *base* of fixed parameters merged into every point, and
  the name of a registered *evaluator* (``fig12-cell``, ``scheme-point``,
  ``serving-scenario``) that maps one point to a flat metrics dict.  Named
  specs live in ``repro.sweep.SWEEP_REGISTRY`` (``fig12``,
  ``scheme-context``, ``serving``); ``python -m repro.cli sweep list-axes``
  prints them.
* **Execution.**  ``run_sweep(spec, workers=N, cache=SweepCache())``
  expands the grid, prunes points whose model states provably exceed the
  cluster's aggregate memory, resolves the rest against the cache and fans
  the misses out over ``N`` worker processes in contiguous chunks
  (``workers <= 1`` stays in-process).  ``figure12_end_to_end`` and
  ``serving_comparison`` accept the same ``workers`` / ``cache`` knobs.
* **Cache location and invalidation.**  Results are memoized as JSON under
  ``$REPRO_SWEEP_CACHE_DIR`` (default ``~/.cache/repro-sweep``), one file
  per spec name, keyed by a stable hash of (evaluator, point) and stamped
  with a fingerprint over every modelled constant (GPU spec, estimator
  settings, model registry, scheme formulas, serving scenarios).  Changing
  any such constant invalidates the file wholesale; ``--no-cache`` bypasses
  memoization.
* **Goldens.**  ``repro.sweep.golden`` pins the headline numbers of every
  figure/table and the serving scenarios' TTFT/TPOT/goodput as JSON under
  ``tests/goldens/`` (same fingerprint stamp).  ``pytest tests -k golden``
  recomputes and diffs them within tolerance; after an intentional change,
  regenerate with ``python -m repro.cli sweep golden --regenerate`` and
  commit the rewritten files.

Performance: decode fast-forwarding
-----------------------------------
The serving and fleet engines fast-forward through *stable pure-decode
stretches* by default (``ServingConfig.fast_forward`` /
``FleetConfig.fast_forward``): when nothing is waiting, no prefill chunk is
in flight and neither a finishing request nor a KV-block shortfall is due,
the engines pre-validate the stretch analytically and execute it with
cached FLOPs component pairs and bulk paged-KV growth instead of a full
replan + reprice + reallocate per iteration.  The optimization is **exact**
— every timestamp, percentile and counter is bit-identical to the naive
one-iteration-at-a-time stepper (``fast_forward=False``, also exposed as
``--no-fast-forward`` on the ``serve`` and ``fleet run`` CLI commands), a
property the equivalence suite pins across every registered scenario — and
worth ~4-18x wall-clock on decode-heavy traffic (see the ``Performance``
section of README.md and the ``BENCH_serving.json`` / ``BENCH_fleet.json``
artifacts the benchmarks emit).  Iteration pricing is additionally memoized
on the exact batch composition, and latency percentiles are served from a
single-sort :class:`~repro.serving.metrics.PercentileSummary`.

Shared-prefix KV caching
------------------------
Real long-context fleets share huge prompt prefixes — chat system prompts,
RAG corpus documents, agent scaffolds — and recomputing them per request
wastes most prefill FLOPs.  With ``prefix_caching=True``
(:class:`~repro.serving.ServingConfig` / ``FleetConfig``, the
``--prefix-caching`` CLI flag, and on by default in the
``shared-system-prompt`` / ``rag-shared-corpus`` / ``agentic-prefix-tree``
scenarios):

* requests declare their shareable prompt head symbolically
  (``Request.prefix``, ordered ``(segment_id, tokens)`` pairs);
* the paged allocator backs the leading context blocks by a **radix tree**
  of published blocks (``repro.serving.prefix_cache``) with copy-on-write
  refcounts; admitted requests skip prefill for cached blocks (prefill
  FLOPs are priced only on the uncached suffix), and freshly prefilled
  prefix blocks are published for the next request;
* unreferenced shared blocks stay resident and are reclaimed **LRU-first**
  only under memory pressure — never while referenced, and always before a
  live request is preempted;
* at fleet scale the ``kv-aware`` and ``session-affinity`` routers observe
  per-replica **prefix-hit potential** and the ``arrival-rate`` autoscaler
  credits the **effective-capacity gain** ``1/(1 - hit_rate)``;
* metrics gain hit rate, hit tokens, saved prefill FLOPs and evictions
  (``experiments prefix-cache`` prints the on/off A/B table).

Everything stays exact: decode fast-forwarding composes with prefix caching
bit-identically, and with ``prefix_caching=False`` every simulated number is
byte-identical to the pre-prefix engines (pinned by goldens and the
equivalence suite).

Observability layer (``repro.obs``)
-----------------------------------
Opt-in, zero-cost-when-off instrumentation over both engines (see
``docs/observability.md``): a structured lifecycle **event recorder**
(``ServingConfig.observe`` / ``FleetConfig.observe``), a **Perfetto/Chrome
trace exporter** with per-pool tracks, request lifelines and counter
tracks, **windowed time series** backed by constant-memory P² quantile
sketches, an **SLO burn-rate monitor**, and a **self-profiler** metering
simulator wall-clock per engine phase — all surfaced through the
``serve`` / ``fleet run`` CLI flags ``--trace`` / ``--timeseries`` /
``--slo-report`` / ``--self-profile``.  With no recorder attached every
simulated number is byte-identical (pinned by the goldens and
``tests/test_obs_recorder.py``).
"""

from . import (
    analysis,
    core,
    fleet,
    hardware,
    model,
    numerics,
    obs,
    parallel,
    schedules,
    serving,
    sim,
    sweep,
    systems,
)
from .core import SlimPipeOptions, SlimPipePlanner, build_slimpipe_schedule
from .hardware import HOPPER_80GB, ClusterTopology, hopper_cluster
from .model import MODEL_REGISTRY, ModelConfig, get_model_config
from .parallel import ParallelConfig, WorkloadConfig
from .fleet import (
    FleetEngine,
    FleetScenario,
    get_fleet_scenario,
    plan_capacity,
    run_fleet_scenario,
)
from .serving import (
    DisaggregatedEngine,
    ServingEngine,
    ServingScenario,
    get_scenario,
    run_scenario,
)
from .systems import DeepSpeedSystem, MegatronSystem, SlimPipeSystem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "core",
    "hardware",
    "model",
    "numerics",
    "obs",
    "parallel",
    "schedules",
    "serving",
    "sim",
    "sweep",
    "systems",
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model_config",
    "ClusterTopology",
    "hopper_cluster",
    "HOPPER_80GB",
    "ParallelConfig",
    "WorkloadConfig",
    "build_slimpipe_schedule",
    "SlimPipePlanner",
    "SlimPipeOptions",
    "SlimPipeSystem",
    "MegatronSystem",
    "DeepSpeedSystem",
    "ServingEngine",
    "DisaggregatedEngine",
    "ServingScenario",
    "get_scenario",
    "run_scenario",
    "fleet",
    "FleetEngine",
    "FleetScenario",
    "get_fleet_scenario",
    "run_fleet_scenario",
    "plan_capacity",
]
