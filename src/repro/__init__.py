"""SlimPipe reproduction: memory-thrifty fine-grained pipeline parallelism.

A from-scratch Python reproduction of *SlimPipe: Memory-Thrifty and Efficient
Pipeline Parallelism for Long-Context LLM Training* (SC 2025), built on three
substrates:

* an analytic + discrete-event **simulation stack** (``repro.model``,
  ``repro.hardware``, ``repro.schedules``, ``repro.sim``) that prices any
  pipeline schedule on a Hopper-class cluster,
* the **SlimPipe core** (``repro.core``): uniform slicing, the slice-level
  1F1B schedule, attention context exchange, vocabulary parallelism, the
  chunked KV cache, activation offloading and an end-to-end planner,
* a NumPy **numeric engine** (``repro.numerics``) that proves the sliced,
  exchanged, vocabulary-parallel execution computes exactly the gradients of
  an unsliced single-device reference,

plus the **system models** (``repro.systems``) and the **analysis layer**
(``repro.analysis``) that regenerate every table and figure of the paper's
evaluation, and the **serving simulator** (``repro.serving``): the
inference-side dual of the training stack — continuous batching with chunked
prefill, a paged KV-cache allocator built on the Section 5 chunked cache,
prefill/decode disaggregation with comm-priced KV hand-off, and
TTFT/TPOT/goodput metrics over a registry of named scenarios (see the
``serve`` CLI subcommand).  See README.md for a tour and DESIGN.md for the
experiment index.
"""

from . import analysis, core, hardware, model, numerics, parallel, schedules, serving, sim, systems
from .core import SlimPipeOptions, SlimPipePlanner, build_slimpipe_schedule
from .hardware import HOPPER_80GB, ClusterTopology, hopper_cluster
from .model import MODEL_REGISTRY, ModelConfig, get_model_config
from .parallel import ParallelConfig, WorkloadConfig
from .serving import (
    DisaggregatedEngine,
    ServingEngine,
    ServingScenario,
    get_scenario,
    run_scenario,
)
from .systems import DeepSpeedSystem, MegatronSystem, SlimPipeSystem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "core",
    "hardware",
    "model",
    "numerics",
    "parallel",
    "schedules",
    "serving",
    "sim",
    "systems",
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model_config",
    "ClusterTopology",
    "hopper_cluster",
    "HOPPER_80GB",
    "ParallelConfig",
    "WorkloadConfig",
    "build_slimpipe_schedule",
    "SlimPipePlanner",
    "SlimPipeOptions",
    "SlimPipeSystem",
    "MegatronSystem",
    "DeepSpeedSystem",
    "ServingEngine",
    "DisaggregatedEngine",
    "ServingScenario",
    "get_scenario",
    "run_scenario",
]
