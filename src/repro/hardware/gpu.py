"""GPU device specifications.

The paper's cluster uses NVIDIA Hopper 80 GB GPUs with 400 GB/s per-GPU
NVLink and a 400 Gbps NIC per GPU (Section 6.1).  :data:`HOPPER_80GB`
captures those numbers; the efficiency knobs describe how far real kernels
fall short of peak and how quickly small workloads lose arithmetic intensity,
which drives Figure 11's "slices too short" regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..constants import GIB, UnknownNameError

__all__ = ["GPUSpec", "HOPPER_80GB", "AMPERE_80GB", "GPU_REGISTRY", "get_gpu_spec"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one accelerator.

    Attributes
    ----------
    peak_flops:
        Peak dense bf16 throughput in FLOP/s.
    memory_bytes:
        Usable HBM capacity in bytes.
    gemm_efficiency_forward / gemm_efficiency_backward:
        Achievable fraction of peak for large weight-bearing GEMMs.
    attention_efficiency_forward / attention_efficiency_backward:
        Achievable fraction of peak for the fused attention kernel.  Backward
        attention is notoriously lower, which is what breaks ZB-V's
        ``T_f = T_b = T_w`` assumption (Section 2.2).
    intensity_tokens:
        Token count at which a kernel reaches half of its asymptotic
        efficiency; shorter slices are increasingly launch/memory bound.
    kernel_launch_overhead:
        Fixed per-pass overhead in seconds (kernel launches, scheduling).
    host_offload_bandwidth:
        Device-to-host bandwidth available for activation offloading (bytes/s).
    """

    name: str
    peak_flops: float
    memory_bytes: float
    gemm_efficiency_forward: float = 0.62
    gemm_efficiency_backward: float = 0.58
    attention_efficiency_forward: float = 0.52
    attention_efficiency_backward: float = 0.37
    intensity_tokens: float = 512.0
    kernel_launch_overhead: float = 30e-6
    host_offload_bandwidth: float = 55.0 * GIB

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        for field_name in (
            "gemm_efficiency_forward",
            "gemm_efficiency_backward",
            "attention_efficiency_forward",
            "attention_efficiency_backward",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1], got {value}")

    @property
    def memory_gib(self) -> float:
        return self.memory_bytes / GIB


#: NVIDIA Hopper 80 GB (H800-class: 400 GB/s NVLink per GPU), as in Section 6.1.
HOPPER_80GB = GPUSpec(
    name="hopper-80gb",
    peak_flops=989e12,
    memory_bytes=80 * GIB,
)

#: An A100-class part, kept for sensitivity studies.
AMPERE_80GB = GPUSpec(
    name="ampere-80gb",
    peak_flops=312e12,
    memory_bytes=80 * GIB,
    gemm_efficiency_forward=0.55,
    gemm_efficiency_backward=0.52,
    attention_efficiency_forward=0.45,
    attention_efficiency_backward=0.33,
)

#: Named device specs, for layers (e.g. heterogeneous fleets) that resolve
#: accelerators declaratively.
GPU_REGISTRY: Dict[str, GPUSpec] = {
    spec.name: spec for spec in (HOPPER_80GB, AMPERE_80GB)
}


def get_gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU spec by name, listing the valid names on a miss."""
    try:
        return GPU_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown GPU {name!r}; available: {sorted(GPU_REGISTRY)}"
        ) from None

