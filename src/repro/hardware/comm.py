"""Communication cost model.

Bandwidth–latency (alpha–beta) models of the collectives and point-to-point
transfers used by hybrid-parallel LLM training.  Collective costs use the
standard ring-algorithm formulas; each is expressed per participating GPU so
that they compose directly with the per-device timeline of the simulator.

All sizes are in bytes, all times in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from .topology import ClusterTopology

__all__ = ["CommDomain", "CommModel"]


@dataclass(frozen=True)
class CommDomain:
    """A communication group characterised by its link type.

    ``bandwidth`` is the per-GPU bandwidth of the link the group runs over,
    ``latency`` the per-message latency, and ``size`` the number of ranks.
    """

    size: int
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("group size must be >= 1")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


class CommModel:
    """Estimate communication times over a :class:`ClusterTopology`."""

    def __init__(self, topology: ClusterTopology):
        self.topology = topology

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def domain(self, size: int, intra_node: bool) -> CommDomain:
        """Build a :class:`CommDomain` of ``size`` ranks on the chosen link."""
        topo = self.topology
        if intra_node and not topo.fits_in_node(size):
            raise ValueError(
                f"group of size {size} does not fit a {topo.gpus_per_node}-GPU node"
            )
        if intra_node:
            return CommDomain(size, topo.intra_node_bandwidth, topo.intra_node_latency)
        return CommDomain(size, topo.inter_node_bandwidth, topo.inter_node_latency)

    def pipeline_domain(self, pipeline_parallel_size: int, ranks_per_stage: int) -> CommDomain:
        """Domain linking adjacent pipeline stages.

        Adjacent stages sit ``ranks_per_stage`` global ranks apart; when that
        stride stays within one node the transfer rides NVLink, otherwise the
        NIC.  This mirrors the paper's deployment rule that TP/CP/EP stay
        inside a node while PP crosses nodes.
        """
        stride = ranks_per_stage
        intra = stride < self.topology.gpus_per_node
        return self.domain(pipeline_parallel_size, intra_node=intra and
                           self.topology.fits_in_node(pipeline_parallel_size * stride))

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def p2p_time(self, num_bytes: float, intra_node: bool) -> float:
        """One point-to-point transfer of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        topo = self.topology
        bandwidth = topo.intra_node_bandwidth if intra_node else topo.inter_node_bandwidth
        latency = topo.intra_node_latency if intra_node else topo.inter_node_latency
        return latency + num_bytes / bandwidth

    def p2p_time_between(self, num_bytes: float, rank_a: int, rank_b: int) -> float:
        """Point-to-point transfer between two specific global ranks."""
        if num_bytes <= 0 or rank_a == rank_b:
            return 0.0
        topo = self.topology
        return topo.latency_between(rank_a, rank_b) + num_bytes / topo.bandwidth_between(
            rank_a, rank_b
        )

    # ------------------------------------------------------------------
    # Collectives (ring algorithm, per-GPU time)
    # ------------------------------------------------------------------
    def all_reduce_time(self, num_bytes: float, domain: CommDomain) -> float:
        """Ring all-reduce of a ``num_bytes`` buffer over ``domain``."""
        g = domain.size
        if g <= 1 or num_bytes <= 0:
            return 0.0
        volume = 2.0 * (g - 1) / g * num_bytes
        return volume / domain.bandwidth + 2.0 * (g - 1) * domain.latency

    def all_gather_time(self, num_bytes: float, domain: CommDomain) -> float:
        """Ring all-gather producing ``num_bytes`` of gathered output per rank."""
        g = domain.size
        if g <= 1 or num_bytes <= 0:
            return 0.0
        volume = (g - 1) / g * num_bytes
        return volume / domain.bandwidth + (g - 1) * domain.latency

    def reduce_scatter_time(self, num_bytes: float, domain: CommDomain) -> float:
        """Ring reduce-scatter of a ``num_bytes`` input buffer per rank."""
        return self.all_gather_time(num_bytes, domain)

    def all_to_all_time(self, num_bytes: float, domain: CommDomain) -> float:
        """All-to-all where each rank exchanges ``num_bytes`` in total."""
        g = domain.size
        if g <= 1 or num_bytes <= 0:
            return 0.0
        volume = (g - 1) / g * num_bytes
        return volume / domain.bandwidth + (g - 1) * domain.latency

    def broadcast_time(self, num_bytes: float, domain: CommDomain) -> float:
        """Pipeline/ring broadcast of ``num_bytes`` from one rank to the group."""
        if domain.size <= 1 or num_bytes <= 0:
            return 0.0
        return num_bytes / domain.bandwidth + (domain.size - 1) * domain.latency

    def scalar_sync_time(self, domain: CommDomain, num_scalars: int = 4) -> float:
        """Synchronise a handful of scalars (e.g. sharded-softmax statistics)."""
        if domain.size <= 1:
            return 0.0
        return self.all_reduce_time(8.0 * num_scalars, domain)
