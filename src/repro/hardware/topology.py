"""Cluster topology: nodes, GPUs, intra- and inter-node interconnects.

The evaluation cluster (Section 6.1) has 8 Hopper GPUs per node linked by
400 GB/s NVLink, plus one 400 Gbps NIC per GPU for inter-node traffic.  The
paper constrains TP, CP and EP to stay within a node while PP and DP may
cross nodes; :meth:`ClusterTopology.bandwidth_between` lets the communication
model pick the right link for any pair of global ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import GIB
from .gpu import GPUSpec, HOPPER_80GB

__all__ = ["ClusterTopology", "hopper_cluster"]


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster of identical multi-GPU nodes.

    Attributes
    ----------
    num_nodes:
        Number of nodes.
    gpus_per_node:
        GPUs in one NVLink domain.
    gpu:
        Per-GPU specification.
    intra_node_bandwidth:
        Per-GPU NVLink bandwidth in bytes/s.
    inter_node_bandwidth:
        Per-GPU network bandwidth in bytes/s (the 400 Gbps NIC ≈ 50 GB/s).
    intra_node_latency / inter_node_latency:
        Per-message latency in seconds.
    """

    num_nodes: int
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default=HOPPER_80GB)
    intra_node_bandwidth: float = 400.0 * GIB
    inter_node_bandwidth: float = 50.0 * GIB
    intra_node_latency: float = 3e-6
    inter_node_latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global GPU ``rank``."""
        if not 0 <= rank < self.total_gpus:
            raise ValueError(f"rank {rank} out of range [0, {self.total_gpus})")
        return rank // self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def bandwidth_between(self, rank_a: int, rank_b: int) -> float:
        """Point-to-point bandwidth between two global ranks (bytes/s)."""
        if rank_a == rank_b:
            return float("inf")
        if self.same_node(rank_a, rank_b):
            return self.intra_node_bandwidth
        return self.inter_node_bandwidth

    def latency_between(self, rank_a: int, rank_b: int) -> float:
        """Point-to-point latency between two global ranks (seconds)."""
        if rank_a == rank_b:
            return 0.0
        if self.same_node(rank_a, rank_b):
            return self.intra_node_latency
        return self.inter_node_latency

    def fits_in_node(self, group_size: int) -> bool:
        """Whether a parallel group of ``group_size`` GPUs fits one NVLink domain."""
        return group_size <= self.gpus_per_node


def hopper_cluster(num_gpus: int, gpus_per_node: int = 8) -> ClusterTopology:
    """Build the paper's Hopper cluster with ``num_gpus`` total GPUs."""
    if num_gpus % gpus_per_node != 0:
        raise ValueError(
            f"num_gpus ({num_gpus}) must be a multiple of gpus_per_node ({gpus_per_node})"
        )
    return ClusterTopology(num_nodes=num_gpus // gpus_per_node, gpus_per_node=gpus_per_node)
