"""Hardware substrate: GPU specs, cluster topology and communication costs."""

from .comm import CommDomain, CommModel
from .gpu import AMPERE_80GB, HOPPER_80GB, GPUSpec
from .topology import ClusterTopology, hopper_cluster

__all__ = [
    "GPUSpec",
    "HOPPER_80GB",
    "AMPERE_80GB",
    "ClusterTopology",
    "hopper_cluster",
    "CommModel",
    "CommDomain",
]
