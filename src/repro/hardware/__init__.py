"""Hardware substrate: GPU specs, cluster topology and communication costs."""

from .comm import CommDomain, CommModel
from .gpu import AMPERE_80GB, GPU_REGISTRY, HOPPER_80GB, GPUSpec, get_gpu_spec
from .topology import ClusterTopology, hopper_cluster

__all__ = [
    "GPUSpec",
    "HOPPER_80GB",
    "AMPERE_80GB",
    "GPU_REGISTRY",
    "get_gpu_spec",
    "ClusterTopology",
    "hopper_cluster",
    "CommModel",
    "CommDomain",
]
