"""Command-line interface for the SlimPipe reproduction.

Seven subcommands cover the library's main workflows without writing Python:

``plan``
    Grid-search the best hybrid-parallelism configuration of each training
    system (SlimPipe, Megatron-LM-like, DeepSpeed-like) for a model / GPU
    budget / context length — the procedure behind Figure 12's cells.

``schedule``
    Build a SlimPipe schedule, simulate one iteration and print its metrics,
    the per-device memory profile and an ASCII timeline; optionally export a
    Chrome trace.

``serve``
    Simulate an inference deployment (``repro.serving``) on a named scenario:
    continuous batching with chunked prefill and a paged KV cache, either
    colocated or prefill/decode-disaggregated, printing TTFT/TPOT
    percentiles, goodput under SLO, KV-cache utilization and prefix-cache
    hit rate; optionally compare both deployments side by side.  The
    observability flags — shared with ``fleet run`` — opt into the event
    recorder (:mod:`repro.obs`): ``--trace`` writes a Perfetto/Chrome trace
    with request lifelines and counter tracks, ``--timeseries`` a windowed
    TTFT/TPOT/goodput export, ``--slo-report`` prints the SLO burn-rate
    table and ``--self-profile`` the simulator's own wall-clock per engine
    phase.  The diagnosis flags build on the same recorder: ``--explain``
    prints the per-request critical-path attribution of the run's latency
    tail plus detected anomalies, ``--events PATH`` saves the raw stream as
    JSONL, ``--diff-against PATH`` explains which span buckets moved a
    latency quantile versus a previously saved stream, and
    ``--incident-report PATH`` writes the correlated anomaly/cluster-event
    postmortem (markdown, or JSON when the path ends in ``.json``).
    Decode fast-forwarding is on by
    default and exact (bit-identical metrics, several times faster);
    ``--no-fast-forward`` steps every iteration naively — useful only as the
    reference oracle.  ``--prefix-caching`` / ``--no-prefix-caching``
    override the scenario's shared-prefix KV caching default (the
    ``shared-system-prompt``, ``rag-shared-corpus`` and
    ``agentic-prefix-tree`` scenarios default it on), e.g.::

        python -m repro.cli serve --scenario shared-system-prompt
        python -m repro.cli serve --scenario shared-system-prompt --no-prefix-caching

    Multi-tenant scenarios (``noisy-neighbour``, ``tenant-flash-crowd``,
    ``batch-backfill-under-interactive``) print a per-tenant QoS table after
    the global metrics; ``--policy fair`` selects the weighted fair scheduler
    on any scenario, ``--tenant NAME`` filters the report to one tenant,
    ``--slo-class NAME`` swaps the global SLO for a named class, and
    ``--tenant-report PATH`` exports the per-tenant numbers as JSON::

        python -m repro.cli serve --scenario noisy-neighbour --tenant-report qos.json

``fleet``
    Drive the cluster-scale layer (``repro.fleet``): ``fleet run --scenario
    bursty-long --router least-tokens`` simulates a named fleet scenario —
    many serving replicas behind a routing policy, with autoscaling and
    failure injection — and prints latency/goodput metrics next to
    replica/GPU-hour/cost accounting; ``fleet plan --scenario bursty-long
    --slo-ttft-p99 2.0`` binary-searches the minimal (cheapest) replica
    count meeting the SLO through the sweep engine.  Like ``serve``, the
    cluster event loop fast-forwards stable decode stretches exactly
    (~10x wall-clock on decode-heavy fleets; ``--no-fast-forward`` on
    ``fleet run`` forces the naive stepper), which is what keeps the
    planner's dozens of full simulations per bisection cheap.  ``fleet run``
    also takes ``--prefix-caching`` / ``--no-prefix-caching`` to A/B
    per-replica shared-prefix KV caching (prefix-aware routing and the
    rate autoscaler's effective-capacity signal come with it).

``experiments``
    Regenerate a chosen paper experiment's data table (Figures 1-3, 6-14 and
    Tables 2-4), the serving comparison, the fleet routing comparison, the
    prefix-cache on/off comparison (``experiments prefix-cache``), the
    per-tenant FCFS-vs-fair QoS comparison (``experiments tenant-qos``), or
    a registered sweep, directly from the analysis layer.

``obs``
    Offline analysis of a saved event stream: ``obs explain events.jsonl``
    reloads a ``--events`` JSONL and prints the event summary, latency
    attribution, anomaly table and (optionally) the incident report —
    ``--diff-against`` works here too, so two saved runs can be compared
    without re-simulating either.

``sweep``
    Drive the declarative sweep engine (``repro.sweep``): ``sweep run
    --name fig12 --workers 4`` evaluates a registered grid over worker
    processes with on-disk memoization (``--no-cache`` / ``--cache-dir``
    control the cache), ``sweep list-axes`` prints every registered spec's
    axes, and ``sweep golden --check`` / ``--regenerate`` verifies or
    rewrites the golden-metrics files under ``tests/goldens/``.

Unknown model, experiment, scenario, sweep or golden names exit with status
2 and the list of valid names.  Run ``python -m repro.cli --help`` (or any
subcommand with ``--help``) for the full set of options.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import figures, tables
from .analysis.observability import (
    anomaly_table,
    attribution_table,
    diff_table,
    event_summary_table,
    profile_table,
)
from .analysis.report import format_bytes, format_percent, render_table
from .constants import UnknownNameError, tokens_from_k
from .core.planner import SlimPipeOptions, SlimPipePlanner
from .hardware.topology import hopper_cluster
from .model.config import MODEL_REGISTRY, get_model_config
from .obs import (
    EventRecorder,
    build_attributions,
    build_timeseries,
    burn_report,
    diff_attributions,
    incident_report,
    write_incident_report,
    write_perfetto,
)
from .parallel.config import ParallelConfig, WorkloadConfig
from .sim.trace import write_chrome_trace
from .systems import DeepSpeedSystem, MegatronSystem, SlimPipeSystem

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------------
def _cmd_plan(args: argparse.Namespace) -> int:
    model = get_model_config(args.model)
    cluster = hopper_cluster(args.gpus)
    sequence_length = tokens_from_k(args.context_k)
    workload = WorkloadConfig(
        sequence_length=sequence_length,
        tokens_per_iteration=max(int(args.tokens_per_iteration_m * 1024 * 1024), sequence_length),
    )
    systems = [
        SlimPipeSystem(allow_offload=args.allow_offload),
        MegatronSystem(),
        DeepSpeedSystem(),
    ]
    rows = []
    for system in systems:
        estimate = system.best_configuration(model, cluster, workload)
        if estimate.feasible:
            p = estimate.parallel
            rows.append(
                (
                    system.name,
                    format_percent(estimate.mfu),
                    f"{estimate.iteration_time:.1f} s",
                    f"{estimate.peak_memory_gib:.0f} GiB",
                    estimate.recompute.value,
                    f"t={p.t} c={p.c} d={p.d} e={p.e} p={p.p} v={p.v}"
                    + (f" n={p.num_slices}" if p.num_slices else ""),
                )
            )
        else:
            rows.append((system.name, estimate.reason, "-", "-", "-", "-"))
    print(
        render_table(
            ["system", "MFU", "iteration", "peak memory", "recompute", "configuration"],
            rows,
            title=(
                f"{model.name} | {args.gpus} GPUs | {args.context_k}K context | "
                f"{workload.global_batch_sequences} sequences/iteration"
            ),
        )
    )
    return 0


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------
def _cmd_schedule(args: argparse.Namespace) -> int:
    model = get_model_config(args.model)
    parallel = ParallelConfig(
        tensor_parallel_size=args.tensor_parallel,
        pipeline_parallel_size=args.pipeline_parallel,
        virtual_pipeline_size=args.virtual_stages,
        num_slices=args.slices or 4 * args.pipeline_parallel,
    )
    cluster = hopper_cluster(parallel.world_size)
    sequence_length = tokens_from_k(args.context_k)
    workload = WorkloadConfig(
        sequence_length=sequence_length,
        tokens_per_iteration=sequence_length * args.microbatches,
    )
    planner = SlimPipePlanner(
        model,
        cluster,
        parallel,
        workload,
        SlimPipeOptions(
            context_exchange=not args.no_context_exchange,
            vocab_parallel=not args.no_vocab_parallel,
        ),
    )
    execution = planner.run()
    metrics = execution.metrics
    print(f"schedule  : {execution.schedule.name}, {execution.schedule.total_passes()} passes")
    print(f"iteration : {metrics.iteration_time:.2f} s  (MFU {format_percent(metrics.mfu)}, "
          f"bubbles {format_percent(metrics.bubble_fraction)})")
    print(
        render_table(
            ["device", "model states", "peak activations", "peak total"],
            [
                (
                    profile.device,
                    format_bytes(profile.base_bytes),
                    format_bytes(profile.peak_activation_bytes),
                    format_bytes(profile.peak_bytes),
                )
                for profile in execution.memory_profiles
            ],
            title="per-device memory",
        )
    )
    if args.ascii_timeline:
        print(execution.timeline.render_ascii())
    if args.trace:
        path = write_chrome_trace(execution.timeline, args.trace)
        print(f"Chrome trace written to {path}")
    return 0


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------
def _serving_result_text(result, title: str) -> str:
    text = result.metrics.to_text(title=title)
    text += (
        f"iterations={result.iterations}  "
        f"kv-capacity={result.kv_capacity_tokens} tokens  "
        f"tokens admitted/prefilled/requeued="
        f"{result.tokens_admitted}/{result.tokens_prefilled}/"
        f"{result.tokens_preempted_requeued}\n"
    )
    return text


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import SCENARIO_REGISTRY, get_scenario, run_scenario

    if args.list:
        print("available scenarios:", ", ".join(sorted(SCENARIO_REGISTRY)))
        return 0
    try:
        return _run_serve(args, get_scenario, run_scenario)
    except ValueError as error:
        # Infeasible deployments (model does not fit the GPU count, request
        # exceeds the pool's KV capacity, bad GPU count) are user input
        # errors here, not bugs — report them cleanly.
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_serve(args: argparse.Namespace, get_scenario, run_scenario) -> int:
    scenario = get_scenario(args.scenario)
    model_name = args.model or scenario.model
    get_model_config(model_name)  # fail fast with the list of valid names
    if args.tenant is not None:
        if scenario.tenancy is None:
            raise ValueError(
                f"scenario {scenario.name!r} configures no tenants; "
                "--tenant needs a tenant-tagged scenario (e.g. noisy-neighbour)"
            )
        scenario.tenancy.get_tenant(args.tenant)  # exit 2 with valid names
    if args.slo_class is not None:
        from dataclasses import replace as _replace

        from .serving.tenancy import get_slo_class

        scenario = _replace(scenario, slo=get_slo_class(args.slo_class).slo)
    if args.compare:
        modes = ("colocated", "disaggregated")
    elif args.disaggregated:
        modes = ("disaggregated",)
    else:
        modes = ("colocated",)
    prefix_caching = None
    if args.prefix_caching:
        prefix_caching = True
    elif args.no_prefix_caching:
        prefix_caching = False
    retain_records = None
    if args.retain_records:
        retain_records = True
    elif args.no_retain_records:
        retain_records = False
    observing = _observing(args)
    for mode in modes:
        recorder = EventRecorder(profile=args.self_profile) if observing else None
        result = run_scenario(
            scenario,
            mode,
            model=model_name,
            num_gpus=args.gpus,
            seed=args.seed,
            policy=args.policy,
            fast_forward=not args.no_fast_forward,
            prefix_caching=prefix_caching,
            observe=recorder,
            retain_records=retain_records,
            max_requests=args.max_requests,
        )
        print(
            _serving_result_text(
                result,
                title=(
                    f"{scenario.name} | {model_name} | "
                    f"{args.gpus or scenario.num_gpus} GPUs | {mode} | seed {args.seed}"
                ),
            )
        )
        if result.tenant_metrics:
            from .serving.metrics import tenant_report_text

            tenants = result.tenant_metrics
            if args.tenant is not None:
                tenants = {
                    name: m for name, m in tenants.items() if name == args.tenant
                }
            print(
                tenant_report_text(
                    tenants, title=f"per-tenant QoS | {scenario.name} | {mode}"
                )
            )
        if args.tenant_report:
            path = _mode_suffixed(args.tenant_report, mode, len(modes) > 1)
            print(f"tenant report written to {_write_tenant_report(result, scenario, mode, args, path)}")
        attributions = anomalies = None
        if recorder is not None:
            attributions, anomalies = _diagnose(
                args,
                recorder,
                scenario.slo,
                label=f"{scenario.name} | {mode}",
                mode=mode,
                comparing=len(modes) > 1,
            )
        if args.trace:
            path = _mode_suffixed(args.trace, mode, len(modes) > 1)
            written = write_perfetto(
                recorder,
                path,
                timeline=result.timeline,
                anomalies=anomalies,
                attributions=attributions,
            )
            print(f"Perfetto trace written to {written}")
        if args.timeseries:
            path = _mode_suffixed(args.timeseries, mode, len(modes) > 1)
            series = build_timeseries(recorder, slo=scenario.slo)
            print(f"time series written to {series.write(path)}")
        if args.slo_report:
            report = burn_report(recorder, scenario.slo)
            print(report.to_text(title=f"SLO burn-rate | {scenario.name} | {mode}"))
        if args.self_profile:
            print(profile_table(recorder.profiler))
    return 0


def _write_tenant_report(result, scenario, mode: str, args, path: str) -> str:
    """Write the per-tenant QoS metrics as a JSON artifact (the CI schema)."""
    import json

    tenants = {}
    for name, m in sorted(result.tenant_metrics.items()):
        if args.tenant is not None and name != args.tenant:
            continue
        tenants[name] = {
            "num_requests": m.num_requests,
            "output_tokens": m.output_tokens,
            "good_requests": m.good_requests,
            "goodput_fraction": m.goodput_fraction,
            "goodput_rps": m.goodput_rps,
            "ttft_p50": m.ttft_p50,
            "ttft_p95": m.ttft_p95,
            "ttft_p99": m.ttft_p99,
            "tpot_p50": m.tpot_p50,
            "tpot_p95": m.tpot_p95,
            "tpot_p99": m.tpot_p99,
            "slo_ttft": m.slo.ttft,
            "slo_tpot": m.slo.tpot,
        }
    payload = {
        "scenario": scenario.name,
        "mode": mode,
        "seed": args.seed,
        "policy": args.policy or scenario.batcher.policy,
        "tenants": tenants,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path


def _mode_suffixed(path: str, mode: str, comparing: bool) -> str:
    """``out.json`` -> ``out.colocated.json`` when writing both modes."""
    if not comparing:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{mode}{ext}"


def _observing(args: argparse.Namespace) -> bool:
    """True when any observability/diagnosis flag needs the event recorder."""
    return bool(
        args.trace
        or args.timeseries
        or args.slo_report
        or args.self_profile
        or args.explain
        or args.diff_against
        or args.incident_report
        or args.events
    )


def _load_events(path: str) -> EventRecorder:
    """Reload a ``--events`` JSONL, mapping file problems to user errors."""
    try:
        return EventRecorder.from_jsonl(path)
    except OSError as error:
        raise ValueError(f"cannot read event stream {path}: {error}")
    except (KeyError, ValueError) as error:
        raise ValueError(f"malformed event stream {path}: {error}")


def _diagnose(
    args: argparse.Namespace,
    recorder: EventRecorder,
    slo,
    label: str,
    mode: str = "",
    comparing: bool = False,
):
    """The shared ``serve`` / ``fleet run`` diagnosis exports.

    Returns ``(attributions, anomalies)`` so the Perfetto exporter can attach
    the anomaly marker track and per-request span breakdowns; each is ``None``
    when the corresponding diagnosis was not requested, which keeps a plain
    ``--trace`` export byte-identical to earlier releases.
    """
    attributions = anomalies = None
    if args.explain or args.diff_against:
        attributions = build_attributions(recorder)
    if args.explain:
        print(attribution_table(attributions, title=f"latency attribution | {label}"))
    if args.diff_against:
        baseline = build_attributions(_load_events(args.diff_against))
        diff = diff_attributions(baseline, attributions, metric="ttft", quantile=50.0)
        print(diff_table(diff, title=f"vs {args.diff_against} | {label}"))
    if args.explain or args.incident_report:
        report = incident_report(recorder, slo=slo, title=label)
        anomalies = report.anomalies
        if args.explain:
            print(anomaly_table(anomalies, title=f"anomalies | {label}"))
        if args.incident_report:
            path = _mode_suffixed(args.incident_report, mode, comparing)
            written = write_incident_report(report, path)
            print(
                f"incident report written to {written} "
                f"({len(report.incidents)} incident(s), {len(anomalies)} anomaly(ies))"
            )
    if args.events:
        path = _mode_suffixed(args.events, mode, comparing)
        print(f"event stream written to {recorder.to_jsonl(path)}")
    return attributions, anomalies


# ---------------------------------------------------------------------------
# fleet
# ---------------------------------------------------------------------------
def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from .fleet import FLEET_SCENARIO_REGISTRY, get_fleet_scenario, run_fleet_scenario

    if args.list:
        print("available fleet scenarios:", ", ".join(sorted(FLEET_SCENARIO_REGISTRY)))
        return 0
    scenario = get_fleet_scenario(args.scenario)
    prefix_caching = None
    if args.prefix_caching:
        prefix_caching = True
    elif args.no_prefix_caching:
        prefix_caching = False
    observing = _observing(args)
    recorder = EventRecorder(profile=args.self_profile) if observing else None
    try:
        result = run_fleet_scenario(
            scenario,
            router=args.router,
            replicas=args.replicas,
            seed=args.seed,
            load_scale=args.load_scale,
            autoscale=False if args.no_autoscale else None,
            with_failures=not args.no_failures,
            fast_forward=not args.no_fast_forward,
            prefix_caching=prefix_caching,
            observe=recorder,
        )
    except ValueError as error:
        # Infeasible deployments (model does not fit the replica's GPU
        # slice, request exceeds a replica's KV capacity) are user input
        # errors here, not bugs — report them cleanly.
        print(f"error: {error}", file=sys.stderr)
        return 2
    title = (
        f"{scenario.name} | {scenario.model} | "
        f"{args.replicas or scenario.initial_replicas} initial replicas x "
        f"{scenario.gpus_per_replica} GPUs | seed {args.seed}"
    )
    print(result.to_text(title=title))
    print(
        f"iterations={result.iterations}  "
        f"tokens admitted/prefilled/requeued="
        f"{result.tokens_admitted}/{result.tokens_prefilled}/"
        f"{result.tokens_preempted_requeued}"
    )
    attributions = anomalies = None
    if recorder is not None:
        try:
            attributions, anomalies = _diagnose(
                args, recorder, scenario.slo, label=scenario.name
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.trace:
        # Iteration spans are reconstructed from the recorded events (one
        # ITERATION per naive iteration, one STRETCH per coalesced decode
        # stretch), so no separate timeline collection is needed.
        written = write_perfetto(
            recorder, args.trace, anomalies=anomalies, attributions=attributions
        )
        print(f"Perfetto trace written to {written}")
    if args.timeseries:
        series = build_timeseries(recorder, slo=scenario.slo)
        print(f"time series written to {series.write(args.timeseries)}")
    if args.slo_report:
        report = burn_report(recorder, scenario.slo)
        print(report.to_text(title=f"SLO burn-rate | {scenario.name}"))
    if args.self_profile:
        print(profile_table(recorder.profiler))
    return 0


def _cmd_fleet_plan(args: argparse.Namespace) -> int:
    from .fleet import plan_capacity

    try:
        plan = plan_capacity(
            args.scenario,
            slo_ttft_p99=args.slo_ttft_p99,
            min_goodput=args.min_goodput,
            router=args.router,
            seed=args.seed,
            load_scale=args.load_scale,
            max_replicas=args.max_replicas,
            workers=args.workers,
            cache=_sweep_cache(args),
        )
    except ValueError as error:
        # Bad numeric inputs (negative SLO, zero replicas, bad load scale)
        # are user errors here, not bugs — report them cleanly.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(plan.to_text())
    return 0 if plan.feasible else 1


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------
def _sweep_cache(args: argparse.Namespace):
    from .sweep import SweepCache

    if args.no_cache:
        return None
    return SweepCache(directory=args.cache_dir)


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from .sweep import get_sweep_spec, run_sweep

    spec = get_sweep_spec(args.name)
    result = run_sweep(spec, workers=args.workers, cache=_sweep_cache(args))
    print(result.to_text())
    return 0


def _cmd_sweep_list_axes(args: argparse.Namespace) -> int:
    from .sweep import SWEEP_REGISTRY, get_sweep_spec

    names = [args.name] if args.name else sorted(SWEEP_REGISTRY)
    for name in names:
        print(get_sweep_spec(name).describe())
        print()
    return 0


def _cmd_sweep_golden(args: argparse.Namespace) -> int:
    from .sweep import (
        available_goldens,
        check_golden,
        get_golden_definition,
        record_golden,
    )

    names = args.names or available_goldens()
    for name in names:
        get_golden_definition(name)  # fail fast with the list of valid names
    if args.regenerate:
        for name in names:
            print(f"recorded {record_golden(name, directory=args.dir)}")
        return 0
    failures = 0
    for name in names:
        check = check_golden(name, directory=args.dir)
        print(check.report())
        failures += 0 if check.ok else 1
    if failures:
        print(f"{failures} of {len(names)} goldens failed", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# obs
# ---------------------------------------------------------------------------
def _cmd_obs_explain(args: argparse.Namespace) -> int:
    try:
        recorder = _load_events(args.events)
        baseline = _load_events(args.diff_against) if args.diff_against else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    label = os.path.basename(args.events)
    print(event_summary_table(recorder, title=f"recorded events | {label}"))
    attributions = build_attributions(recorder)
    print(
        attribution_table(
            attributions,
            quantile=args.quantile,
            title=f"latency attribution | {label}",
        )
    )
    if baseline is not None:
        diff = diff_attributions(
            build_attributions(baseline), attributions, metric="ttft", quantile=50.0
        )
        print(diff_table(diff, title=f"vs {os.path.basename(args.diff_against)} | {label}"))
    slo = None
    if args.slo_ttft is not None:
        from .serving.metrics import SLO

        slo = SLO(ttft=args.slo_ttft, tpot=args.slo_tpot)
    report = incident_report(recorder, slo=slo, title=label)
    print(anomaly_table(report.anomalies, title=f"anomalies | {label}"))
    if args.incident_report:
        written = write_incident_report(report, args.incident_report)
        print(
            f"incident report written to {written} "
            f"({len(report.incidents)} incident(s), {len(report.anomalies)} anomaly(ies))"
        )
    return 0


# ---------------------------------------------------------------------------
# experiments
# ---------------------------------------------------------------------------
def _experiment_registry() -> Dict[str, Callable[[], str]]:
    def _serving_comparison() -> str:
        from .analysis.serving import serving_comparison

        return serving_comparison(scenarios=("chat", "bursty-long")).to_text()

    def _sweep_experiment() -> str:
        from .sweep import get_sweep_spec, run_sweep

        return run_sweep(get_sweep_spec("scheme-context")).to_text()

    def _fleet_comparison() -> str:
        from .analysis.fleet import fleet_comparison

        return fleet_comparison(
            scenarios=("canary-chat", "unreliable"),
            routers=("round-robin", "least-tokens"),
        ).to_text()

    def _prefix_cache_comparison() -> str:
        from .analysis.serving import prefix_cache_comparison

        return prefix_cache_comparison().to_text()

    def _tenant_qos_comparison() -> str:
        from .analysis.serving import tenant_qos_comparison

        return tenant_qos_comparison().to_text()

    return {
        "serving": _serving_comparison,
        "sweep": _sweep_experiment,
        "fleet": _fleet_comparison,
        "prefix-cache": _prefix_cache_comparison,
        "tenant-qos": _tenant_qos_comparison,
        "fig1": lambda: figures.figure1_memory_footprint().to_text(),
        "fig2": lambda: figures.figure2_max_context().to_text(),
        "fig3": lambda: figures.figure3_bubble_fractions().to_text(),
        "fig4": lambda: figures.figure4_schedule_structure().to_text(),
        "fig5": lambda: figures.figure5_interleaved_schedule().to_text(),
        "fig6": lambda: figures.figure6_slices_sweep().to_text(),
        "fig7": lambda: figures.figure7_imbalance_bubbles().to_text(),
        "fig8": lambda: figures.figure8_context_exchange_plan().to_text(),
        "fig9": lambda: figures.figure9_vocab_parallel_bubble().to_text(),
        "fig10": lambda: figures.figure10_memory_scaling().to_text(),
        "fig11": lambda: figures.figure11_mfu_vs_slices().to_text(),
        "fig12": lambda: figures.figure12_end_to_end().to_text(),
        "fig13": lambda: figures.figure13_scheme_mfu().to_text(),
        "fig14": lambda: figures.figure14_scheme_memory().to_text(),
        "tab2": lambda: tables.render_table2(tables.table2_scheme_comparison()),
        "tab3": lambda: render_table(
            ["model", "L", "a", "g", "h", "H", "params (B)"],
            [
                (r.model, r.num_layers, r.num_heads, r.num_groups or "-", r.hidden_size, r.ffn_size, f"{r.params_billions:.1f}")
                for r in tables.table3_model_specifications()
            ],
            title="Table 3 — models used in evaluation",
        ),
        "tab4": lambda: tables.render_table4(tables.table4_ultra_long_context()),
    }


def _cmd_experiments(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.list:
        print("available experiments:", ", ".join(sorted(registry)))
        return 0
    names: List[str] = args.names or []
    if not names:
        print("nothing to do: pass experiment names (e.g. fig2 tab4) or --list", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {unknown}; use --list", file=sys.stderr)
        return 2
    for name in names:
        print(registry[name]())
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``serve`` / ``fleet run`` observability exports.

    Any of them turns the event recorder on for the run; none of them leaves
    the simulation's hot path untouched (and its numbers byte-identical).
    """
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Perfetto/Chrome trace JSON of the observed run",
    )
    parser.add_argument(
        "--timeseries",
        metavar="PATH",
        help="write windowed TTFT/TPOT/goodput/queue/KV time series JSON",
    )
    parser.add_argument(
        "--slo-report",
        action="store_true",
        help="print the windowed SLO burn-rate report",
    )
    parser.add_argument(
        "--self-profile",
        action="store_true",
        help="meter the simulator's own wall-clock per engine phase",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the latency-attribution and anomaly tables for the run",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help="write the raw event stream as JSONL (reload with `obs explain`)",
    )
    parser.add_argument(
        "--diff-against",
        metavar="PATH",
        help="diff this run's span breakdown against a saved --events JSONL",
    )
    parser.add_argument(
        "--incident-report",
        metavar="PATH",
        help=(
            "write the anomaly/cluster-event postmortem "
            "(markdown, or JSON when PATH ends in .json)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SlimPipe reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="grid-search the best configuration per system")
    plan.add_argument("--model", default="llama-13b", choices=sorted(MODEL_REGISTRY))
    plan.add_argument("--gpus", type=int, default=64)
    plan.add_argument("--context-k", type=int, default=256)
    plan.add_argument("--tokens-per-iteration-m", type=float, default=4.0)
    plan.add_argument("--allow-offload", action="store_true")
    plan.set_defaults(handler=_cmd_plan)

    schedule = subparsers.add_parser("schedule", help="simulate one SlimPipe iteration")
    schedule.add_argument("--model", default="llama-13b", choices=sorted(MODEL_REGISTRY))
    schedule.add_argument("--tensor-parallel", type=int, default=8)
    schedule.add_argument("--pipeline-parallel", type=int, default=4)
    schedule.add_argument("--virtual-stages", type=int, default=1)
    schedule.add_argument("--slices", type=int, default=None)
    schedule.add_argument("--context-k", type=int, default=128)
    schedule.add_argument("--microbatches", type=int, default=2)
    schedule.add_argument("--no-context-exchange", action="store_true")
    schedule.add_argument("--no-vocab-parallel", action="store_true")
    schedule.add_argument("--ascii-timeline", action="store_true")
    schedule.add_argument("--trace", metavar="PATH", help="write a Chrome trace JSON")
    schedule.set_defaults(handler=_cmd_schedule)

    serve = subparsers.add_parser(
        "serve", help="simulate an inference serving deployment on a scenario"
    )
    serve.add_argument("--scenario", default="chat", help="scenario name (see --list)")
    serve.add_argument("--model", default=None, help="override the scenario's model")
    serve.add_argument("--gpus", type=int, default=None, help="override the scenario's GPU count")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--policy",
        choices=("fcfs", "priority", "fair"),
        default=None,
        help="admission policy (fair = weighted per-tenant fair scheduling)",
    )
    serve.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="restrict the per-tenant QoS report to one tenant (must be "
        "configured by the scenario; unknown names exit 2)",
    )
    serve.add_argument(
        "--slo-class",
        default=None,
        metavar="NAME",
        help="override the scenario's global SLO with a named SLO class "
        "(interactive / batch / best-effort; unknown names exit 2)",
    )
    serve.add_argument(
        "--tenant-report",
        metavar="PATH",
        default=None,
        help="write the per-tenant QoS metrics as a JSON artifact",
    )
    deployment = serve.add_mutually_exclusive_group()
    deployment.add_argument(
        "--disaggregated",
        action="store_true",
        help="simulate the prefill/decode-disaggregated deployment",
    )
    deployment.add_argument(
        "--compare",
        action="store_true",
        help="simulate both deployments and print both metric tables",
    )
    _add_observability_flags(serve)
    serve.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="step every decode iteration naively (the slow reference oracle)",
    )
    prefix_group = serve.add_mutually_exclusive_group()
    prefix_group.add_argument(
        "--prefix-caching",
        action="store_true",
        help="force shared-prefix KV caching on (default: the scenario's setting)",
    )
    prefix_group.add_argument(
        "--no-prefix-caching",
        action="store_true",
        help="force shared-prefix KV caching off (the A/B baseline)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="truncate the workload to its first N requests (smoke-test a "
        "slice of a massive scenario without paying for the full trace)",
    )
    retain_group = serve.add_mutually_exclusive_group()
    retain_group.add_argument(
        "--retain-records",
        action="store_true",
        help="force per-request record retention on (default: the scenario's "
        "setting; massive-* scenarios stream with bounded memory)",
    )
    retain_group.add_argument(
        "--no-retain-records",
        action="store_true",
        help="fold finished requests into a bounded streaming accumulator "
        "and drop per-request state (colocated only)",
    )
    serve.add_argument("--list", action="store_true", help="list available scenarios")
    serve.set_defaults(handler=_cmd_serve)

    fleet = subparsers.add_parser(
        "fleet", help="simulate or capacity-plan a multi-replica serving fleet"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser("run", help="simulate a named fleet scenario")
    fleet_run.add_argument("--scenario", default="steady-chat", help="scenario name (see --list)")
    fleet_run.add_argument("--router", default=None, help="override the scenario's routing policy")
    fleet_run.add_argument(
        "--replicas", type=int, default=None, help="override the initial replica count"
    )
    fleet_run.add_argument("--seed", type=int, default=0, help="workload seed")
    fleet_run.add_argument(
        "--load-scale",
        type=float,
        default=1.0,
        help="compress arrivals by this factor (2.0 doubles the offered QPS)",
    )
    fleet_run.add_argument(
        "--no-autoscale", action="store_true", help="freeze the fleet at its initial size"
    )
    fleet_run.add_argument(
        "--no-failures", action="store_true", help="strip the scenario's failure plan"
    )
    _add_observability_flags(fleet_run)
    fleet_run.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="step every decode iteration naively (the slow reference oracle)",
    )
    fleet_prefix = fleet_run.add_mutually_exclusive_group()
    fleet_prefix.add_argument(
        "--prefix-caching",
        action="store_true",
        help="force per-replica shared-prefix KV caching on",
    )
    fleet_prefix.add_argument(
        "--no-prefix-caching",
        action="store_true",
        help="force per-replica shared-prefix KV caching off (the A/B baseline)",
    )
    fleet_run.add_argument("--list", action="store_true", help="list available fleet scenarios")
    fleet_run.set_defaults(handler=_cmd_fleet_run)

    fleet_plan = fleet_sub.add_parser(
        "plan", help="search the minimal replica count meeting an SLO"
    )
    fleet_plan.add_argument("--scenario", default="bursty-long", help="scenario name")
    fleet_plan.add_argument(
        "--slo-ttft-p99", type=float, required=True, help="TTFT p99 bound in seconds"
    )
    fleet_plan.add_argument(
        "--min-goodput", type=float, default=None, help="optional goodput-fraction floor"
    )
    fleet_plan.add_argument("--router", default=None, help="override the scenario's routing policy")
    fleet_plan.add_argument("--seed", type=int, default=0, help="workload seed")
    fleet_plan.add_argument(
        "--load-scale", type=float, default=1.0, help="offered-load multiplier"
    )
    fleet_plan.add_argument(
        "--max-replicas", type=int, default=None, help="search ceiling (default: scenario's)"
    )
    fleet_plan.add_argument(
        "--workers", type=int, default=0, help="worker processes for the ladder sweep"
    )
    fleet_plan.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    fleet_plan.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="cache directory (default: $REPRO_SWEEP_CACHE_DIR or ~/.cache/repro-sweep)",
    )
    fleet_plan.set_defaults(handler=_cmd_fleet_plan)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate paper experiment tables"
    )
    experiments.add_argument("names", nargs="*", help="experiment ids, e.g. fig2 fig12 tab4")
    experiments.add_argument("--list", action="store_true", help="list available experiments")
    experiments.set_defaults(handler=_cmd_experiments)

    obs = subparsers.add_parser("obs", help="offline analysis of saved event streams")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_explain = obs_sub.add_parser(
        "explain", help="attribution/anomaly/incident analysis of an --events JSONL"
    )
    obs_explain.add_argument("events", help="event stream JSONL written by --events")
    obs_explain.add_argument(
        "--diff-against",
        metavar="PATH",
        default=None,
        help="baseline event stream JSONL to diff this run against",
    )
    obs_explain.add_argument(
        "--quantile",
        type=float,
        default=99.0,
        help="tail quantile for the attribution table (default: 99)",
    )
    obs_explain.add_argument(
        "--slo-ttft",
        type=float,
        default=None,
        help="TTFT bound in seconds (enables SLO burn-rate anomaly detection)",
    )
    obs_explain.add_argument(
        "--slo-tpot",
        type=float,
        default=0.1,
        help="TPOT bound in seconds (used with --slo-ttft)",
    )
    obs_explain.add_argument(
        "--incident-report",
        metavar="PATH",
        default=None,
        help="also write the incident-report artifact",
    )
    obs_explain.set_defaults(handler=_cmd_obs_explain)

    sweep = subparsers.add_parser(
        "sweep", help="run declarative sweeps and manage golden metrics"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="run a registered sweep")
    sweep_run.add_argument("--name", default="scheme-context", help="sweep name (see list-axes)")
    sweep_run.add_argument(
        "--workers", type=int, default=0, help="worker processes (<=1 runs in-process)"
    )
    sweep_run.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    sweep_run.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="cache directory (default: $REPRO_SWEEP_CACHE_DIR or ~/.cache/repro-sweep)",
    )
    sweep_run.set_defaults(handler=_cmd_sweep_run)

    sweep_axes = sweep_sub.add_parser("list-axes", help="print the axes of registered sweeps")
    sweep_axes.add_argument("--name", default=None, help="restrict to one sweep")
    sweep_axes.set_defaults(handler=_cmd_sweep_list_axes)

    sweep_golden = sweep_sub.add_parser(
        "golden", help="check or regenerate the golden-metrics files"
    )
    sweep_golden.add_argument("names", nargs="*", help="golden names (default: all)")
    golden_mode = sweep_golden.add_mutually_exclusive_group()
    golden_mode.add_argument(
        "--check", action="store_true", help="recompute and diff (the default)"
    )
    golden_mode.add_argument(
        "--regenerate", action="store_true", help="rewrite the files instead of checking"
    )
    sweep_golden.add_argument(
        "--dir", metavar="PATH", default=None, help="goldens directory (default: tests/goldens)"
    )
    sweep_golden.set_defaults(handler=_cmd_sweep_golden)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also exposed as the ``slimpipe-repro`` console script).

    Registry misses (unknown model, scenario or experiment names) are turned
    into a non-zero exit with the list of valid names on stderr instead of an
    uncaught ``KeyError`` traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except UnknownNameError as error:
        # Registry misses: unknown model / scenario / serving-mode names.
        # (Deliberately narrow — a stray KeyError from a genuine bug should
        # keep its traceback.)
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
