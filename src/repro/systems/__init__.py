"""Training-system models: Megatron-LM-like, DeepSpeed-like and SlimPipe.

Each system grid-searches its own hybrid-parallelism space, picks the
cheapest activation-recomputation policy that fits memory and reports the
analytic MFU / iteration-time / memory estimate — reproducing the methodology
of the paper's end-to-end evaluation (Section 6.4)."""

from .base import (
    INFEASIBLE_NO_CONFIG,
    INFEASIBLE_OOM,
    SystemEstimate,
    TrainingSystem,
)
from .deepspeed import DeepSpeedSystem
from .estimator import AnalyticEstimator, EstimatorSettings
from .pipeline_systems import MegatronSystem, SchemeSystem, SlimPipeSystem

__all__ = [
    "SchemeSystem",
    "TrainingSystem",
    "SystemEstimate",
    "INFEASIBLE_OOM",
    "INFEASIBLE_NO_CONFIG",
    "AnalyticEstimator",
    "EstimatorSettings",
    "MegatronSystem",
    "DeepSpeedSystem",
    "SlimPipeSystem",
]
