"""Pipeline-parallel training systems: Megatron-LM-like and SlimPipe.

Both systems share the same skeleton — pick a hybrid-parallelism candidate,
choose the cheapest activation-recomputation policy that fits memory, price
the iteration analytically (compute + parallelism communication + pipeline
bubbles + data-parallel synchronisation) and report MFU — and differ exactly
where the paper says they differ:

==============================  =============================  =========================
aspect                          Megatron-LM (interleaved 1F1B)  SlimPipe
==============================  =============================  =========================
activation memory factor        ``1 + (p-1)/(v p)``             ``1/p + 2(p-1)/(n v p)``
bubble fraction                 ``(p-1)/(v m)``                 ``< (p-1)/(n v m)``
computational unit              one microbatch per stage        one sequence slice per stage
output layer / loss logits      last pipeline device            sharded over all devices
microbatch-count constraint     ``m % p == 0`` for ``v > 1``    none (works with ``m = 1``)
==============================  =============================  =========================

The SlimPipe system can additionally invoke the activation-offload planner
(Table 4) when even its thrifty activations exceed device memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..core.offload import OffloadPlanner
from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.memory import RecomputeMode
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..parallel.search import SearchSpace, candidate_parallel_configs
from ..schedules.formulas import activation_memory_factor, bubble_fraction_estimate
from .base import INFEASIBLE_OOM, SystemEstimate, TrainingSystem
from .estimator import AnalyticEstimator, EstimatorSettings

__all__ = ["MegatronSystem", "SlimPipeSystem", "SchemeSystem"]

#: Recomputation policies in order of preference (cheapest compute first).
_RECOMPUTE_LADDER = (RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL)


@dataclass(frozen=True)
class _MemoryBreakdown:
    model_states: float
    activations: float
    logits: float

    @property
    def total(self) -> float:
        return self.model_states + self.activations + self.logits


class _PipelineSystem(TrainingSystem):
    """Shared machinery of the two pipeline-parallel systems."""

    #: Set by subclasses.
    scheme: str = ""
    vocab_parallel: bool = False

    def __init__(
        self,
        settings: EstimatorSettings = EstimatorSettings(),
        search_space: SearchSpace = SearchSpace(),
    ):
        self.settings = settings
        self.search_space = search_space
        #: Recomputation policies tried in order; subclasses may narrow this.
        self.recompute_ladder = _RECOMPUTE_LADDER

    # ------------------------------------------------------------------
    # Hooks the two systems specialise
    # ------------------------------------------------------------------
    def _num_slices(self, parallel: ParallelConfig) -> int:
        return 1

    def _passes_per_microbatch(self, parallel: ParallelConfig) -> int:
        return parallel.virtual_pipeline_size * self._num_slices(parallel)

    def _vocab_shards(self, parallel: ParallelConfig) -> int:
        return parallel.pipeline_parallel_size if self.vocab_parallel else 1

    def _activation_factor(self, parallel: ParallelConfig, num_microbatches: int) -> float:
        return activation_memory_factor(
            self.scheme,
            parallel.pipeline_parallel_size,
            num_microbatches,
            self._num_slices(parallel),
            parallel.virtual_pipeline_size,
        )

    def _bubble_fraction(
        self,
        parallel: ParallelConfig,
        num_microbatches: int,
        attention_share: float,
    ) -> float:
        return bubble_fraction_estimate(
            self.scheme,
            parallel.pipeline_parallel_size,
            num_microbatches,
            self._num_slices(parallel),
            parallel.virtual_pipeline_size,
            attention_share,
        )

    def _extra_comm_per_microbatch(
        self,
        estimator: AnalyticEstimator,
        parallel: ParallelConfig,
        sequence_length: int,
    ) -> float:
        """System-specific communication not covered by the shared terms."""
        return 0.0

    def _memory_rescue(
        self,
        estimator: AnalyticEstimator,
        parallel: ParallelConfig,
        workload: WorkloadConfig,
        memory: _MemoryBreakdown,
        compute_per_slice: float,
    ) -> Optional[Tuple[_MemoryBreakdown, float, dict]]:
        """Last-resort memory mechanism (offloading); ``None`` = give up."""
        return None

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def candidate_configs(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
    ) -> Iterable[ParallelConfig]:
        return candidate_parallel_configs(
            model,
            cluster,
            workload,
            self.search_space,
            use_pipeline=True,
            use_virtual_stages=True,
            use_slices=self.scheme == "slimpipe",
            require_interleave_divisibility=self.scheme == "interleaved-1f1b",
        )

    # ------------------------------------------------------------------
    # Evaluation of one configuration
    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
        parallel: ParallelConfig,
    ) -> SystemEstimate:
        try:
            parallel.validate_against_model(model)
            num_microbatches = workload.num_microbatches(parallel)
        except ValueError:
            return self.infeasible(INFEASIBLE_OOM)

        estimator = AnalyticEstimator(model, cluster, self.settings)
        usable = estimator.usable_memory_bytes()
        sequence = workload.microbatch_tokens()
        vocab_shards = self._vocab_shards(parallel)
        model_states = estimator.model_state_bytes(parallel, vocab_parallel=self.vocab_parallel)

        chosen: Optional[RecomputeMode] = None
        memory: Optional[_MemoryBreakdown] = None
        for recompute in self.recompute_ladder:
            candidate = self._memory_breakdown(
                estimator, parallel, workload, recompute, model_states, vocab_shards, num_microbatches
            )
            if candidate.total <= usable:
                chosen, memory = recompute, candidate
                break

        offload_details: dict = {}
        offload_overhead = 0.0
        if chosen is None:
            # The paper's ultra-long-context path: selective checkpointing plus
            # PP-aware offloading (Section 6.5).  Only SlimPipe opts in.
            rescue_recompute = RecomputeMode.SELECTIVE
            candidate = self._memory_breakdown(
                estimator, parallel, workload, rescue_recompute, model_states, vocab_shards, num_microbatches
            )
            fwd_probe, bwd_probe = estimator.microbatch_compute_seconds(
                parallel,
                sequence,
                rescue_recompute,
                passes_per_microbatch=self._passes_per_microbatch(parallel),
                vocab_shards=vocab_shards,
                sequence_splits=self._num_slices(parallel),
            )
            per_slice_compute = (fwd_probe + bwd_probe) / self._passes_per_microbatch(parallel)
            rescued = self._memory_rescue(
                estimator, parallel, workload, candidate, per_slice_compute
            )
            if rescued is None:
                return self.infeasible(INFEASIBLE_OOM)
            memory, offload_overhead, offload_details = rescued
            chosen = rescue_recompute
            if memory.total > usable:
                return self.infeasible(INFEASIBLE_OOM)

        assert memory is not None and chosen is not None

        # ---------------- timing ----------------
        passes = self._passes_per_microbatch(parallel)
        forward, backward = estimator.microbatch_compute_seconds(
            parallel,
            sequence,
            chosen,
            passes_per_microbatch=passes,
            vocab_shards=vocab_shards,
            sequence_splits=self._num_slices(parallel),
        )
        comm = (
            estimator.tp_comm_seconds_per_microbatch(parallel, sequence)
            + estimator.cp_comm_seconds_per_microbatch(parallel, sequence)
            + estimator.ep_comm_seconds_per_microbatch(parallel, sequence)
            + estimator.pp_comm_seconds_per_microbatch(parallel, sequence, passes)
            + self._extra_comm_per_microbatch(estimator, parallel, sequence)
        )
        work_per_microbatch = forward + backward + comm
        attention_share = estimator.attention_share(sequence)
        bubble = self._bubble_fraction(parallel, num_microbatches, attention_share)
        busy = num_microbatches * work_per_microbatch
        iteration_time = busy / max(1e-9, 1.0 - bubble)
        iteration_time += estimator.dp_sync_seconds(parallel)
        iteration_time += offload_overhead

        sequences = workload.global_batch_sequences
        flops = estimator.model_flops_per_iteration(workload.sequence_length, sequences)
        mfu = flops / (iteration_time * cluster.total_gpus * cluster.gpu.peak_flops)

        details = {
            "forward_per_microbatch": forward,
            "backward_per_microbatch": backward,
            "comm_per_microbatch": comm,
            "attention_share": attention_share,
            "model_state_bytes": memory.model_states,
            "activation_bytes": memory.activations,
            "logits_bytes": memory.logits,
            "offload_overhead": offload_overhead,
        }
        details.update(offload_details)
        return SystemEstimate(
            system=self.name,
            feasible=True,
            parallel=parallel,
            recompute=chosen,
            num_microbatches=num_microbatches,
            iteration_time=iteration_time,
            mfu=mfu,
            peak_memory_bytes=memory.total,
            bubble_fraction=bubble,
            details=details,
        )

    # ------------------------------------------------------------------
    def _memory_breakdown(
        self,
        estimator: AnalyticEstimator,
        parallel: ParallelConfig,
        workload: WorkloadConfig,
        recompute: RecomputeMode,
        model_states: float,
        vocab_shards: int,
        num_microbatches: int,
    ) -> _MemoryBreakdown:
        sequence = workload.microbatch_tokens()
        m_a = estimator.microbatch_activation_bytes(parallel, sequence, recompute)
        factor = self._activation_factor(parallel, num_microbatches)
        activations = m_a * factor
        if recompute is RecomputeMode.FULL:
            # One layer block's worth of recomputed activations is transiently live.
            full_block = estimator.microbatch_activation_bytes(
                parallel, sequence, RecomputeMode.NONE
            ) / (self.model_blocks(parallel))
            activations += full_block / max(1, self._num_slices(parallel))
        logits = estimator.loss_logits_bytes(parallel, sequence, vocab_shards)
        if self._num_slices(parallel) > 1:
            # SlimPipe keeps logits only for the live slices of one microbatch.
            logits *= min(
                1.0,
                self._live_logit_slices(parallel) / self._num_slices(parallel),
            )
        return _MemoryBreakdown(
            model_states=model_states, activations=activations, logits=logits
        )

    def model_blocks(self, parallel: ParallelConfig) -> int:
        return parallel.total_stages

    def _live_logit_slices(self, parallel: ParallelConfig) -> int:
        return self._num_slices(parallel)


class SchemeSystem(_PipelineSystem):
    """A pipeline system driven by any of the Table 2 schemes by name.

    Used by the scheme-comparison experiments (Figures 2, 3, 13 and 14), where
    the parallelism is fixed by the experiment (e.g. 8-way TP, 8-way PP, full
    checkpointing) and only the pipeline schedule differs.  ``forced_recompute``
    pins the recomputation policy instead of letting the ladder choose, and
    ``num_slices`` applies to the sliced schemes (TeraPipe, SlimPipe).
    """

    def __init__(
        self,
        scheme: str,
        settings: EstimatorSettings = EstimatorSettings(),
        search_space: SearchSpace = SearchSpace(),
        forced_recompute: Optional[RecomputeMode] = None,
        num_slices: Optional[int] = None,
        vocab_parallel: Optional[bool] = None,
    ):
        super().__init__(settings, search_space)
        from ..schedules.formulas import SCHEME_FORMULAS  # local to avoid cycle at import

        if scheme not in SCHEME_FORMULAS:
            raise KeyError(f"unknown scheme {scheme!r}")
        self.scheme = scheme
        self.name = scheme
        self._slices_override = num_slices
        self.vocab_parallel = (
            vocab_parallel if vocab_parallel is not None else scheme == "slimpipe"
        )
        if forced_recompute is not None:
            self.recompute_ladder = (forced_recompute,)

    def _num_slices(self, parallel: ParallelConfig) -> int:
        from ..schedules.formulas import SCHEME_FORMULAS

        if not SCHEME_FORMULAS[self.scheme].uses_slices:
            return 1
        if self._slices_override is not None:
            return self._slices_override
        return parallel.num_slices or parallel.pipeline_parallel_size

    def candidate_configs(self, model, cluster, workload):
        from ..schedules.formulas import SCHEME_FORMULAS

        chars = SCHEME_FORMULAS[self.scheme]
        return candidate_parallel_configs(
            model,
            cluster,
            workload,
            self.search_space,
            use_pipeline=True,
            use_virtual_stages=chars.uses_virtual_stages,
            use_slices=chars.uses_slices,
            require_interleave_divisibility=self.scheme == "interleaved-1f1b",
        )

class MegatronSystem(_PipelineSystem):
    """Megatron-LM-like baseline: interleaved 1F1B + TP/SP + CP + EP + DP.

    The recompute ladder (none → selective → full) reproduces how the real
    system is driven in the paper's evaluation; the interleaved schedule's
    ``m % p == 0`` requirement limits scalability exactly as Section 6.4
    describes (candidates violating it fall back to plain 1F1B via ``v = 1``).
    """

    name = "megatron-lm"
    scheme = "interleaved-1f1b"
    vocab_parallel = False

    def _activation_factor(self, parallel: ParallelConfig, num_microbatches: int) -> float:
        scheme = "interleaved-1f1b" if parallel.virtual_pipeline_size > 1 else "1f1b"
        return activation_memory_factor(
            scheme,
            parallel.pipeline_parallel_size,
            num_microbatches,
            1,
            parallel.virtual_pipeline_size,
        )

    def _bubble_fraction(
        self, parallel: ParallelConfig, num_microbatches: int, attention_share: float
    ) -> float:
        scheme = "interleaved-1f1b" if parallel.virtual_pipeline_size > 1 else "1f1b"
        return bubble_fraction_estimate(
            scheme,
            parallel.pipeline_parallel_size,
            num_microbatches,
            1,
            parallel.virtual_pipeline_size,
            attention_share,
        )


class SlimPipeSystem(_PipelineSystem):
    """SlimPipe: slice-level 1F1B + context exchange + vocabulary parallelism.

    ``allow_offload`` additionally enables the PP-aware activation offloading
    of Section 6.5 as a last resort when even slice-level activations exceed
    memory — the mechanism behind Table 4's 2048K-4096K context lengths.
    """

    name = "slimpipe"
    scheme = "slimpipe"
    vocab_parallel = True

    def __init__(
        self,
        settings: EstimatorSettings = EstimatorSettings(),
        search_space: SearchSpace = SearchSpace(),
        allow_offload: bool = False,
        context_exchange: bool = True,
    ):
        super().__init__(settings, search_space)
        self.allow_offload = allow_offload
        self.context_exchange = context_exchange

    # ------------------------------------------------------------------
    def _num_slices(self, parallel: ParallelConfig) -> int:
        return parallel.num_slices or parallel.pipeline_parallel_size

    def _live_logit_slices(self, parallel: ParallelConfig) -> int:
        # At the last stage at most ~2(p-1)/v extra slices beyond one are live.
        return min(
            self._num_slices(parallel),
            1 + 2 * (parallel.pipeline_parallel_size - 1) // parallel.virtual_pipeline_size,
        )

    def _bubble_fraction(
        self, parallel: ParallelConfig, num_microbatches: int, attention_share: float
    ) -> float:
        bubble = super()._bubble_fraction(parallel, num_microbatches, attention_share)
        if not self.context_exchange:
            # Without context exchange the causal-attention imbalance adds
            # roughly half the attention time of the slice spread as idle time
            # (Figure 7); this is the ablation knob.
            imbalance = attention_share * (parallel.pipeline_parallel_size - 1) / (
                2.0 * self._num_slices(parallel)
            )
            bubble = min(0.95, bubble + imbalance)
        return bubble

    def _extra_comm_per_microbatch(
        self,
        estimator: AnalyticEstimator,
        parallel: ParallelConfig,
        sequence_length: int,
    ) -> float:
        # Early key-value exchange overlaps the context-exchange traffic with
        # compute (Section 5); the residual exposed cost is negligible and the
        # vocabulary-parallel broadcast is priced inside the output layer term.
        return 0.0

    def _memory_rescue(
        self,
        estimator: AnalyticEstimator,
        parallel: ParallelConfig,
        workload: WorkloadConfig,
        memory: _MemoryBreakdown,
        compute_per_slice: float,
    ):
        if not self.allow_offload:
            return None
        usable = estimator.usable_memory_bytes()
        budget = usable - memory.model_states - memory.logits
        if budget <= 0:
            return None
        planner = OffloadPlanner(estimator.cluster.gpu)
        slices = self._num_slices(parallel) * parallel.virtual_pipeline_size
        slice_bytes = memory.activations / max(1, slices)
        decision = planner.plan(
            peak_activation_bytes=memory.activations,
            budget_bytes=budget,
            slice_bytes=slice_bytes,
            slice_compute_seconds=compute_per_slice,
        )
        if not decision.feasible:
            return None
        rescued = _MemoryBreakdown(
            model_states=memory.model_states,
            activations=decision.resident_bytes,
            logits=memory.logits,
        )
        microbatches = workload.num_microbatches(parallel)
        overhead = decision.exposed_seconds_per_slice * slices * microbatches
        details = {"offload_ratio": decision.ratio}
        return rescued, overhead, details
