"""DeepSpeed-like baseline: ZeRO-3 model-state sharding + Ulysses sequence parallelism.

The paper's third system (Section 6.4) runs without pipeline parallelism:

* **Ulysses parallelism (UP)** splits the sequence across ``u`` ranks and
  re-shards to head-parallel layout around every attention call with
  all-to-alls.  ``u`` cannot exceed the number of KV heads — for the GQA
  models that is 8 query groups, the scalability ceiling the paper points out
  ("It cannot enlarge the UP size because there are only 8 query groups").
* **ZeRO (stage-3-like)** shards parameters, gradients and optimizer states
  across the remaining data-parallel ranks; parameters are gathered layer by
  layer for the forward and backward passes.
* Every data-parallel replica must receive at least one whole sequence per
  iteration, so a fixed token budget with long sequences caps the usable DP
  size — the "no viable configuration" cases of Figure 12.

The estimate machinery mirrors the pipeline systems: choose the cheapest
recompute policy that fits memory, then price compute + Ulysses all-to-alls +
ZeRO parameter traffic analytically.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.memory import RecomputeMode, activation_bytes_per_token_per_layer
from ..parallel.config import ParallelConfig, WorkloadConfig
from ..parallel.search import divisors
from .base import INFEASIBLE_NO_CONFIG, INFEASIBLE_OOM, SystemEstimate, TrainingSystem
from .estimator import AnalyticEstimator, EstimatorSettings

__all__ = ["DeepSpeedSystem"]

_RECOMPUTE_LADDER = (RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL)

#: Bytes per parameter of ZeRO-3-sharded model states (bf16 params + fp32
#: grads + fp32 master weights and Adam moments), divided by the shard group.
_ZERO_BYTES_PER_PARAM = 2.0 + 4.0 + 12.0


class DeepSpeedSystem(TrainingSystem):
    """ZeRO + Ulysses system model (the paper's DeepSpeed baseline)."""

    name = "deepspeed"

    def __init__(self, settings: EstimatorSettings = EstimatorSettings()):
        self.settings = settings

    # ------------------------------------------------------------------
    def candidate_configs(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
    ) -> Iterable[ParallelConfig]:
        """Enumerate Ulysses sizes; DP fills the remaining GPUs.

        The Ulysses size is carried in ``context_parallel_size`` (both split
        the sequence dimension); TP/PP stay at 1, which is how the paper runs
        DeepSpeed.
        """
        total = cluster.total_gpus
        head_limit = min(model.kv_groups, model.num_attention_heads)
        for u in divisors(model.num_attention_heads, head_limit):
            if total % u != 0:
                continue
            if workload.sequence_length % u != 0:
                continue
            d = total // u
            if workload.global_batch_sequences % d != 0:
                continue
            if workload.global_batch_sequences < d:
                continue
            yield ParallelConfig(
                tensor_parallel_size=1,
                context_parallel_size=u,
                data_parallel_size=d,
                expert_parallel_size=min(model.num_experts, d) if model.is_moe else 1,
                pipeline_parallel_size=1,
            )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
        parallel: ParallelConfig,
    ) -> SystemEstimate:
        estimator = AnalyticEstimator(model, cluster, self.settings)
        usable = estimator.usable_memory_bytes()
        u = parallel.context_parallel_size
        d = parallel.data_parallel_size
        sequence = workload.sequence_length
        sequences_per_rank = workload.global_batch_sequences // d
        if sequences_per_rank < 1:
            return self.infeasible(INFEASIBLE_NO_CONFIG)

        # ---------------- memory ----------------
        zero_group = d
        model_states = model.total_params() * _ZERO_BYTES_PER_PARAM / zero_group
        # Working copy of a few gathered layers (double-buffered prefetch).
        model_states += 2 * model.params_per_layer() * 2.0

        chosen: Optional[RecomputeMode] = None
        activations = 0.0
        for recompute in _RECOMPUTE_LADDER:
            per_token_layer = activation_bytes_per_token_per_layer(
                model, recompute=recompute, tensor_parallel_size=1,
                dtype=self.settings.activation_dtype,
            )
            act = per_token_layer * (sequence / u) * model.num_layers
            logits = (sequence / u) * 4.0 * model.vocab_size
            if model_states + act + logits <= usable:
                chosen, activations = recompute, act + logits
                break
        if chosen is None:
            return self.infeasible(INFEASIBLE_OOM)

        # ---------------- timing ----------------
        forward, backward = estimator.microbatch_compute_seconds(
            parallel,
            sequence,
            chosen,
            passes_per_microbatch=1,
            vocab_shards=1,
        )
        ulysses = estimator.ulysses_comm_seconds_per_microbatch(u, sequence)
        ep_comm = estimator.ep_comm_seconds_per_microbatch(parallel, sequence)
        per_sequence = forward + backward + ulysses + ep_comm
        iteration_time = sequences_per_rank * per_sequence
        iteration_time += estimator.zero3_param_traffic_seconds(zero_group)

        flops = estimator.model_flops_per_iteration(
            workload.sequence_length, workload.global_batch_sequences
        )
        mfu = flops / (iteration_time * cluster.total_gpus * cluster.gpu.peak_flops)
        return SystemEstimate(
            system=self.name,
            feasible=True,
            parallel=parallel,
            recompute=chosen,
            num_microbatches=sequences_per_rank,
            iteration_time=iteration_time,
            mfu=mfu,
            peak_memory_bytes=model_states + activations,
            bubble_fraction=0.0,
            details={
                "ulysses_comm_per_sequence": ulysses,
                "zero_param_traffic": estimator.zero3_param_traffic_seconds(zero_group),
                "forward_per_sequence": forward,
                "backward_per_sequence": backward,
            },
        )
