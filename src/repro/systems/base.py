"""Training-system abstraction and the estimate record it produces.

A *training system* (Megatron-LM-like, DeepSpeed-like, SlimPipe) answers one
question for a given model, cluster and workload: **what is the best training
efficiency it can reach, with which hybrid-parallelism configuration, and does
it fit in memory at all?**  This is exactly what the paper's end-to-end
evaluation (Figures 2, 12, 13, 14, Table 4) compares, with each system's
configuration "baked through grid search" (Section 6.4).

Every system implements

* :meth:`TrainingSystem.candidate_configs` — the hybrid-parallelism
  configurations it is willing to consider, and
* :meth:`TrainingSystem.evaluate` — the analytic estimate (time, memory,
  recompute policy, MFU) for one configuration,

and inherits :meth:`TrainingSystem.best_configuration`, the grid search that
keeps the feasible estimate with the highest MFU.  Infeasibility is reported
the way the paper's Figure 12 annotates it: ``"oom"`` when configurations
exist but none fits memory, ``"no-configuration"`` when the search space is
empty (e.g. the batch is too small for the required data parallelism).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.memory import RecomputeMode
from ..parallel.config import ParallelConfig, WorkloadConfig

__all__ = ["SystemEstimate", "TrainingSystem", "INFEASIBLE_OOM", "INFEASIBLE_NO_CONFIG"]

INFEASIBLE_OOM = "oom"
INFEASIBLE_NO_CONFIG = "no-configuration"


@dataclass(frozen=True)
class SystemEstimate:
    """Outcome of evaluating (or grid-searching) one system on one workload.

    ``feasible`` is ``False`` when the system cannot run the workload; then
    ``reason`` is :data:`INFEASIBLE_OOM` or :data:`INFEASIBLE_NO_CONFIG` and
    the numeric fields are zero.
    """

    system: str
    feasible: bool
    reason: str = ""
    parallel: Optional[ParallelConfig] = None
    recompute: Optional[RecomputeMode] = None
    num_microbatches: int = 0
    iteration_time: float = 0.0
    mfu: float = 0.0
    peak_memory_bytes: float = 0.0
    bubble_fraction: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / (1024**3)

    def describe(self) -> str:
        """One-line human-readable summary (used by examples and reports)."""
        if not self.feasible:
            return f"{self.system}: infeasible ({self.reason})"
        p = self.parallel
        assert p is not None
        cfg = f"t={p.t} c={p.c} d={p.d} e={p.e} p={p.p} v={p.v}"
        if p.num_slices:
            cfg += f" n={p.num_slices}"
        return (
            f"{self.system}: MFU {self.mfu * 100:.1f}%  "
            f"iter {self.iteration_time:.2f}s  mem {self.peak_memory_gib:.1f} GiB  "
            f"[{cfg}, recompute={self.recompute.value if self.recompute else '-'}]"
        )


def _infeasible(system: str, reason: str) -> SystemEstimate:
    return SystemEstimate(system=system, feasible=False, reason=reason)


class TrainingSystem(ABC):
    """Base class of the three systems compared in the evaluation."""

    #: Overridden by subclasses ("megatron-lm", "deepspeed", "slimpipe").
    name: str = "training-system"

    # ------------------------------------------------------------------
    @abstractmethod
    def candidate_configs(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
    ) -> Iterable[ParallelConfig]:
        """Hybrid-parallelism configurations the system will consider."""

    @abstractmethod
    def evaluate(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
        parallel: ParallelConfig,
    ) -> SystemEstimate:
        """Estimate time, memory and MFU of one configuration."""

    # ------------------------------------------------------------------
    def best_configuration(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        workload: WorkloadConfig,
    ) -> SystemEstimate:
        """Grid search: the feasible configuration with the highest MFU.

        Mirrors the paper's methodology ("their hybrid parallelism
        configurations are baked through grid search").
        """
        best: Optional[SystemEstimate] = None
        saw_candidate = False
        saw_oom = False
        for parallel in self.candidate_configs(model, cluster, workload):
            saw_candidate = True
            estimate = self.evaluate(model, cluster, workload, parallel)
            if not estimate.feasible:
                saw_oom = saw_oom or estimate.reason == INFEASIBLE_OOM
                continue
            if best is None or estimate.mfu > best.mfu:
                best = estimate
        if best is not None:
            return best
        if saw_candidate and saw_oom:
            return _infeasible(self.name, INFEASIBLE_OOM)
        return _infeasible(self.name, INFEASIBLE_NO_CONFIG)

    # ------------------------------------------------------------------
    def infeasible(self, reason: str) -> SystemEstimate:
        """Convenience for subclasses."""
        return _infeasible(self.name, reason)
