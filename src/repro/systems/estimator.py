"""Shared analytic estimator: compute, communication and memory building blocks.

The three training-system models (Megatron-LM-like, DeepSpeed-like, SlimPipe)
all price a configuration from the same ingredients:

* **compute** — per-device forward / backward / recompute time of one
  microbatch, derived from the FLOPs model and the GPU cost model, with the
  per-pass launch overhead and the arithmetic-intensity roll-off of short
  slices applied per computational unit;
* **communication** — alpha-beta costs of the collectives each parallelism
  dimension requires (tensor+sequence parallel all-gathers/reduce-scatters,
  context-parallel KV rings, expert-parallel all-to-alls, pipeline
  point-to-point, data-parallel gradient synchronisation, DeepSpeed-Ulysses
  all-to-alls and ZeRO parameter traffic);
* **memory** — model states after sharding, activation bytes per microbatch,
  fp32 loss logits, and the CUDA/NCCL reserve that is not available to the
  framework.

Every method documents the formula it implements so the system models stay
thin and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..constants import GIB, DType
from ..hardware.comm import CommModel
from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..model.costs import CostModel, PassKind
from ..model.flops import (
    FlopsBreakdown,
    layer_forward_flops,
    model_flops_per_iteration,
    output_layer_flops,
)
from ..model.memory import (
    ADAM_MIXED_PRECISION,
    OptimizerSpec,
    RecomputeMode,
    activation_bytes_per_token_per_layer,
    logits_bytes_per_token,
    model_state_bytes_per_device,
)
from ..parallel.config import ParallelConfig

__all__ = ["EstimatorSettings", "AnalyticEstimator"]


@dataclass(frozen=True)
class EstimatorSettings:
    """Tunable assumptions shared by every system model.

    Attributes
    ----------
    memory_reserve_bytes:
        HBM set aside for the CUDA context, NCCL buffers and allocator
        fragmentation; not available for model states or activations.
    dp_exposed_fraction:
        Fraction of the data-parallel gradient synchronisation that cannot be
        overlapped with the backward pass.
    zero_exposed_fraction:
        Fraction of ZeRO-3 parameter gathering that is exposed (DeepSpeed
        prefetches aggressively, so most of it hides behind compute).
    activation_dtype:
        Datatype of stored activations.
    """

    memory_reserve_bytes: float = 6.0 * GIB
    dp_exposed_fraction: float = 0.5
    tp_exposed_fraction: float = 0.6
    zero_exposed_fraction: float = 0.35
    activation_dtype: DType = DType.BF16
    optimizer: OptimizerSpec = ADAM_MIXED_PRECISION


class AnalyticEstimator:
    """Compute / communication / memory arithmetic for one (model, cluster)."""

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterTopology,
        settings: EstimatorSettings = EstimatorSettings(),
    ):
        self.model = model
        self.cluster = cluster
        self.settings = settings
        self.cost_model = CostModel(cluster.gpu)
        self.comm = CommModel(cluster)

    # ==================================================================
    # Compute
    # ==================================================================
    def attention_share(self, sequence_length: int) -> float:
        """Fraction of one sequence's forward FLOPs spent in the attention core.

        Grows towards 1 as the context length grows (quadratic attention vs
        linear GEMMs) — the regime where ZB-V's imbalance bubbles explode and
        SlimPipe's bubble bound tightens (Section 2.2, Table 2 footnotes).
        """
        per_layer = layer_forward_flops(self.model, sequence_length)
        total = per_layer.total * self.model.num_layers
        if total <= 0:
            return 0.0
        return per_layer.attention * self.model.num_layers / total

    def _device_share_flops(
        self, parallel: ParallelConfig, sequence_length: int
    ) -> FlopsBreakdown:
        """Per-device transformer-layer FLOPs of one microbatch's forward.

        The full model's layer FLOPs divided by tensor, context and pipeline
        parallelism (the output layer is accounted separately).
        """
        per_layer = layer_forward_flops(self.model, sequence_length)
        total = per_layer * self.model.num_layers
        share = 1.0 / (
            parallel.tensor_parallel_size
            * parallel.context_parallel_size
            * parallel.pipeline_parallel_size
        )
        return total * share

    def microbatch_compute_seconds(
        self,
        parallel: ParallelConfig,
        sequence_length: int,
        recompute: RecomputeMode,
        passes_per_microbatch: int = 1,
        vocab_shards: int = 1,
        include_output_layer: bool = True,
        sequence_splits: Optional[int] = None,
    ) -> Tuple[float, float]:
        """(forward, backward) seconds of one microbatch on one pipeline device.

        ``passes_per_microbatch`` is the number of computational units the
        microbatch is split into on one device (``v`` for interleaved 1F1B,
        ``n*v`` for SlimPipe): each pass pays the kernel-launch overhead.
        ``sequence_splits`` is how many pieces the *sequence* is cut into
        (``n`` for the sliced schemes, 1 otherwise); it sets the token count
        of each pass and therefore the arithmetic-intensity roll-off that
        Figure 11 sweeps.  It defaults to ``passes_per_microbatch`` for
        backward compatibility with unsliced schedules.
        """
        if passes_per_microbatch < 1:
            raise ValueError("passes_per_microbatch must be >= 1")
        splits = sequence_splits if sequence_splits is not None else passes_per_microbatch
        if splits < 1:
            raise ValueError("sequence_splits must be >= 1")
        flops = self._device_share_flops(parallel, sequence_length)
        tokens_per_pass = max(
            1.0,
            sequence_length / (parallel.context_parallel_size * splits),
        )
        overhead = self.cost_model.gpu.kernel_launch_overhead * passes_per_microbatch

        forward = self.cost_model.time_of(
            flops, PassKind.FORWARD, tokens=tokens_per_pass, include_overhead=False
        )
        backward = self.cost_model.time_of(
            flops, PassKind.BACKWARD, tokens=tokens_per_pass, include_overhead=False
        )

        if recompute is RecomputeMode.FULL:
            backward += self.cost_model.time_of(
                flops, PassKind.FORWARD, tokens=tokens_per_pass, include_overhead=False
            )
        elif recompute is RecomputeMode.SELECTIVE:
            h = self.model.hidden_size
            ffn = self.model.ffn_hidden_size * self.model.active_experts
            tokens_per_device = sequence_length / parallel.context_parallel_size
            selective = FlopsBreakdown(
                linear=4.0
                * h
                * ffn
                * tokens_per_device
                * self.model.num_layers
                / (parallel.tensor_parallel_size * parallel.pipeline_parallel_size)
            )
            backward += self.cost_model.time_of(
                selective, PassKind.FORWARD, tokens=tokens_per_pass, include_overhead=False
            )

        if include_output_layer:
            out_flops = output_layer_flops(
                self.model, sequence_length // parallel.context_parallel_size
            ) * (1.0 / (parallel.tensor_parallel_size * vocab_shards))
            forward += self.cost_model.time_of(
                out_flops, PassKind.FORWARD, tokens=tokens_per_pass, include_overhead=False
            )
            backward += self.cost_model.time_of(
                out_flops, PassKind.BACKWARD, tokens=tokens_per_pass, include_overhead=False
            )
        return forward + overhead, backward + overhead

    def model_flops_per_iteration(
        self, sequence_length: int, num_sequences: int
    ) -> float:
        """MFU numerator: fundamental model FLOPs of one iteration."""
        return model_flops_per_iteration(self.model, sequence_length, num_sequences)

    # ==================================================================
    # Communication
    # ==================================================================
    def _intra_domain(self, size: int):
        return self.comm.domain(size, intra_node=self.cluster.fits_in_node(size))

    def tp_comm_seconds_per_microbatch(
        self, parallel: ParallelConfig, sequence_length: int
    ) -> float:
        """Tensor+sequence-parallel collectives of one microbatch on one device.

        Megatron with SP performs, per layer, 2 all-gathers + 2
        reduce-scatters in the forward and the mirrored 4 in the backward,
        each moving a ``[seq/c, h]`` bf16 tensor.
        """
        t = parallel.tensor_parallel_size
        if t <= 1:
            return 0.0
        domain = self._intra_domain(t)
        seq_dev = sequence_length / parallel.context_parallel_size
        tensor_bytes = seq_dev * self.model.hidden_size * self.settings.activation_dtype.bytes
        per_layer = 4 * self.comm.all_gather_time(tensor_bytes, domain) + 4 * (
            self.comm.reduce_scatter_time(tensor_bytes, domain)
        )
        layers_per_device = self.model.num_layers / parallel.pipeline_parallel_size
        return self.settings.tp_exposed_fraction * per_layer * layers_per_device

    def cp_comm_seconds_per_microbatch(
        self, parallel: ParallelConfig, sequence_length: int
    ) -> float:
        """Context-parallel (ring attention) KV exchange of one microbatch.

        Each device circulates the other ``c - 1`` ranks' key/value shards
        (forward) and their gradients (backward): ``≈ 3 x 2 x (c-1)/c`` of a
        ``[seq/c, 2 * kv_channels]`` tensor per layer.
        """
        c = parallel.context_parallel_size
        if c <= 1:
            return 0.0
        group = parallel.tensor_parallel_size * c
        intra = self.cluster.fits_in_node(group)
        seq_dev = sequence_length / c
        kv_bytes = (
            seq_dev
            * 2
            * self.model.kv_channels
            * self.settings.activation_dtype.bytes
            / parallel.tensor_parallel_size
        )
        volume = 3.0 * (c - 1) * kv_bytes
        layers_per_device = self.model.num_layers / parallel.pipeline_parallel_size
        return layers_per_device * self.comm.p2p_time(volume, intra_node=intra)

    def ep_comm_seconds_per_microbatch(
        self, parallel: ParallelConfig, sequence_length: int
    ) -> float:
        """Expert-parallel all-to-alls of one microbatch (MoE models only)."""
        e = parallel.expert_parallel_size
        if e <= 1 or not self.model.is_moe:
            return 0.0
        domain = self._intra_domain(min(e, self.cluster.gpus_per_node))
        seq_dev = sequence_length / parallel.context_parallel_size
        token_bytes = (
            seq_dev
            * self.model.hidden_size
            * self.settings.activation_dtype.bytes
            * self.model.experts_per_token
            / parallel.tensor_parallel_size
        )
        layers_per_device = self.model.num_layers / parallel.pipeline_parallel_size
        # 2 all-to-alls forward (dispatch + combine) and 2 backward.
        return 4 * layers_per_device * self.comm.all_to_all_time(token_bytes, domain)

    def pp_comm_seconds_per_microbatch(
        self, parallel: ParallelConfig, sequence_length: int, passes_per_microbatch: int = 1
    ) -> float:
        """Pipeline point-to-point activations of one microbatch on one device."""
        p = parallel.pipeline_parallel_size
        if p <= 1:
            return 0.0
        intra = self.cluster.fits_in_node(
            parallel.ranks_per_pipeline_stage * p
        )
        seq_dev = sequence_length / parallel.context_parallel_size
        boundary_bytes = (
            seq_dev
            * self.model.hidden_size
            * self.settings.activation_dtype.bytes
            / parallel.tensor_parallel_size
        )
        # One send + one receive per pass in forward and the same in backward;
        # the per-pass tensors are 1/passes of the boundary.
        per_pass = boundary_bytes / passes_per_microbatch
        return 4 * passes_per_microbatch * self.comm.p2p_time(per_pass, intra_node=intra)

    def dp_sync_seconds(self, parallel: ParallelConfig) -> float:
        """Exposed data-parallel gradient synchronisation per iteration.

        With a distributed optimizer this is a reduce-scatter of fp32
        gradients plus an all-gather of bf16 parameters over the DP group;
        most of it overlaps with the backward pass, the rest is exposed.
        """
        d = parallel.data_parallel_size
        if d <= 1:
            return 0.0
        params_per_device = self._params_per_device(parallel)
        domain = self.comm.domain(d, intra_node=False)
        volume = params_per_device * (4.0 + 2.0)  # fp32 grads + bf16 params
        full = self.comm.reduce_scatter_time(volume, domain)
        return full * self.settings.dp_exposed_fraction

    def ulysses_comm_seconds_per_microbatch(
        self, ulysses_size: int, sequence_length: int
    ) -> float:
        """DeepSpeed-Ulysses all-to-alls of one microbatch on one device.

        Ulysses re-shards between sequence- and head-partitioning around every
        attention call: 2 all-to-alls forward and 2 backward per layer, each
        moving the device's ``[seq/u, h]`` activations.
        """
        u = ulysses_size
        if u <= 1:
            return 0.0
        domain = self._intra_domain(min(u, self.cluster.gpus_per_node))
        tensor_bytes = (
            sequence_length / u * self.model.hidden_size * self.settings.activation_dtype.bytes
        )
        return 4 * self.model.num_layers * self.comm.all_to_all_time(tensor_bytes, domain)

    def zero3_param_traffic_seconds(self, shard_group_size: int) -> float:
        """Exposed ZeRO-3 parameter gathering + gradient reduction per iteration.

        Parameters are gathered for the forward and again for the backward
        (2 all-gathers of the bf16 parameters) and gradients are
        reduce-scattered once; prefetching hides most of it.
        """
        if shard_group_size <= 1:
            return 0.0
        domain = self.comm.domain(shard_group_size, intra_node=False)
        param_bytes = self.model.total_params() * 2.0
        full = 2 * self.comm.all_gather_time(param_bytes, domain) + self.comm.reduce_scatter_time(
            param_bytes * 2, domain
        )
        return full * self.settings.zero_exposed_fraction

    # ==================================================================
    # Memory
    # ==================================================================
    def usable_memory_bytes(self) -> float:
        """HBM available to model states + activations on one GPU."""
        return self.cluster.gpu.memory_bytes - self.settings.memory_reserve_bytes

    def _params_per_device(self, parallel: ParallelConfig) -> float:
        """Parameter count held by one device (TP / PP / EP sharding applied)."""
        dense_layer = (
            self.model.attention_params_per_layer() + self.model.norm_params_per_layer()
        )
        if self.model.is_moe:
            experts = 3 * self.model.hidden_size * self.model.ffn_hidden_size * self.model.num_experts
            mlp = experts / parallel.expert_parallel_size + self.model.hidden_size * self.model.num_experts
        else:
            mlp = self.model.mlp_params_per_layer()
        per_layer = dense_layer / parallel.tensor_parallel_size + mlp / parallel.tensor_parallel_size
        layers = self.model.num_layers / parallel.pipeline_parallel_size
        vocab = self.model.embedding_params() / parallel.tensor_parallel_size
        return layers * per_layer + vocab / parallel.pipeline_parallel_size

    def model_state_bytes(
        self, parallel: ParallelConfig, vocab_parallel: bool = False
    ) -> float:
        """Worst-case (over pipeline ranks) model-state bytes on one device."""
        worst = 0.0
        ranks = (
            range(parallel.pipeline_parallel_size)
            if parallel.pipeline_parallel_size <= 2
            else (0, parallel.pipeline_parallel_size - 1)
        )
        for rank in ranks:
            states = model_state_bytes_per_device(
                self.model,
                tensor_parallel_size=parallel.tensor_parallel_size,
                pipeline_parallel_size=parallel.pipeline_parallel_size,
                expert_parallel_size=parallel.expert_parallel_size,
                data_parallel_size=parallel.data_parallel_size,
                pipeline_rank=rank,
                vocab_parallel=vocab_parallel,
                optimizer=self.settings.optimizer,
            )
            worst = max(worst, states.total)
        return worst

    def microbatch_activation_bytes(
        self, parallel: ParallelConfig, sequence_length: int, recompute: RecomputeMode
    ) -> float:
        """Activation bytes of one microbatch across the *whole* model (``M_a``).

        This is the unit the Table 2 memory factors multiply; one pipeline
        device's share of one microbatch is ``M_a / p``.
        """
        per_token_layer = activation_bytes_per_token_per_layer(
            self.model,
            recompute=recompute,
            tensor_parallel_size=parallel.tensor_parallel_size,
            dtype=self.settings.activation_dtype,
        )
        tokens = sequence_length / parallel.context_parallel_size
        return per_token_layer * tokens * self.model.num_layers

    def loss_logits_bytes(
        self, parallel: ParallelConfig, sequence_length: int, vocab_shards: int = 1
    ) -> float:
        """fp32 logits stored for the loss on the device(s) holding the output layer."""
        tokens = sequence_length / parallel.context_parallel_size
        return tokens * logits_bytes_per_token(
            self.model,
            tensor_parallel_size=parallel.tensor_parallel_size,
            vocab_parallel_size=vocab_shards,
        )
