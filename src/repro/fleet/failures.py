"""Failure injection for fleet simulations.

A :class:`FailurePlan` is a deterministic list of timed events the cluster
replays while serving traffic:

* ``crash`` — the victim replica loses its pool wholesale: every queued and
  running request is handed back to the router (delivered tokens stay
  delivered, but the KV cache is gone, so survivors re-prefill their full
  context on their new replica — the same resume semantics as a preemption).
  The machine restarts and rejoins after ``duration`` seconds.
* ``slow`` — the victim degrades (thermal throttling, a failing NIC, a noisy
  neighbour): every iteration it runs is stretched by ``slowdown`` until the
  window ends.  Slow nodes are the insidious case — they keep absorbing
  routed traffic while serving it badly, which is what separates load-aware
  routers from round-robin under degradation.

Victims are chosen by ``replica_index`` *modulo the replicas active when the
event fires* — plans stay valid under autoscaling, and the same seed always
hits the same sequence of victims.  :func:`random_failure_plan` draws a
Poisson event schedule from an explicit seed, so failure traces are as
reproducible as workload traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

__all__ = ["FailureEvent", "FailurePlan", "random_failure_plan"]

_KINDS = ("crash", "slow")


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One injected fault: what happens, to whom, when, for how long."""

    time: float
    kind: str
    replica_index: int
    duration: float
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.replica_index < 0:
            raise ValueError("replica_index must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.kind == "slow" and self.slowdown <= 1.0:
            raise ValueError("slow events need slowdown > 1")


@dataclass(frozen=True)
class FailurePlan:
    """A time-ordered, replayable schedule of failure events."""

    events: Tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.replica_index)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def crashes(self) -> int:
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def slow_events(self) -> int:
        return sum(1 for e in self.events if e.kind == "slow")


def random_failure_plan(
    seed: int,
    horizon: float,
    crash_rate: float = 0.0,
    slow_rate: float = 0.0,
    restart_delay: float = 60.0,
    slow_duration: float = 30.0,
    slowdown: float = 2.5,
    max_replica_index: int = 64,
) -> FailurePlan:
    """Draw a Poisson schedule of crashes and slow windows over ``horizon``.

    ``crash_rate`` / ``slow_rate`` are events per second of simulated time
    (fleet-wide, not per replica).  A rate of zero disables that kind.  The
    plan is a pure function of its arguments.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if crash_rate < 0 or slow_rate < 0:
        raise ValueError("rates must be non-negative")
    rng = random.Random(seed)
    events = []
    for kind, rate in (("crash", crash_rate), ("slow", slow_rate)):
        t = 0.0
        while rate > 0:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            events.append(
                FailureEvent(
                    time=t,
                    kind=kind,
                    replica_index=rng.randrange(max_replica_index),
                    duration=restart_delay if kind == "crash" else slow_duration,
                    slowdown=1.0 if kind == "crash" else slowdown,
                )
            )
    return FailurePlan(events=tuple(events))
