"""Autoscaling policies for the fleet layer.

The autoscaler is evaluated on a fixed tick (``AutoscalerConfig.interval``)
and returns the fleet size it *wants*; the cluster clamps the answer to
``[min_replicas, max_replicas]`` and pays the provisioning latency — warm-pool
replicas come up in ``warm_up_latency`` seconds, cold replicas in
``scale_up_latency`` — so a policy's value shows up as *how early* it asks,
not how loudly.  Two families are modelled:

``queue-depth`` (reactive)
    Scale on the observed backlog: when the waiting queue per active replica
    crosses ``scale_up_queue`` add ``step`` replicas, when it falls below
    ``scale_down_queue`` retire one.  A ``cooldown`` suppresses flapping.
    Reacts only after latency has already been damaged — the classic
    reactive-autoscaler failure mode under thundering herds.
``arrival-rate`` (predictive)
    Track an EWMA of the request arrival rate and provision
    ``ceil(rate * headroom / replica_rps)`` replicas, where ``replica_rps``
    is the operator's estimate of one replica's sustainable throughput.
    Scales *before* the queue builds when traffic ramps, at the cost of
    trusting the capacity estimate.  When the fleet reports a shared-prefix
    hit rate (``FleetView.prefix_hit_rate``), the per-replica capacity
    estimate is scaled by the **effective-capacity gain**
    ``1 / (1 - hit_rate)``: prefill work served from the prefix cache frees
    replica time for more requests, so the same SLO needs fewer replicas.
    With a zero hit rate (prefix caching off, or no shared traffic) the
    policy is exactly the pre-prefix one.

``none`` pins the fleet at its initial size (the capacity planner uses this
to evaluate fixed fleets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from ..constants import UnknownNameError

__all__ = [
    "AutoscalerConfig",
    "FleetView",
    "Autoscaler",
    "FixedAutoscaler",
    "QueueDepthAutoscaler",
    "ArrivalRateAutoscaler",
    "AUTOSCALER_REGISTRY",
    "available_autoscalers",
    "make_autoscaler",
]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Static knobs shared by every autoscaling policy."""

    policy: str = "none"
    interval: float = 5.0
    scale_up_queue: float = 4.0
    scale_down_queue: float = 0.5
    step: int = 1
    cooldown: float = 20.0
    replica_rps: float = 1.0
    headroom: float = 1.2
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.policy not in AUTOSCALER_REGISTRY:
            raise UnknownNameError(
                f"unknown autoscaler policy {self.policy!r}; "
                f"available: {available_autoscalers()}"
            )
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.scale_down_queue >= self.scale_up_queue:
            raise ValueError("scale_down_queue must be below scale_up_queue")
        if self.step < 1:
            raise ValueError("step must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.replica_rps <= 0:
            raise ValueError("replica_rps must be positive")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class FleetView:
    """The aggregate state an autoscaler tick observes."""

    now: float
    active_replicas: int
    provisioning_replicas: int
    queue_depth: int
    running_requests: int
    arrival_rate: float
    #: Fleet-wide fraction of required prompt tokens served from the shared
    #: prefix cache so far (0.0 when prefix caching is off).
    prefix_hit_rate: float = 0.0
    #: Fleet-wide waiting-queue depth per tagged tenant (summed over every
    #: provisioned replica plus the held queue), as name-sorted ``(tenant,
    #: depth)`` pairs.  Empty for anonymous workloads or when tenancy is off,
    #: so existing policies see exactly the view they saw before.
    tenant_queue_depths: Tuple[Tuple[str, int], ...] = ()

    @property
    def provisioned(self) -> int:
        """Replicas already paid for: active plus still-provisioning."""
        return self.active_replicas + self.provisioning_replicas

    def tenant_queue_depth(self, tenant: str) -> int:
        """Fleet-wide waiting count for one tenant (0 when absent)."""
        for name, depth in self.tenant_queue_depths:
            if name == tenant:
                return depth
        return 0


class Autoscaler:
    """Base policy: map a :class:`FleetView` to a desired fleet size."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config

    def desired(self, view: FleetView) -> int:
        raise NotImplementedError


class FixedAutoscaler(Autoscaler):
    """Never changes the fleet (the ``none`` policy)."""

    def desired(self, view: FleetView) -> int:
        return view.provisioned


class QueueDepthAutoscaler(Autoscaler):
    """Reactive: scale on waiting requests per provisioned replica."""

    def __init__(self, config: AutoscalerConfig):
        super().__init__(config)
        self._last_action = -math.inf

    def desired(self, view: FleetView) -> int:
        cfg = self.config
        if view.now - self._last_action < cfg.cooldown:
            return view.provisioned
        per_replica = view.queue_depth / max(1, view.provisioned)
        if per_replica > cfg.scale_up_queue:
            self._last_action = view.now
            return view.provisioned + cfg.step
        if per_replica < cfg.scale_down_queue:
            self._last_action = view.now
            return view.provisioned - 1
        return view.provisioned


class ArrivalRateAutoscaler(Autoscaler):
    """Predictive: provision for the EWMA arrival rate plus headroom.

    Prefix-cache aware: the observed fleet-wide hit rate inflates the
    per-replica capacity estimate (prefill skipped is replica time freed),
    capped at 10x so a near-perfect hit rate cannot collapse the fleet.
    """

    def desired(self, view: FleetView) -> int:
        cfg = self.config
        capacity = cfg.replica_rps
        if view.prefix_hit_rate > 0.0:
            capacity = cfg.replica_rps / max(1.0 - view.prefix_hit_rate, 0.1)
        target = math.ceil(view.arrival_rate * cfg.headroom / capacity)
        return max(1, target)


AUTOSCALER_REGISTRY: Dict[str, Type[Autoscaler]] = {
    "none": FixedAutoscaler,
    "queue-depth": QueueDepthAutoscaler,
    "arrival-rate": ArrivalRateAutoscaler,
}


def available_autoscalers() -> List[str]:
    return sorted(AUTOSCALER_REGISTRY)


def make_autoscaler(config: Optional[AutoscalerConfig] = None) -> Autoscaler:
    """Instantiate the policy named by ``config.policy`` (default: fixed)."""
    config = config or AutoscalerConfig()
    return AUTOSCALER_REGISTRY[config.policy](config)
