"""Fleet-scale discrete-event serving: replicas, routing, scaling, failures.

:class:`FleetEngine` composes many single-replica serving pools (the same
:class:`~repro.serving.engine._Pool` the colocated :class:`ServingEngine`
steps — allocator, continuous batcher, cost model) into one cluster-level
event loop.  Where the serving engines drain a whole trace per pool, the
fleet loop interleaves everything that couples replicas in time on one event
heap:

* **arrivals** are routed on the spot by a pluggable
  :class:`~repro.fleet.router.Router`, which only observes per-replica
  queue/token/KV snapshots (what a real load balancer can see);
* **iterations** complete per replica — each replica runs its own continuous
  batching loop at its own pace, priced by its own GPU type (heterogeneous
  fleets cycle ``FleetConfig.gpu_types`` across replica indices);
* **autoscaler ticks** compare the observed backlog / arrival rate against
  the policy and provision or drain replicas, paying warm-pool or cold
  scale-up latency;
* **failure events** crash or degrade replicas: a crash hands every queued
  and running request back to the router (KV lost, full-context re-prefill
  on the survivor, delivered tokens stay delivered), a slow window stretches
  the victim's iteration times.

Tie-breaking is by insertion order at equal timestamps and every policy is
deterministic, so a fleet run is a pure function of (trace, config, failure
plan) — the property the byte-identical determinism test pins.

Replica-hours are metered from provisioning to retirement:
:data:`GPU_HOURLY_USD` prices them per GPU type, which is what the capacity
planner minimises subject to the SLO.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..analysis.report import render_table
from ..hardware.gpu import get_gpu_spec
from ..model.config import ModelConfig
from ..model.costs import PassKind
from ..obs import events as obs_events
from ..obs.events import EventRecorder
from ..schedules.base import Pass
from ..serving.batcher import BatcherConfig, IterationPlan, RequestState
from ..serving.engine import ServingConfig, _Pool
from ..serving.metrics import (
    SLO,
    RequestRecord,
    ServingMetrics,
    StreamingMetrics,
    TenantMetrics,
    compute_metrics,
    compute_tenant_metrics,
)
from ..serving.prefix_cache import prefix_block_keys
from ..serving.tenancy import TenancyConfig
from ..serving.workload import Request
from ..sim.timeline import Timeline, TimelineSpan
from .autoscaler import Autoscaler, AutoscalerConfig, FleetView, make_autoscaler
from .failures import FailurePlan
from .router import ReplicaSnapshot, Router, get_router

__all__ = [
    "GPU_HOURLY_USD",
    "FleetConfig",
    "FleetStats",
    "FleetResult",
    "FleetEngine",
]

#: Rough on-demand $/GPU-hour by device type, used to price a fleet.
GPU_HOURLY_USD: Dict[str, float] = {
    "hopper-80gb": 12.0,
    "ampere-80gb": 4.1,
}


@dataclass(frozen=True)
class FleetConfig:
    """Static configuration of a fleet deployment."""

    gpus_per_replica: int = 4
    gpu_types: Tuple[str, ...] = ("hopper-80gb",)
    initial_replicas: int = 2
    min_replicas: int = 1
    max_replicas: int = 16
    block_tokens: int = 256
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    tpot_cap: Optional[float] = None
    scale_up_latency: float = 30.0
    warm_pool: int = 0
    warm_up_latency: float = 2.0
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    sessions: int = 0
    max_total_iterations: int = 10_000_000
    #: Pre-plan stable pure-decode stretches per replica so each of their
    #: iterations completes with cached pricing and bulk KV growth instead of
    #: a full replan (exact; ``False`` forces the naive reference stepper).
    fast_forward: bool = True
    #: Shared-prefix KV caching per replica (see
    #: :attr:`~repro.serving.engine.ServingConfig.prefix_caching`): cached
    #: prefix blocks skip prefill, routers observe per-replica hit potential
    #: and the arrival-rate autoscaler credits the effective-capacity gain.
    prefix_caching: bool = False
    #: Keep every :class:`RequestRecord` in the result (the default,
    #: byte-identical path).  ``False`` streams: arrivals are pulled lazily
    #: from the trace iterable (one in flight on the heap at a time),
    #: finished requests fold into a bounded-memory
    #: :class:`~repro.serving.metrics.StreamingMetrics` accumulator and are
    #: dropped, so a million-request fleet run holds O(replicas + batch)
    #: state.  Incompatible with ``collect_timeline=True``.
    retain_records: bool = True
    #: Opt-in observability: an :class:`~repro.obs.events.EventRecorder`
    #: threaded into every replica pool and the cluster loop itself.  ``None``
    #: (the default) keeps every emit site dormant and the run byte-identical.
    observe: Optional[EventRecorder] = field(default=None, compare=False, repr=False)
    #: Multi-tenant QoS contracts threaded into every replica's batcher (SLO
    #: classes, fair-share weights) and into the per-tenant result metrics.
    #: Token-bucket rate limits are a single-pool admission-control feature:
    #: per-replica buckets would multiply every tenant's global rate by the
    #: (autoscaled!) replica count, so a fleet rejects rate-limited tenants
    #: rather than enforce a meaningless limit.  ``None`` disables tenancy.
    tenancy: Optional[TenancyConfig] = None

    def __post_init__(self) -> None:
        if self.gpus_per_replica < 1:
            raise ValueError("gpus_per_replica must be >= 1")
        if not self.gpu_types:
            raise ValueError("gpu_types must name at least one device")
        for name in self.gpu_types:
            get_gpu_spec(name)  # fail fast with the list of valid names
            if name not in GPU_HOURLY_USD:
                raise ValueError(
                    f"GPU {name!r} has no price in GPU_HOURLY_USD; "
                    "add one before fleeting it"
                )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not self.min_replicas <= self.initial_replicas <= self.max_replicas:
            raise ValueError("initial_replicas must lie in [min, max]")
        if self.scale_up_latency < 0 or self.warm_up_latency < 0:
            raise ValueError("provisioning latencies must be non-negative")
        if self.warm_pool < 0:
            raise ValueError("warm_pool must be non-negative")
        if self.sessions < 0:
            raise ValueError("sessions must be non-negative")
        if self.tpot_cap is not None and self.tpot_cap <= 0:
            raise ValueError("tpot_cap must be positive when given")
        if self.tenancy is not None:
            limited = [s.name for s in self.tenancy.tenants if s.rate_limit is not None]
            if limited:
                raise ValueError(
                    "fleet tenancy does not support token-bucket rate limits "
                    f"(tenants {limited} set rate_limit); enforce admission "
                    "control at the serving-engine level instead"
                )

    def gpu_for(self, replica_id: int) -> str:
        """Device type of replica ``replica_id`` (cycled for heterogeneity)."""
        return self.gpu_types[replica_id % len(self.gpu_types)]

    def serving_config(self, gpu_name: str) -> ServingConfig:
        return ServingConfig(
            num_gpus=self.gpus_per_replica,
            gpu=get_gpu_spec(gpu_name),
            block_tokens=self.block_tokens,
            batcher=self.batcher,
            tpot_cap=self.tpot_cap,
            fast_forward=self.fast_forward,
            prefix_caching=self.prefix_caching,
            observe=self.observe,
            tenancy=self.tenancy,
        )

    def session_of(self, request: Request) -> int:
        """Deterministic session id (affinity routing groups requests by it).

        A request that names its conversation (``Request.session``) keeps it;
        otherwise ids hash onto ``sessions`` buckets (or stay unique when no
        session count is configured).
        """
        if request.session is not None:
            return request.session
        if self.sessions <= 0:
            return request.request_id
        return request.request_id % self.sessions


class _ReplicaState(Enum):
    PROVISIONING = "provisioning"
    ACTIVE = "active"
    FAILED = "failed"
    RETIRED = "retired"


class _Replica:
    """One fleet member: a serving pool plus lifecycle bookkeeping."""

    def __init__(self, replica_id: int, model: ModelConfig, config: FleetConfig):
        self.replica_id = replica_id
        self.gpu_name = config.gpu_for(replica_id)
        self.model = model
        self.fleet_config = config
        self.serving_config = config.serving_config(self.gpu_name)
        self.pool = _Pool(model, config.gpus_per_replica, self.serving_config)
        # The batcher's events belong to this replica's track, not a pool
        # device index (inert when no recorder is configured).
        self.pool.batcher.obs_track = replica_id
        self.state = _ReplicaState.PROVISIONING
        self.draining = False
        self.slowdown = 1.0
        self.slow_until = 0.0
        self.epoch = 0
        self.busy_plan: Optional[IterationPlan] = None
        # Decode fast-forward stretch: a pre-validated run of pure-decode
        # iterations.  ``ff_plan`` is the (constant-composition) plan every
        # stretch iteration executes; ``ff_steps`` counts the iterations still
        # allowed *after* the one in flight; ``ff_contexts``/``ff_ids`` track
        # the per-request context lengths and allocator keys.
        self.ff_plan: Optional[IterationPlan] = None
        self.ff_steps = 0
        self.ff_contexts: Optional[List[int]] = None
        self.ff_ids: Optional[List[int]] = None
        # Observability only (maintained when a recorder is attached): the
        # stretch's start time and completed-iteration count, so the whole
        # stretch rolls up into one STRETCH event instead of thousands of
        # per-iteration samples.
        self.ff_start = 0.0
        self.ff_done = 0
        self.provisioned_at = 0.0
        self.retired_at: Optional[float] = None
        self.iterations = 0
        self.requests_served = 0
        self.busy_time = 0.0
        self.kv_weighted = 0.0
        self.kv_peak = 0.0
        # Batcher counters folded in from pool incarnations lost to crashes.
        self._folded = [0, 0, 0, 0]  # admitted, prefilled, requeued, preemptions
        # Prefix-cache counters, same folding discipline (floats for FLOPs).
        self._prefix_folded = [0, 0, 0.0, 0.0, 0]  # hit_tok, hit_req, saved, executed, evictions

    # ------------------------------------------------------------------
    @property
    def accepts_work(self) -> bool:
        return (
            self.state in (_ReplicaState.ACTIVE, _ReplicaState.PROVISIONING)
            and not self.draining
        )

    @property
    def busy(self) -> bool:
        return self.busy_plan is not None

    @property
    def has_work(self) -> bool:
        return self.pool is not None and self.pool.batcher.has_work

    def outstanding_tokens(self) -> int:
        if self.pool is None:
            return 0
        batcher = self.pool.batcher
        total = 0
        for queue in (batcher.waiting, batcher.running):
            for state in queue:
                total += state.prefill_remaining
                total += max(0, state.request.output_tokens - state.decoded)
        return total

    def truncate_stretch(self) -> None:
        """End the decode stretch after the in-flight iteration.

        Called when the replica's batch composition is about to change (a
        request was enqueued): the iteration already in flight still matches
        the naive stepper — work enqueued mid-iteration is only seen by the
        *next* plan — but every later stretch iteration must be replanned.
        """
        self.ff_steps = 0

    def clear_stretch(self) -> None:
        self.ff_plan = None
        self.ff_steps = 0
        self.ff_contexts = None
        self.ff_ids = None

    def snapshot(self, request: Optional[Request] = None) -> ReplicaSnapshot:
        batcher = self.pool.batcher
        allocator = self.pool.allocator
        match = 0
        if request is not None and request.prefix and allocator.prefix_caching:
            match = allocator.match_prefix(
                prefix_block_keys(request.prefix, allocator.block_tokens)
            )
        return ReplicaSnapshot(
            replica_id=self.replica_id,
            queue_depth=len(batcher.waiting),
            running_requests=len(batcher.running),
            outstanding_tokens=self.outstanding_tokens(),
            kv_free_fraction=allocator.free_blocks / allocator.total_blocks,
            gpu=self.gpu_name,
            prefix_match_blocks=match,
            tenant_queue_depths=batcher.tenant_queue_depths(),
        )

    # ------------------------------------------------------------------
    def fail_over(self) -> List[RequestState]:
        """Crash: surrender every queued and running request, drop the pool.

        In-flight prefill chunks are treated like work later discarded by a
        preemption — they were counted as prefilled when planned, so the
        survivors' ``prefilled`` advances to match before the requeue
        accounting, keeping the fleet-wide conservation law exact.
        """
        batcher = self.pool.batcher
        if self.busy_plan is not None:
            for state, chunk in self.busy_plan.prefill:
                state.prefilled += chunk
            self.busy_plan = None
        self.clear_stretch()
        for state in batcher.running:
            batcher.tokens_preempted_requeued += state.prefill_remaining
        lost = list(batcher.running) + list(batcher.waiting)
        self._fold_counters()
        self.pool = None
        self.epoch += 1
        self.state = _ReplicaState.FAILED
        self.draining = False
        return lost

    def recover(self) -> None:
        """Restart after a crash with a fresh (empty) pool."""
        self.pool = _Pool(self.model, self.fleet_config.gpus_per_replica, self.serving_config)
        self.pool.batcher.obs_track = self.replica_id
        self.state = _ReplicaState.ACTIVE
        self.slowdown = 1.0
        self.slow_until = 0.0  # a restart replaces the degraded machine

    def _fold_counters(self) -> None:
        batcher = self.pool.batcher
        self._folded[0] += batcher.tokens_admitted
        self._folded[1] += batcher.tokens_prefilled
        self._folded[2] += batcher.tokens_preempted_requeued
        self._folded[3] += batcher.preemptions
        self._prefix_folded[0] += batcher.prefix_hit_tokens
        self._prefix_folded[1] += batcher.prefix_hit_requests
        self._prefix_folded[2] += batcher.prefix_flops_saved
        self._prefix_folded[3] += batcher.prefill_flops_executed
        prefix = self.pool.allocator.prefix
        if prefix is not None:
            self._prefix_folded[4] += prefix.evicted_blocks

    def counters(self) -> Tuple[int, int, int, int]:
        """(admitted, prefilled, requeued, preemptions) over all incarnations."""
        admitted, prefilled, requeued, preemptions = self._folded
        if self.pool is not None:
            batcher = self.pool.batcher
            admitted += batcher.tokens_admitted
            prefilled += batcher.tokens_prefilled
            requeued += batcher.tokens_preempted_requeued
            preemptions += batcher.preemptions
        return admitted, prefilled, requeued, preemptions

    def prefix_counters(self) -> Tuple[int, int, float, float, int]:
        """(hit_tokens, hit_requests, flops_saved, flops_executed, evictions)."""
        hit_tokens, hit_requests, saved, executed, evictions = self._prefix_folded
        if self.pool is not None:
            batcher = self.pool.batcher
            hit_tokens += batcher.prefix_hit_tokens
            hit_requests += batcher.prefix_hit_requests
            saved += batcher.prefix_flops_saved
            executed += batcher.prefill_flops_executed
            prefix = self.pool.allocator.prefix
            if prefix is not None:
                evictions += prefix.evicted_blocks
        return hit_tokens, hit_requests, saved, executed, evictions

    def gpu_seconds(self, end_time: float) -> float:
        end = self.retired_at if self.retired_at is not None else end_time
        return max(0.0, end - self.provisioned_at) * self.fleet_config.gpus_per_replica


@dataclass
class FleetStats:
    """Cluster-level outcomes of one fleet run (latency lives in the metrics)."""

    router: str
    replicas_provisioned: int
    replicas_peak: int
    replicas_final: int
    scale_up_events: int
    scale_down_events: int
    crashes: int
    slow_events: int
    rerouted_requests: int
    gpu_hours: float
    gpu_hours_by_type: Dict[str, float]
    cost_usd: float

    def to_rows(self) -> List[tuple]:
        by_type = ", ".join(
            f"{name} {hours:.2f} h" for name, hours in sorted(self.gpu_hours_by_type.items())
        )
        return [
            ("router", self.router),
            (
                "replicas provisioned / peak / final",
                f"{self.replicas_provisioned} / {self.replicas_peak} / {self.replicas_final}",
            ),
            ("scale-ups / scale-downs", f"{self.scale_up_events} / {self.scale_down_events}"),
            ("crashes / slow windows", f"{self.crashes} / {self.slow_events}"),
            ("requests rerouted by failover", f"{self.rerouted_requests}"),
            ("GPU-hours", f"{self.gpu_hours:.2f} ({by_type})"),
            ("fleet cost", f"${self.cost_usd:.2f}"),
        ]

    def to_text(self, title: str = "fleet") -> str:
        return render_table(["metric", "value"], self.to_rows(), title=title)


@dataclass
class FleetResult:
    """Everything one simulated fleet run produced."""

    metrics: ServingMetrics
    fleet: FleetStats
    records: List[RequestRecord]
    iterations: int
    tokens_admitted: int
    tokens_prefilled: int
    tokens_preempted_requeued: int
    preemptions: int
    timeline: Optional[Timeline] = None
    #: Shared-prefix caching outcomes over every pool incarnation (all zero
    #: when ``FleetConfig.prefix_caching`` is off).
    prefix_hit_tokens: int = 0
    prefix_hit_requests: int = 0
    prefix_flops_saved: float = 0.0
    prefill_flops_executed: float = 0.0
    prefix_evictions: int = 0
    #: ``False`` when the run streamed (``FleetConfig.retain_records=False``):
    #: ``records`` is empty and metrics came from a bounded accumulator.
    retain_records: bool = True
    #: Per-tenant aggregates, keyed by tenant name (empty when the trace
    #: carried no tenant tags; filled on both record and streaming paths).
    tenant_metrics: Dict[str, TenantMetrics] = field(default_factory=dict)

    @property
    def token_accounting_balanced(self) -> bool:
        """Fleet-wide conservation law, summed over every pool incarnation."""
        return self.tokens_admitted == self.tokens_prefilled + self.tokens_preempted_requeued

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of required prompt tokens served from the prefix caches."""
        required = self.prefix_hit_tokens + self.tokens_prefilled
        return self.prefix_hit_tokens / required if required else 0.0

    def to_text(self, title: str = "fleet run") -> str:
        return self.metrics.to_text(title=title) + self.fleet.to_text(title=f"{title} — fleet")


# Event kinds, in deliberate alphabetical-free order: ties at one timestamp
# resolve by insertion sequence, never by kind.
_ARRIVAL = "arrival"
_ITERATION = "iteration"
_PROVISION = "provision"
_FAIL = "fail"
_RECOVER = "recover"
_SLOW_END = "slow-end"
_SCALE = "scale"


class FleetEngine:
    """Cluster-scale discrete-event loop over many serving pools."""

    def __init__(
        self,
        model: ModelConfig,
        config: Optional[FleetConfig] = None,
        router: Union[str, Router] = "round-robin",
        failure_plan: Optional[FailurePlan] = None,
    ):
        self.model = model
        self.config = config or FleetConfig()
        self.router = get_router(router) if isinstance(router, str) else router
        self.failure_plan = failure_plan or FailurePlan()

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, payload))

    def _new_replica(self, now: float, delay: float) -> _Replica:
        replica = _Replica(len(self._replicas), self.model, self.config)
        replica.provisioned_at = now
        self._replicas.append(replica)
        obs = self._obs
        if obs is not None:
            obs.register_track(
                replica.replica_id,
                f"replica {replica.replica_id} ({replica.gpu_name})",
            )
            obs.emit(
                now, obs_events.PROVISION, replica.replica_id, None, (delay,)
            )
        if delay <= 0:
            replica.state = _ReplicaState.ACTIVE
            if obs is not None:
                obs.emit(now, obs_events.ACTIVATE, replica.replica_id)
        else:
            self._push(now + delay, _PROVISION, replica.replica_id)
        return replica

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, state: RequestState, now: float) -> None:
        candidates = [r for r in self._replicas if r.accepts_work]
        if not candidates:
            if self._obs is not None:
                self._obs.emit(
                    now, obs_events.HELD, obs_events.CLUSTER_TRACK,
                    state.request.request_id,
                )
            self._held.append(state)
            return
        snapshots = [r.snapshot(state.request) for r in candidates]
        session = self.config.session_of(state.request)
        choice = self.router.route(state.request, session, snapshots)
        by_id = {r.replica_id: r for r in candidates}
        if choice not in by_id:
            raise ValueError(
                f"router {self.router.name!r} picked replica {choice}, "
                f"not among the offered {sorted(by_id)}"
            )
        replica = by_id[choice]
        if self._obs is not None:
            snap = snapshots[candidates.index(replica)]
            self._obs.emit(
                now, obs_events.ROUTE, choice, state.request.request_id,
                (snap.queue_depth, snap.prefix_match_blocks),
            )
        state.pool_arrival = now
        replica.pool.batcher.enqueue(state)
        # New work changes the next plan's composition: end any pre-planned
        # decode stretch after the iteration currently in flight.
        replica.truncate_stretch()
        self._kick(replica, now)

    def _flush_held(self, now: float) -> None:
        if not self._held:
            return
        held, self._held = self._held, []
        for state in held:
            self._route(state, now)

    # ------------------------------------------------------------------
    # Per-replica continuous batching
    # ------------------------------------------------------------------
    def _kick(self, replica: _Replica, now: float) -> None:
        """Start the next iteration on an idle, active replica with work."""
        if replica.state is not _ReplicaState.ACTIVE or replica.busy:
            return
        batcher = replica.pool.batcher
        if not batcher.has_work:
            if replica.draining:
                self._retire(replica, now)
            return
        obs = self._obs
        prof = obs.profiler if obs is not None else None
        if obs is not None:
            batcher.now = now
        clock_start = prof.clock() if prof is not None else 0.0
        if self._start_stretch(replica, now):
            if prof is not None:
                prof.add("fast-forward", prof.clock() - clock_start)
            return
        plan = batcher.plan(replica.pool.prefill_budget())
        while plan.empty and batcher.running:
            if batcher._preempt_victim(plan) is None:
                break
            plan = batcher.plan(replica.pool.prefill_budget())
        if prof is not None:
            prof.add("admission", prof.clock() - clock_start)
        if plan.empty:
            raise RuntimeError(
                f"replica {replica.replica_id} stalled with queued work "
                "and no runnable batch"
            )
        clock_start = prof.clock() if prof is not None else 0.0
        duration = replica.pool.iteration_time(plan) * replica.slowdown
        if prof is not None:
            prof.add("pricing", prof.clock() - clock_start)
        replica.busy_plan = plan
        self._push(now + duration, _ITERATION, (replica.replica_id, replica.epoch, duration))

    def _start_stretch(self, replica: _Replica, now: float) -> bool:
        """Pre-plan a pure-decode stretch and start its first iteration.

        The composition (and hence the plan object) is constant across the
        stretch, so each iteration reuses it: completion applies the decode
        commits directly, bulk-grows the KV reservations one token per
        request and re-prices from cached FLOPs pairs — everything else the
        naive :meth:`_kick` would redo (budget search, scheduler replan,
        per-request admission checks) provably has no effect mid-stretch.
        Durations are still priced one iteration at a time with the
        replica's *current* slowdown, so failure-injected slow windows keep
        their exact naive semantics.
        """
        pool = replica.pool
        steps = pool.decode_stretch_length()
        if steps < 1:
            return False
        if self._obs is not None:
            replica.ff_start = now
            replica.ff_done = 0
        batcher = pool.batcher
        running = batcher.running
        replica.ff_contexts = [state.context_tokens for state in running]
        replica.ff_ids = [state.request.request_id for state in running]
        replica.ff_plan = IterationPlan(prefill=[], decode=list(running))
        replica.ff_steps = steps - 1  # beyond the one started right here
        # The reservations the naive plan() would have made for this step.
        pool.allocator.advance_decode_step(replica.ff_ids)
        duration = pool.decode_iteration_time(replica.ff_contexts) * replica.slowdown
        replica.busy_plan = replica.ff_plan
        self._push(now + duration, _ITERATION, (replica.replica_id, replica.epoch, duration))
        return True

    def _complete_iteration(self, replica: _Replica, duration: float, now: float) -> None:
        plan = replica.busy_plan
        stretch = plan is not None and plan is replica.ff_plan
        replica.busy_plan = None
        utilization = replica.pool.allocator.token_utilization
        replica.kv_weighted += utilization * duration
        replica.busy_time += duration
        replica.kv_peak = max(replica.kv_peak, utilization)
        replica.iterations += 1
        self._total_iterations += 1
        if self._total_iterations > self.config.max_total_iterations:
            raise RuntimeError(
                f"fleet exceeded {self.config.max_total_iterations} iterations"
            )
        if self._spans is not None:
            self._spans.append((replica.replica_id, now - duration, now))
        obs = self._obs
        if obs is not None:
            if stretch:
                # Stretch iterations are uniform by construction; they roll
                # up into one STRETCH event when the stretch ends (below, or
                # at the crash site) instead of one sample per heap event.
                replica.ff_done += 1
            else:
                batcher = replica.pool.batcher
                obs.emit(
                    now, obs_events.ITERATION, replica.replica_id, None,
                    (
                        duration,
                        plan.prefill_tokens,
                        len(plan.decode),
                        len(batcher.waiting),
                        len(batcher.running),
                        utilization,
                    ),
                )
        if stretch:
            # Exactly what batcher.commit() does for a pure-decode plan whose
            # requests all have further tokens to go: no departures, no
            # release, just one decoded token each.
            for state in plan.decode:
                state.decoded += 1
            if replica.ff_steps > 0:
                replica.ff_steps -= 1
                contexts = replica.ff_contexts
                for index in range(len(contexts)):
                    contexts[index] += 1
                pool = replica.pool
                pool.allocator.advance_decode_step(replica.ff_ids)
                next_duration = pool.decode_iteration_time(contexts) * replica.slowdown
                replica.busy_plan = plan
                self._push(
                    now + next_duration,
                    _ITERATION,
                    (replica.replica_id, replica.epoch, next_duration),
                )
            else:
                if obs is not None:
                    obs.emit(
                        now, obs_events.STRETCH, replica.replica_id, None,
                        (replica.ff_done, len(plan.decode), replica.ff_start, utilization),
                    )
                replica.clear_stretch()
                self._kick(replica, now)
            return
        prof = obs.profiler if obs is not None else None
        clock_start = prof.clock() if prof is not None else 0.0
        departed = replica.pool.batcher.commit(plan, now)
        if prof is not None:
            prof.add("commit", prof.clock() - clock_start)
        replica.requests_served += len(departed)
        self._finished += len(departed)
        if self._streaming is not None:
            # Bounded-memory fold: the departed records are dropped here —
            # nothing outside the accumulator ever sees them again.
            for state in departed:
                self._streaming.observe(state.record)
        if replica.draining and not replica.has_work:
            self._retire(replica, now)
        else:
            self._kick(replica, now)

    def _retire(self, replica: _Replica, now: float) -> None:
        # The pool (and its counters) stays readable; only crashes fold it.
        replica.state = _ReplicaState.RETIRED
        replica.draining = False
        replica.retired_at = now
        if self._obs is not None:
            self._obs.emit(now, obs_events.RETIRE, replica.replica_id)

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    def _provisioned(self) -> List[_Replica]:
        return [r for r in self._replicas if r.accepts_work]

    def _on_scale(self, now: float) -> None:
        cfg = self.config
        interval = cfg.autoscaler.interval
        instantaneous = self._arrivals_since_tick / interval
        self._arrivals_since_tick = 0
        alpha = cfg.autoscaler.ewma_alpha
        if self._rate_ewma is None:
            self._rate_ewma = instantaneous
        else:
            self._rate_ewma = alpha * instantaneous + (1 - alpha) * self._rate_ewma
        provisioned = self._provisioned()
        active = sum(1 for r in provisioned if r.state is _ReplicaState.ACTIVE)
        hit_tokens = prefilled = 0
        if self.config.prefix_caching:
            for replica in self._replicas:
                tokens, _, _, _, _ = replica.prefix_counters()
                _, done, _, _ = replica.counters()
                hit_tokens += tokens
                prefilled += done
        required = hit_tokens + prefilled
        tenant_depths: Dict[str, int] = {}
        if self.config.tenancy is not None:
            for replica in provisioned:
                for tenant, depth in replica.pool.batcher.tenant_queue_depths():
                    tenant_depths[tenant] = tenant_depths.get(tenant, 0) + depth
            for state in self._held:
                tenant = state.request.tenant
                if tenant is not None:
                    tenant_depths[tenant] = tenant_depths.get(tenant, 0) + 1
        view = FleetView(
            now=now,
            active_replicas=active,
            provisioning_replicas=len(provisioned) - active,
            queue_depth=sum(len(r.pool.batcher.waiting) for r in provisioned)
            + len(self._held),
            running_requests=sum(len(r.pool.batcher.running) for r in provisioned),
            arrival_rate=self._rate_ewma,
            prefix_hit_rate=hit_tokens / required if required else 0.0,
            tenant_queue_depths=tuple(sorted(tenant_depths.items())),
        )
        target = max(cfg.min_replicas, min(cfg.max_replicas, self._autoscaler.desired(view)))
        current = len(provisioned)
        if self._obs is not None:
            self._obs.emit(
                now, obs_events.SCALE, obs_events.CLUSTER_TRACK, None,
                (current, target, view.queue_depth, self._rate_ewma),
            )
        if target > current:
            self._scale_up(target - current, now)
        elif target < current:
            self._scale_down(current - target, now)
        if self._finished < self._num_requests:
            self._push(now + interval, _SCALE)

    def _scale_up(self, count: int, now: float) -> None:
        self._scale_up_events += 1
        if self._obs is not None:
            self._obs.emit(
                now, obs_events.SCALE_UP, obs_events.CLUSTER_TRACK, None, (count,)
            )
        added = 0
        # Cheapest first: cancel drains, then spend the warm pool, then cold.
        for replica in self._replicas:
            if added >= count:
                break
            if replica.state is _ReplicaState.ACTIVE and replica.draining:
                replica.draining = False
                added += 1
        while added < count:
            if self._warm_remaining > 0:
                self._warm_remaining -= 1
                self._new_replica(now, self.config.warm_up_latency)
            else:
                self._new_replica(now, self.config.scale_up_latency)
            added += 1
        self._flush_held(now)

    def _scale_down(self, count: int, now: float) -> None:
        self._scale_down_events += 1
        if self._obs is not None:
            self._obs.emit(
                now, obs_events.SCALE_DOWN, obs_events.CLUSTER_TRACK, None, (count,)
            )
        candidates = sorted(
            (r for r in self._provisioned() if r.state is _ReplicaState.ACTIVE),
            key=lambda r: (r.outstanding_tokens(), -r.replica_id),
        )
        for replica in candidates[:count]:
            replica.draining = True
            if not replica.has_work and not replica.busy:
                self._retire(replica, now)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def _on_fail(self, event, now: float) -> None:
        candidates = sorted(
            (r for r in self._replicas if r.state is _ReplicaState.ACTIVE),
            key=lambda r: r.replica_id,
        )
        if not candidates:
            return  # nothing alive to kill; the event is dropped
        victim = candidates[event.replica_index % len(candidates)]
        if event.kind == "slow":
            self._slow_events += 1
            if self._obs is not None:
                self._obs.emit(
                    now, obs_events.SLOW, victim.replica_id, None,
                    (event.slowdown, event.duration),
                )
            victim.slowdown = max(victim.slowdown, event.slowdown)
            # Overlapping windows extend the degradation; only the _SLOW_END
            # at (or past) the high-water mark ends it.
            victim.slow_until = max(victim.slow_until, now + event.duration)
            self._push(now + event.duration, _SLOW_END, victim.replica_id)
            return
        self._crashes += 1
        if (
            self._obs is not None
            and victim.ff_plan is not None
            and victim.ff_done > 0
        ):
            # The crash aborts a stretch mid-flight; flush the completed
            # portion so the trace shows the work that did happen.
            self._obs.emit(
                now, obs_events.STRETCH, victim.replica_id, None,
                (
                    victim.ff_done,
                    len(victim.ff_plan.decode),
                    victim.ff_start,
                    victim.pool.allocator.token_utilization,
                ),
            )
        lost = victim.fail_over()
        if self._obs is not None:
            self._obs.emit(
                now, obs_events.CRASH, victim.replica_id, None, (len(lost),)
            )
        self._push(now + event.duration, _RECOVER, victim.replica_id)
        for state in lost:
            self._rerouted += 1
            self._route(
                RequestState(
                    record=state.record,
                    prefill_target=state.context_tokens,
                    decoded=state.decoded,
                    pool_arrival=now,
                ),
                now,
            )

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def _push_next_arrival(self) -> None:
        """Pull one request from the streaming trace onto the event heap."""
        stream = self._arrival_stream
        if stream is None:
            return
        request = next(stream, None)
        if request is None:
            self._arrival_stream = None
            # Exhausted: the run completes when every pushed arrival finishes.
            self._num_requests = self._pushed_arrivals
            return
        arrival = request.arrival_time
        if arrival < self._last_arrival:
            raise ValueError(
                "streaming fleet traces must be sorted by arrival_time "
                f"(request {request.request_id!r} arrives at {arrival!r} "
                f"after {self._last_arrival!r})"
            )
        self._last_arrival = arrival
        if self._pushed_arrivals == 0:
            self._first_arrival = arrival
        self._pushed_arrivals += 1
        self._push(arrival, _ARRIVAL, request)

    def run(
        self,
        trace: Iterable[Request],
        slo: Optional[SLO] = None,
        collect_timeline: bool = False,
    ) -> FleetResult:
        slo = slo or SLO()
        cfg = self.config
        streaming = not cfg.retain_records
        if streaming and collect_timeline:
            raise ValueError(
                "collect_timeline needs O(iterations) span memory; "
                "incompatible with retain_records=False"
            )
        if not streaming and not isinstance(trace, Sequence):
            trace = list(trace)
        if isinstance(trace, Sequence) and not trace:
            raise ValueError("fleet run needs a non-empty trace")

        self._heap: List[tuple] = []
        self._seq = 0
        self._replicas: List[_Replica] = []
        self._held: List[RequestState] = []
        self._finished = 0
        self._total_iterations = 0
        self._rerouted = 0
        self._crashes = 0
        self._slow_events = 0
        self._scale_up_events = 0
        self._scale_down_events = 0
        self._warm_remaining = cfg.warm_pool
        self._arrivals_since_tick = 0
        self._rate_ewma: Optional[float] = None
        self._autoscaler: Autoscaler = make_autoscaler(cfg.autoscaler)
        self._spans: Optional[List[Tuple[int, float, float]]] = [] if collect_timeline else None
        self._obs: Optional[EventRecorder] = cfg.observe
        self._streaming: Optional[StreamingMetrics] = (
            StreamingMetrics(
                slo,
                tenant_slos=cfg.tenancy.slo_map() if cfg.tenancy is not None else None,
            )
            if streaming
            else None
        )
        self._arrival_stream: Optional[Iterator[Request]] = None
        self._pushed_arrivals = 0
        self._last_arrival = float("-inf")
        self._first_arrival = 0.0

        for _ in range(cfg.initial_replicas):
            self._new_replica(0.0, 0.0)

        if streaming:
            # Lazy arrivals: exactly one future arrival sits on the heap;
            # popping it pulls the next from the iterator.  Until the
            # iterator exhausts, the total is unknown — ``inf`` keeps every
            # "more work coming" condition true; exhaustion pins it to the
            # pushed count.  (The eager path's global duplicate-id check is
            # skipped here: it would need O(trace) memory.)
            records: Dict[object, RequestRecord] = {}
            self._num_requests = float("inf")
            self._arrival_stream = iter(trace)
            self._push_next_arrival()
            if self._pushed_arrivals == 0:
                raise ValueError("fleet run needs a non-empty trace")
        else:
            records = {request.request_id: RequestRecord(request) for request in trace}
            if len(records) != len(trace):
                raise ValueError("trace carries duplicate request ids")
            self._num_requests = len(trace)
            for request in sorted(trace, key=lambda r: (r.arrival_time, r.request_id)):
                self._push(request.arrival_time, _ARRIVAL, request)
        for event in self.failure_plan.events:
            self._push(event.time, _FAIL, event)
        if cfg.autoscaler.policy != "none":
            self._push(cfg.autoscaler.interval, _SCALE)

        now = 0.0
        end_time = 0.0
        while self._heap:
            time, _, kind, payload = heapq.heappop(self._heap)
            now = time
            if kind == _ARRIVAL:
                self._arrivals_since_tick += 1
                if self._obs is not None:
                    self._obs.emit(
                        now, obs_events.ARRIVE, obs_events.CLUSTER_TRACK,
                        payload.request_id,
                    )
                if self._streaming is not None:
                    record = RequestRecord(payload)
                    self._push_next_arrival()
                else:
                    record = records[payload.request_id]
                self._route(RequestState(record=record), now)
            elif kind == _ITERATION:
                replica_id, epoch, duration = payload
                replica = self._replicas[replica_id]
                if replica.epoch != epoch or replica.busy_plan is None:
                    continue  # the replica crashed while this iteration ran
                self._complete_iteration(replica, duration, now)
            elif kind == _PROVISION:
                replica = self._replicas[payload]
                if replica.state is _ReplicaState.PROVISIONING:
                    replica.state = _ReplicaState.ACTIVE
                    if self._obs is not None:
                        self._obs.emit(now, obs_events.ACTIVATE, replica.replica_id)
                    self._flush_held(now)
                    self._kick(replica, now)
            elif kind == _FAIL:
                if self._finished < self._num_requests:
                    self._on_fail(payload, now)
            elif kind == _RECOVER:
                replica = self._replicas[payload]
                if replica.state is _ReplicaState.FAILED:
                    replica.recover()
                    if self._obs is not None:
                        self._obs.emit(now, obs_events.RECOVER, replica.replica_id)
                    self._flush_held(now)
                    self._kick(replica, now)
            elif kind == _SLOW_END:
                replica = self._replicas[payload]
                if now >= replica.slow_until - 1e-12:
                    replica.slowdown = 1.0
                    if self._obs is not None:
                        self._obs.emit(now, obs_events.SLOW_END, replica.replica_id)
            elif kind == _SCALE:
                if self._finished < self._num_requests:
                    self._on_scale(now)
            if self._finished >= self._num_requests:
                end_time = now
                break
        else:
            end_time = now

        if self._finished < self._num_requests:
            raise RuntimeError(
                f"fleet drained its event heap with "
                f"{self._num_requests - self._finished} requests unfinished"
            )
        return self._collect(list(records.values()), end_time, slo)

    # ------------------------------------------------------------------
    def _collect(
        self, records: List[RequestRecord], end_time: float, slo: SLO
    ) -> FleetResult:
        cfg = self.config
        if self._streaming is not None:
            duration = max(end_time - self._first_arrival, 1e-12)
        else:
            arrivals = [r.request.arrival_time for r in records]
            duration = max(end_time - min(arrivals), 1e-12)
        busy = sum(r.busy_time for r in self._replicas)
        kv_mean = (
            sum(r.kv_weighted for r in self._replicas) / busy if busy > 0 else 0.0
        )
        admitted = prefilled = requeued = preemptions = 0
        hit_tokens = hit_requests = prefix_evictions = 0
        flops_saved = flops_executed = 0.0
        for replica in self._replicas:
            a, p, q, e = replica.counters()
            admitted += a
            prefilled += p
            requeued += q
            preemptions += e
            ht, hr, fs, fe, ev = replica.prefix_counters()
            hit_tokens += ht
            hit_requests += hr
            flops_saved += fs
            flops_executed += fe
            prefix_evictions += ev
        required = hit_tokens + prefilled
        metric_kwargs = dict(
            kv_utilization_mean=kv_mean,
            kv_utilization_peak=max((r.kv_peak for r in self._replicas), default=0.0),
            preemptions=preemptions,
            prefix_hit_rate=hit_tokens / required if required else 0.0,
            prefix_hit_tokens=hit_tokens,
            prefix_flops_saved=flops_saved,
            prefix_evictions=prefix_evictions,
        )
        if self._streaming is not None:
            metrics = self._streaming.finalize(duration, **metric_kwargs)
            tenant_metrics = self._streaming.tenant_metrics(duration)
        else:
            metrics = compute_metrics(records, duration, slo, **metric_kwargs)
            tenant_metrics = compute_tenant_metrics(
                records,
                duration,
                slo,
                tenant_slos=cfg.tenancy.slo_map() if cfg.tenancy is not None else None,
            )
        hours_by_type: Dict[str, float] = {}
        for replica in self._replicas:
            hours = replica.gpu_seconds(end_time) / 3600.0
            hours_by_type[replica.gpu_name] = hours_by_type.get(replica.gpu_name, 0.0) + hours
        gpu_hours = sum(hours_by_type.values())
        cost = sum(GPU_HOURLY_USD[name] * hours for name, hours in hours_by_type.items())
        peak = 0
        provisioned_now = 0
        # Peak concurrency is the high-water mark of provisioned-and-not-yet-
        # retired replicas over the replica timeline (provision/retire pairs).
        events = []
        for replica in self._replicas:
            events.append((replica.provisioned_at, 1, replica.replica_id))
            if replica.retired_at is not None:
                events.append((replica.retired_at, -1, replica.replica_id))
        for _, delta, _ in sorted(events):
            provisioned_now += delta
            peak = max(peak, provisioned_now)
        stats = FleetStats(
            router=self.router.name,
            replicas_provisioned=len(self._replicas),
            replicas_peak=peak,
            replicas_final=sum(
                1
                for r in self._replicas
                if r.state in (_ReplicaState.ACTIVE, _ReplicaState.PROVISIONING)
            ),
            scale_up_events=self._scale_up_events,
            scale_down_events=self._scale_down_events,
            crashes=self._crashes,
            slow_events=self._slow_events,
            rerouted_requests=self._rerouted,
            gpu_hours=gpu_hours,
            gpu_hours_by_type=hours_by_type,
            cost_usd=cost,
        )
        timeline = None
        if self._spans is not None:
            timeline = Timeline(num_devices=len(self._replicas))
            for index, (device, start, end) in enumerate(self._spans):
                timeline.add(
                    TimelineSpan(
                        device=device,
                        work=Pass(
                            kind=PassKind.FORWARD,
                            microbatch=index,
                            stage=0,
                            device=device,
                        ),
                        start=start,
                        end=end,
                    )
                )
        return FleetResult(
            metrics=metrics,
            fleet=stats,
            records=records,
            iterations=self._total_iterations,
            tokens_admitted=admitted,
            tokens_prefilled=prefilled,
            tokens_preempted_requeued=requeued,
            preemptions=preemptions,
            timeline=timeline,
            prefix_hit_tokens=hit_tokens,
            prefix_hit_requests=hit_requests,
            prefix_flops_saved=flops_saved,
            prefill_flops_executed=flops_executed,
            prefix_evictions=prefix_evictions,
            retain_records=self._streaming is None,
            tenant_metrics=tenant_metrics,
        )
