"""Named fleet scenarios: workload + fleet deployment knobs, pinned.

The fleet analogue of :mod:`repro.serving.scenarios`: every entry bundles a
deterministic trace factory with everything a fair fleet comparison needs
fixed — model, per-replica GPU slice, device mix, initial fleet size, router,
autoscaling policy, failure plan, sessions and SLO.  :func:`run_fleet_scenario`
drives the :class:`~repro.fleet.cluster.FleetEngine` end to end; its
``load_scale`` knob compresses arrival times (``2.0`` doubles the offered
QPS with the same request mix), which is what the capacity planner sweeps.

The registry:

``canary-chat``
    A tiny fixed-fleet chat trace: the fast smoke scenario tests and CI use,
    and the planner-monotonicity fixture.
``steady-chat``
    Steady Poisson chat over a reactive queue-depth autoscaler — the
    baseline fleet every routing policy should handle.
``bursty-long``
    Thundering herds of 32K prompts over background chat: the scenario where
    routing long prefills *away* from loaded replicas separates the
    token-aware policies from round-robin, and the capacity-planner
    acceptance scenario.
``flash-crowd``
    A 5x arrival-rate step mid-trace with a predictive arrival-rate
    autoscaler and a warm pool — reaction latency is the whole game.
``unreliable``
    Steady chat on a fixed fleet with injected crashes and a slow node:
    exercises failover re-routing and degradation-aware policies.
``hetero-mixed``
    Chat plus long-prompt RAG on a fleet that alternates Hopper and Ampere
    replicas — the KV-aware router's home turf.
``shared-system-prompt``
    Chat behind one large common system prompt with per-replica shared-prefix
    KV caching and an arrival-rate autoscaler: the prefix-hit-aware capacity
    signal provisions fewer replicas for the same SLO.
``rag-shared-corpus``
    Zipf-skewed RAG over a shared corpus routed ``kv-aware``: the router's
    prefix-hit potential concentrates each document's traffic where its KV
    blocks already live.
``agentic-prefix-tree``
    Interleaved agent sessions routed ``session-affinity`` with explicit
    ``Request.session`` ids, so a session's growing prefix branch stays on
    its home replica and later turns hit the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..constants import UnknownNameError
from ..model.config import get_model_config
from ..obs.events import EventRecorder
from ..serving.batcher import BatcherConfig
from ..serving.metrics import SLO
from ..serving.workload import (
    Request,
    agentic_tree_trace,
    bursty_trace,
    long_context_trace,
    merge_traces,
    poisson_trace,
    rag_corpus_trace,
    shared_prefix_trace,
)
from .autoscaler import AutoscalerConfig
from .cluster import FleetConfig, FleetEngine, FleetResult
from .failures import FailureEvent, FailurePlan

__all__ = [
    "FleetScenario",
    "FLEET_SCENARIO_REGISTRY",
    "get_fleet_scenario",
    "run_fleet_scenario",
]


@dataclass(frozen=True)
class FleetScenario:
    """A reproducible fleet experiment: workload plus deployment knobs."""

    name: str
    description: str
    trace_factory: Callable[[int], List[Request]]
    model: str = "llama-13b"
    gpus_per_replica: int = 4
    gpu_types: Tuple[str, ...] = ("hopper-80gb",)
    initial_replicas: int = 3
    min_replicas: int = 1
    max_replicas: int = 16
    slo: SLO = field(default_factory=lambda: SLO(ttft=2.0, tpot=0.05))
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    block_tokens: int = 256
    router: str = "least-tokens"
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    failure_plan: FailurePlan = field(default_factory=FailurePlan)
    sessions: int = 24
    scale_up_latency: float = 20.0
    warm_pool: int = 0
    warm_up_latency: float = 2.0
    prefix_caching: bool = False

    def make_trace(self, seed: int = 0, load_scale: float = 1.0) -> List[Request]:
        """The scenario's trace; ``load_scale > 1`` compresses arrivals."""
        if load_scale <= 0:
            raise ValueError("load_scale must be positive")
        trace = self.trace_factory(seed)
        if load_scale == 1.0:
            return trace
        return [
            replace(request, arrival_time=request.arrival_time / load_scale)
            for request in trace
        ]

    def fleet_config(
        self,
        replicas: Optional[int] = None,
        autoscale: Optional[bool] = None,
    ) -> FleetConfig:
        """The scenario's engine configuration (colocated TPOT cap wired in).

        ``replicas`` pins the initial fleet size; ``autoscale=False`` freezes
        it there (the capacity planner evaluates fixed fleets this way).
        """
        autoscaler = self.autoscaler
        if autoscale is False:
            autoscaler = replace(autoscaler, policy="none")
        initial = self.initial_replicas if replicas is None else replicas
        maximum = max(self.max_replicas, initial)
        return FleetConfig(
            gpus_per_replica=self.gpus_per_replica,
            gpu_types=self.gpu_types,
            initial_replicas=initial,
            min_replicas=min(self.min_replicas, initial),
            max_replicas=maximum,
            block_tokens=self.block_tokens,
            batcher=self.batcher,
            tpot_cap=0.7 * self.slo.tpot,
            scale_up_latency=self.scale_up_latency,
            warm_pool=self.warm_pool,
            warm_up_latency=self.warm_up_latency,
            autoscaler=autoscaler,
            sessions=self.sessions,
            prefix_caching=self.prefix_caching,
        )


def _canary_chat_trace(seed: int) -> List[Request]:
    return poisson_trace(
        num_requests=60,
        arrival_rate=2.0,
        prompt_mean=4096,
        output_mean=64,
        seed=seed,
    )


def _steady_chat_trace(seed: int) -> List[Request]:
    return poisson_trace(
        num_requests=240,
        arrival_rate=3.0,
        prompt_mean=2048,
        output_mean=192,
        seed=seed,
    )


def _bursty_long_trace(seed: int) -> List[Request]:
    bursts = bursty_trace(
        num_bursts=6,
        burst_size=8,
        burst_interval=12.0,
        prompt_mean=32_768,
        output_mean=128,
        seed=seed,
        prompt_cv=0.15,
        output_cv=0.25,
    )
    background = poisson_trace(
        num_requests=60,
        arrival_rate=1.0,
        prompt_mean=2048,
        output_mean=128,
        seed=seed + 1,
    )
    return merge_traces(bursts, background)


def _flash_crowd_trace(seed: int) -> List[Request]:
    background = poisson_trace(
        num_requests=70,
        arrival_rate=1.0,
        prompt_mean=2048,
        output_mean=160,
        seed=seed,
    )
    crowd = [
        replace(request, arrival_time=request.arrival_time + 30.0)
        for request in poisson_trace(
            num_requests=100,
            arrival_rate=5.0,
            prompt_mean=2048,
            output_mean=160,
            seed=seed + 1,
        )
    ]
    return merge_traces(background, crowd)


def _unreliable_trace(seed: int) -> List[Request]:
    return poisson_trace(
        num_requests=180,
        arrival_rate=2.5,
        prompt_mean=2048,
        output_mean=160,
        seed=seed,
    )


def _unreliable_failures() -> FailurePlan:
    return FailurePlan(
        events=(
            FailureEvent(time=20.0, kind="crash", replica_index=0, duration=25.0),
            FailureEvent(
                time=35.0, kind="slow", replica_index=1, duration=20.0, slowdown=2.5
            ),
            FailureEvent(time=50.0, kind="crash", replica_index=2, duration=25.0),
        )
    )


def _hetero_mixed_trace(seed: int) -> List[Request]:
    chat = poisson_trace(
        num_requests=120,
        arrival_rate=1.5,
        prompt_mean=2048,
        output_mean=160,
        seed=seed,
    )
    rag = long_context_trace(
        num_requests=40,
        arrival_rate=0.5,
        short_prompt_mean=2048,
        long_prompt_mean=32_768,
        long_fraction=0.35,
        output_mean=192,
        seed=seed + 1,
    )
    return merge_traces(chat, rag)


def _fleet_shared_prompt_trace(seed: int) -> List[Request]:
    return shared_prefix_trace(
        num_requests=140,
        arrival_rate=2.5,
        prefix_tokens=8192,
        suffix_mean=256,
        output_mean=128,
        seed=seed,
    )


def _fleet_rag_corpus_trace(seed: int) -> List[Request]:
    return rag_corpus_trace(
        num_requests=100,
        arrival_rate=1.2,
        num_documents=16,
        document_tokens=16_384,
        question_mean=384,
        output_mean=128,
        seed=seed,
        system_tokens=1024,
    )


def _fleet_agentic_trace(seed: int) -> List[Request]:
    return agentic_tree_trace(
        num_sessions=16,
        turns_per_session=5,
        scaffold_tokens=4096,
        turn_tokens=512,
        output_mean=160,
        seed=seed,
        session_rate=0.8,
    )


FLEET_SCENARIO_REGISTRY: Dict[str, FleetScenario] = {
    scenario.name: scenario
    for scenario in (
        FleetScenario(
            name="canary-chat",
            description="tiny chat canary: the fast smoke / planner-test scenario",
            trace_factory=_canary_chat_trace,
            initial_replicas=2,
            max_replicas=8,
            sessions=8,
        ),
        FleetScenario(
            name="steady-chat",
            description="steady Poisson chat on a reactive queue-depth autoscaler",
            trace_factory=_steady_chat_trace,
            initial_replicas=3,
            autoscaler=AutoscalerConfig(policy="queue-depth", interval=5.0),
        ),
        FleetScenario(
            name="bursty-long",
            description="herds of 32K prompts over background chat (planner scenario)",
            trace_factory=_bursty_long_trace,
            initial_replicas=4,
            slo=SLO(ttft=4.0, tpot=0.05),
            autoscaler=AutoscalerConfig(policy="queue-depth", interval=5.0),
        ),
        FleetScenario(
            name="flash-crowd",
            description="5x arrival-rate step against a predictive autoscaler",
            trace_factory=_flash_crowd_trace,
            initial_replicas=2,
            slo=SLO(ttft=3.0, tpot=0.05),
            autoscaler=AutoscalerConfig(
                policy="arrival-rate", interval=5.0, replica_rps=1.5, headroom=1.3
            ),
            scale_up_latency=15.0,
            warm_pool=2,
        ),
        FleetScenario(
            name="unreliable",
            description="steady chat with injected crashes and a slow node",
            trace_factory=_unreliable_trace,
            initial_replicas=4,
            slo=SLO(ttft=3.0, tpot=0.05),
            failure_plan=_unreliable_failures(),
            sessions=16,
        ),
        FleetScenario(
            name="hetero-mixed",
            description="chat + RAG on alternating Hopper/Ampere replicas",
            trace_factory=_hetero_mixed_trace,
            gpu_types=("hopper-80gb", "ampere-80gb"),
            initial_replicas=4,
            slo=SLO(ttft=5.0, tpot=0.08),
            router="kv-aware",
        ),
        FleetScenario(
            name="shared-system-prompt",
            description="chat behind one 8K system prompt, prefix caching + rate autoscaler",
            trace_factory=_fleet_shared_prompt_trace,
            initial_replicas=2,
            max_replicas=8,
            slo=SLO(ttft=2.5, tpot=0.05),
            autoscaler=AutoscalerConfig(
                policy="arrival-rate", interval=5.0, replica_rps=1.0, headroom=1.2
            ),
            prefix_caching=True,
        ),
        FleetScenario(
            name="rag-shared-corpus",
            description="Zipf RAG corpus routed kv-aware onto prefix-warm replicas",
            trace_factory=_fleet_rag_corpus_trace,
            initial_replicas=3,
            slo=SLO(ttft=6.0, tpot=0.06),
            router="kv-aware",
            prefix_caching=True,
        ),
        FleetScenario(
            name="agentic-prefix-tree",
            description="agent sessions pinned to prefix-warm homes via session affinity",
            trace_factory=_fleet_agentic_trace,
            initial_replicas=3,
            slo=SLO(ttft=3.0, tpot=0.05),
            router="session-affinity",
            prefix_caching=True,
        ),
    )
}


def get_fleet_scenario(name: str) -> FleetScenario:
    """Look up a fleet scenario by name, listing valid names on a miss."""
    try:
        return FLEET_SCENARIO_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown fleet scenario {name!r}; "
            f"available: {sorted(FLEET_SCENARIO_REGISTRY)}"
        ) from None


def run_fleet_scenario(
    scenario: FleetScenario,
    router: Optional[str] = None,
    replicas: Optional[int] = None,
    seed: int = 0,
    load_scale: float = 1.0,
    autoscale: Optional[bool] = None,
    with_failures: bool = True,
    collect_timeline: bool = False,
    fast_forward: bool = True,
    prefix_caching: Optional[bool] = None,
    observe: Optional[EventRecorder] = None,
) -> FleetResult:
    """Simulate a fleet scenario end to end.

    ``router`` / ``replicas`` / ``autoscale`` / ``prefix_caching`` override
    the scenario's defaults (the CLI and the capacity planner map their
    flags through here); ``with_failures=False`` strips the scenario's
    failure plan; ``fast_forward=False`` runs the naive per-iteration
    reference stepper instead of the pre-planned decode stretches.
    ``observe`` threads an :class:`~repro.obs.events.EventRecorder` through
    the cluster and every replica pool (opt-in observability).
    """
    model = get_model_config(scenario.model)
    config = scenario.fleet_config(replicas=replicas, autoscale=autoscale)
    if not fast_forward:
        config = replace(config, fast_forward=False)
    if prefix_caching is not None:
        config = replace(config, prefix_caching=prefix_caching)
    if observe is not None:
        config = replace(config, observe=observe)
    engine = FleetEngine(
        model,
        config,
        router=router or scenario.router,
        failure_plan=scenario.failure_plan if with_failures else FailurePlan(),
    )
    trace = scenario.make_trace(seed=seed, load_scale=load_scale)
    return engine.run(trace, scenario.slo, collect_timeline=collect_timeline)
