"""Fleet-scale serving: multi-replica routing, autoscaling, failure recovery.

The fleet package lifts the single-replica serving simulator
(:mod:`repro.serving`) to cluster scale: many replicas — each its own
continuous-batching pool, possibly on different GPU types — behind a
pluggable router, under an autoscaler, with failures injected and requests
re-routed around them.  On top sits the capacity planner, which searches the
cheapest fixed fleet meeting an SLO at a given load through the sweep
engine.

Modules
-------
``router``
    Request routing policies over observable replica snapshots: round-robin,
    least-outstanding-tokens, session-affinity, KV-load-aware — the latter
    two rank on per-replica prefix-hit potential when shared-prefix KV
    caching is on.
``autoscaler``
    Reactive (queue-depth) and predictive (arrival-rate EWMA) scaling
    policies, evaluated on a tick against provisioning latencies; the
    predictive policy credits the fleet's prefix-cache hit rate as an
    effective-capacity gain.
``failures``
    Deterministic failure plans: replica crashes with restart and failover
    re-routing, slow-node degradation windows.
``cluster``
    The :class:`FleetEngine` discrete-event loop composing serving pools,
    router, autoscaler and failure plan on one event heap; GPU-hour and
    dollar metering.
``scenarios``
    Named fleet scenarios (steady chat, bursty long prompts, flash crowd,
    unreliable fleet, heterogeneous mix, and the shared-prefix families:
    shared-system-prompt, rag-shared-corpus, agentic-prefix-tree) plus the
    ``run_fleet_scenario`` driver.
``planner``
    :func:`plan_capacity`: ladder-plus-bisect search of the minimal replica
    count meeting a TTFT-p99 / goodput SLO, evaluated through the sweep
    engine.
"""

from .autoscaler import (
    AUTOSCALER_REGISTRY,
    Autoscaler,
    AutoscalerConfig,
    FleetView,
    available_autoscalers,
    make_autoscaler,
)
from .cluster import (
    GPU_HOURLY_USD,
    FleetConfig,
    FleetEngine,
    FleetResult,
    FleetStats,
)
from .failures import FailureEvent, FailurePlan, random_failure_plan
from .planner import CapacityPlan, plan_capacity
from .router import (
    ROUTER_REGISTRY,
    KVLoadAwareRouter,
    LeastOutstandingTokensRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    available_routers,
    get_router,
)
from .scenarios import (
    FLEET_SCENARIO_REGISTRY,
    FleetScenario,
    get_fleet_scenario,
    run_fleet_scenario,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "SessionAffinityRouter",
    "KVLoadAwareRouter",
    "ReplicaSnapshot",
    "ROUTER_REGISTRY",
    "available_routers",
    "get_router",
    "Autoscaler",
    "AutoscalerConfig",
    "FleetView",
    "AUTOSCALER_REGISTRY",
    "available_autoscalers",
    "make_autoscaler",
    "FailureEvent",
    "FailurePlan",
    "random_failure_plan",
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "FleetStats",
    "GPU_HOURLY_USD",
    "FleetScenario",
    "FLEET_SCENARIO_REGISTRY",
    "get_fleet_scenario",
    "run_fleet_scenario",
    "CapacityPlan",
    "plan_capacity",
]
