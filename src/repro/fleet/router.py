"""Pluggable request routers for the fleet layer.

A router is the fleet's admission front door: every arriving request is
assigned to exactly one replica, based only on the *observable* state of the
healthy replicas (queue depth, outstanding tokens, free KV blocks) — never on
simulator internals a real load balancer could not see.  Routers are small
stateful objects resolved by name from :data:`ROUTER_REGISTRY`, mirroring the
model/scenario registries:

``round-robin``
    Cycle through the healthy replicas in id order.  Oblivious to load; the
    baseline every serving load-balancer paper compares against.
``least-tokens``
    Join the replica with the fewest *outstanding tokens* (prefill remaining
    plus decode remaining over its queued and running requests) — the
    token-weighted analogue of least-outstanding-requests, which matters when
    one 512K prompt weighs as much as hundreds of chat requests.
``session-affinity``
    Sticky routing: a session's first request picks the least-loaded replica
    and later requests follow it (warm KV / prefix reuse in a real system).
    A session whose home replica fails or drains is re-homed.  When replicas
    report **prefix-hit potential** (shared-prefix caching on), a new
    session is placed where the most of its declared prefix is already
    cached before load is consulted.
``kv-aware``
    Join the replica with the largest free share of its paged-KV pool,
    breaking ties by outstanding tokens.  Long-context traffic is admitted
    where it will not trigger preemption storms.  Prefix-hit potential
    dominates when present: a replica that can serve the request's prompt
    head from its prefix cache beats a merely-empty one.

Prefix-hit potential (``ReplicaSnapshot.prefix_match_blocks``) is the number
of leading KV blocks of the arriving request's declared prefix already
resident on the replica — observable in real deployments via prefix-cache
lookup APIs.  It is zero whenever prefix caching is off or the request
declares no prefix, in which case every policy reduces exactly to its
pre-prefix behavior.

Every policy breaks remaining ties by replica id, so routing is a pure
function of (request order, snapshot history) and fleet runs are
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..constants import UnknownNameError
from ..serving.workload import Request

__all__ = [
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "SessionAffinityRouter",
    "KVLoadAwareRouter",
    "ROUTER_REGISTRY",
    "available_routers",
    "get_router",
]


@dataclass(frozen=True, slots=True)
class ReplicaSnapshot:
    """What the router is allowed to observe about one healthy replica.

    Slotted: one snapshot per healthy replica is built for *every* arrival.
    """

    replica_id: int
    queue_depth: int
    running_requests: int
    outstanding_tokens: int
    kv_free_fraction: float
    gpu: str = "hopper-80gb"
    #: Leading blocks of the arriving request's declared prefix already
    #: cached on this replica (0 when prefix caching is off).
    prefix_match_blocks: int = 0
    #: Waiting-queue depth per tagged tenant, as name-sorted ``(tenant,
    #: depth)`` pairs — observable in real deployments via per-tenant queue
    #: gauges.  Empty for anonymous (untagged) workloads, so policies that
    #: ignore it behave exactly as before tenancy existed.
    tenant_queue_depths: Tuple[Tuple[str, int], ...] = ()

    def tenant_queue_depth(self, tenant: str) -> int:
        """This replica's waiting count for one tenant (0 when absent)."""
        for name, depth in self.tenant_queue_depths:
            if name == tenant:
                return depth
        return 0


class Router:
    """Base class: route one request to one of the offered replicas.

    ``snapshots`` only ever contains replicas that accept new work; the
    cluster holds requests back (and re-offers them) when the list would be
    empty.  Implementations must be deterministic.
    """

    name = "base"

    def route(
        self, request: Request, session: int, snapshots: Sequence[ReplicaSnapshot]
    ) -> int:
        raise NotImplementedError

    def _require(self, snapshots: Sequence[ReplicaSnapshot]) -> None:
        if not snapshots:
            raise ValueError("route() offered no replicas; the cluster must hold")


class RoundRobinRouter(Router):
    """Cycle through healthy replicas in id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(
        self, request: Request, session: int, snapshots: Sequence[ReplicaSnapshot]
    ) -> int:
        self._require(snapshots)
        ordered = sorted(snapshots, key=lambda s: s.replica_id)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice.replica_id


class LeastOutstandingTokensRouter(Router):
    """Join the replica with the fewest outstanding (queued + running) tokens."""

    name = "least-tokens"

    def route(
        self, request: Request, session: int, snapshots: Sequence[ReplicaSnapshot]
    ) -> int:
        self._require(snapshots)
        return min(
            snapshots,
            key=lambda s: (s.outstanding_tokens, s.queue_depth, s.replica_id),
        ).replica_id


class SessionAffinityRouter(Router):
    """Sticky session routing with least-tokens placement of new sessions."""

    name = "session-affinity"

    def __init__(self) -> None:
        self._homes: Dict[int, int] = {}

    def route(
        self, request: Request, session: int, snapshots: Sequence[ReplicaSnapshot]
    ) -> int:
        self._require(snapshots)
        alive = {s.replica_id for s in snapshots}
        home = self._homes.get(session)
        if home is not None and home in alive:
            return home
        placed = min(
            snapshots,
            key=lambda s: (
                -s.prefix_match_blocks,
                s.outstanding_tokens,
                s.queue_depth,
                s.replica_id,
            ),
        ).replica_id
        self._homes[session] = placed
        return placed


class KVLoadAwareRouter(Router):
    """Join the replica with the best prefix-hit potential, then most free KV."""

    name = "kv-aware"

    def route(
        self, request: Request, session: int, snapshots: Sequence[ReplicaSnapshot]
    ) -> int:
        self._require(snapshots)
        return min(
            snapshots,
            key=lambda s: (
                -s.prefix_match_blocks,
                -s.kv_free_fraction,
                s.outstanding_tokens,
                s.replica_id,
            ),
        ).replica_id


ROUTER_REGISTRY: Dict[str, Callable[[], Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingTokensRouter.name: LeastOutstandingTokensRouter,
    SessionAffinityRouter.name: SessionAffinityRouter,
    KVLoadAwareRouter.name: KVLoadAwareRouter,
}


def available_routers() -> List[str]:
    return sorted(ROUTER_REGISTRY)


def get_router(name: str) -> Router:
    """Instantiate a router policy by name, listing valid names on a miss."""
    try:
        return ROUTER_REGISTRY[name]()
    except KeyError:
        raise UnknownNameError(
            f"unknown router {name!r}; available: {available_routers()}"
        ) from None
