"""Capacity planning: the cheapest fleet that meets an SLO at a given load.

Answers the operator question the fleet layer exists for — *"how many
replicas (GPUs) do I need to hit this SLO at this traffic?"* — by searching
fleet size over fixed (non-autoscaled) deployments of a registered scenario:

1. **Ladder.**  Evaluate a doubling ladder of replica counts
   (1, 2, 4, ... up to the cap) as *one* sweep — the points are independent,
   so :func:`repro.sweep.engine.run_sweep` fans them out over workers and
   memoizes each (scenario, router, replicas, load) point in the shared
   sweep cache.
2. **Bisect.**  Between the largest infeasible and the smallest feasible
   rung, binary-search the exact frontier with single-point sweeps (same
   spec name, so the cache file keeps accumulating).

Feasibility is ``ttft_p99 <= slo_ttft_p99`` plus an optional goodput floor.
Queueing delay grows monotonically as replicas are removed, so the frontier
is well-defined; the planner-monotonicity test (higher ``load_scale`` never
plans fewer replicas) guards that assumption against engine regressions.

The chosen fleet is priced from the simulated replica-hours via
:data:`~repro.fleet.cluster.GPU_HOURLY_USD` — with a homogeneous scenario
the minimal feasible replica count *is* the cheapest fleet, and the report
shows the GPU-hours / dollar cost of every candidate evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.report import format_percent, render_table
from ..sweep.cache import SweepCache
from ..sweep.engine import run_sweep
from ..sweep.spec import Scalar, SweepSpec
from .scenarios import FleetScenario, get_fleet_scenario

__all__ = ["CapacityPlan", "plan_capacity"]


@dataclass
class CapacityPlan:
    """Outcome of one capacity-planning search."""

    scenario: str
    router: str
    seed: int
    load_scale: float
    slo_ttft_p99: float
    min_goodput: Optional[float]
    replicas: Optional[int]
    evaluations: List[Tuple[int, Dict[str, Scalar]]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.replicas is not None

    @property
    def chosen(self) -> Optional[Dict[str, Scalar]]:
        for replicas, metrics in self.evaluations:
            if replicas == self.replicas:
                return metrics
        return None

    def to_text(self) -> str:
        rows = []
        for replicas, metrics in self.evaluations:
            rows.append(
                (
                    replicas,
                    "<- plan" if replicas == self.replicas else "",
                    f"{float(metrics['ttft_p99']):.2f} s",
                    format_percent(float(metrics["goodput_fraction"])),
                    f"{float(metrics['gpu_hours']):.2f}",
                    f"${float(metrics['cost_usd']):.2f}",
                    "yes" if self._meets(metrics) else "no",
                )
            )
        table = render_table(
            ["replicas", "", "TTFT p99", "goodput", "GPU-hours", "cost", "meets SLO"],
            rows,
            title=(
                f"capacity plan — {self.scenario} | router {self.router} | "
                f"load x{self.load_scale:g} | TTFT p99 <= {self.slo_ttft_p99:g} s"
                + (
                    f" | goodput >= {format_percent(self.min_goodput)}"
                    if self.min_goodput is not None
                    else ""
                )
            ),
        )
        if self.feasible:
            chosen = self.chosen or {}
            verdict = (
                f"plan: {self.replicas} replicas "
                f"({float(chosen.get('gpu_hours', 0.0)):.2f} GPU-hours, "
                f"${float(chosen.get('cost_usd', 0.0)):.2f})\n"
            )
        else:
            ceiling = max((r for r, _ in self.evaluations), default=0)
            verdict = f"plan: infeasible within {ceiling} replicas\n"
        return table + verdict

    def _meets(self, metrics: Dict[str, Scalar]) -> bool:
        return _meets_slo(metrics, self.slo_ttft_p99, self.min_goodput)


def _meets_slo(
    metrics: Dict[str, Scalar], slo_ttft_p99: float, min_goodput: Optional[float]
) -> bool:
    if float(metrics["ttft_p99"]) > slo_ttft_p99:
        return False
    if min_goodput is not None and float(metrics["goodput_fraction"]) < min_goodput:
        return False
    return True


def _ladder(max_replicas: int) -> List[int]:
    rungs = []
    rung = 1
    while rung < max_replicas:
        rungs.append(rung)
        rung *= 2
    rungs.append(max_replicas)
    return rungs


def plan_capacity(
    scenario: Union[str, FleetScenario],
    slo_ttft_p99: float,
    min_goodput: Optional[float] = None,
    router: Optional[str] = None,
    seed: int = 0,
    load_scale: float = 1.0,
    max_replicas: Optional[int] = None,
    workers: int = 0,
    cache: Optional[SweepCache] = None,
) -> CapacityPlan:
    """Search the minimal fixed fleet meeting the SLO for ``scenario``.

    ``load_scale`` compresses the scenario's arrivals (2.0 = double QPS);
    ``workers`` / ``cache`` are handed to the sweep engine, which evaluates
    the ladder rungs in parallel and memoizes every point.
    """
    if slo_ttft_p99 <= 0:
        raise ValueError("slo_ttft_p99 must be positive")
    if min_goodput is not None and not 0.0 < min_goodput <= 1.0:
        raise ValueError("min_goodput must be in (0, 1]")
    if isinstance(scenario, str):
        scenario = get_fleet_scenario(scenario)
    router_name = router or scenario.router
    cap = max_replicas if max_replicas is not None else scenario.max_replicas
    if cap < 1:
        raise ValueError("max_replicas must be >= 1")

    base: Dict[str, Scalar] = {
        "scenario": scenario.name,
        "router": router_name,
        "seed": seed,
        "load_scale": load_scale,
        "autoscale": False,
        "with_failures": True,
    }

    def evaluate(replica_counts: List[int]) -> Dict[int, Dict[str, Scalar]]:
        spec = SweepSpec.make(
            name=f"fleet-plan-{scenario.name}",
            evaluator="fleet-scenario",
            axes={"replicas": tuple(replica_counts)},
            base=base,
        )
        sweep = run_sweep(spec, workers=workers, cache=cache)
        return {int(point["replicas"]): result for point, result in sweep}

    evaluations: Dict[int, Dict[str, Scalar]] = dict(evaluate(_ladder(cap)))
    feasible_rungs = sorted(
        r for r, m in evaluations.items() if _meets_slo(m, slo_ttft_p99, min_goodput)
    )
    plan = CapacityPlan(
        scenario=scenario.name,
        router=router_name,
        seed=seed,
        load_scale=load_scale,
        slo_ttft_p99=slo_ttft_p99,
        min_goodput=min_goodput,
        replicas=None,
    )
    if feasible_rungs:
        hi = feasible_rungs[0]
        infeasible = [r for r in evaluations if r < hi]
        lo = max(infeasible) if infeasible else 0
        while hi - lo > 1:
            mid = (lo + hi) // 2
            evaluations.update(evaluate([mid]))
            if _meets_slo(evaluations[mid], slo_ttft_p99, min_goodput):
                hi = mid
            else:
                lo = mid
        plan.replicas = hi
    plan.evaluations = sorted(evaluations.items())
    return plan
