"""FLOPs accounting for transformer forward / backward passes.

Everything in the simulator ultimately derives from these counts.  The model
follows standard conventions (a GEMM multiplying ``[m, k] @ [k, n]`` costs
``2*m*k*n`` FLOPs) and exposes *slice-aware* attention costs: for causal
attention the cost of a slice of queries depends on how many earlier
key/value tokens it attends to, which is exactly the source of the load
imbalance SlimPipe's context exchange removes (Section 4.2).

The central type is :class:`FlopsBreakdown`, which keeps the GEMM-like
("linear") component separate from the attention-core component because the
two behave differently in the backward pass: linear layers split evenly into
an input-gradient and a weight-gradient GEMM, whereas the attention core has
no weights (``T_w = 0``) and its backward costs roughly twice its forward
(Section 2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .config import ModelConfig

__all__ = [
    "FlopsBreakdown",
    "attention_core_flops",
    "layer_forward_flops",
    "output_layer_flops",
    "embedding_flops",
    "model_forward_flops",
    "model_flops_per_iteration",
]


@dataclass(frozen=True)
class FlopsBreakdown:
    """Forward FLOPs of a unit of work, split by operator family.

    ``linear`` covers every weight-bearing GEMM (QKV / output projections,
    MLP or MoE experts, vocabulary projection); ``attention`` covers the
    weight-free attention core (QK^T, softmax-weighted sum over V).
    """

    linear: float = 0.0
    attention: float = 0.0

    @property
    def total(self) -> float:
        return self.linear + self.attention

    # Backward-pass decomposition --------------------------------------
    def backward_input_grad(self) -> "FlopsBreakdown":
        """FLOPs of the activation-gradient part of the backward pass (T_b).

        A linear layer's backward performs one GEMM against the weights for
        the input gradient (same cost as forward); the attention core's
        backward recomputes both the score and context products with respect
        to Q, K and V, roughly twice the forward cost.
        """
        return FlopsBreakdown(linear=self.linear, attention=2.0 * self.attention)

    def backward_weight_grad(self) -> "FlopsBreakdown":
        """FLOPs of the weight-gradient part of the backward pass (T_w).

        The attention core has no weights, hence contributes nothing here.
        """
        return FlopsBreakdown(linear=self.linear, attention=0.0)

    def backward_total(self) -> "FlopsBreakdown":
        bi = self.backward_input_grad()
        bw = self.backward_weight_grad()
        return FlopsBreakdown(
            linear=bi.linear + bw.linear, attention=bi.attention + bw.attention
        )

    def __add__(self, other: "FlopsBreakdown") -> "FlopsBreakdown":
        return FlopsBreakdown(
            linear=self.linear + other.linear,
            attention=self.attention + other.attention,
        )

    def __mul__(self, factor: float) -> "FlopsBreakdown":
        return FlopsBreakdown(linear=self.linear * factor, attention=self.attention * factor)

    __rmul__ = __mul__


def attention_core_flops(
    model: ModelConfig, query_tokens: int, kv_offset: int, causal: bool = True
) -> float:
    """Forward FLOPs of the attention core for a slice of queries.

    Parameters
    ----------
    query_tokens:
        Number of query tokens in the slice.
    kv_offset:
        Number of key/value tokens *preceding* the slice (the KV cache the
        slice attends to in addition to itself).
    causal:
        When ``True`` (the default) each query attends to the cached tokens
        plus the in-slice tokens up to and including itself; when ``False``
        every query attends to ``kv_offset + query_tokens`` tokens.

    The per-query cost of attending to ``k`` keys is ``4 * h * k`` FLOPs
    (``2*h*k`` for ``QK^T`` and ``2*h*k`` for the weighted sum over ``V``).
    """
    if query_tokens <= 0:
        return 0.0
    if kv_offset < 0:
        raise ValueError(f"kv_offset must be non-negative, got {kv_offset}")
    h = model.hidden_size
    q = query_tokens
    if causal:
        # sum_{i=1..q} (kv_offset + i) = q*kv_offset + q*(q+1)/2
        attended = q * kv_offset + q * (q + 1) / 2.0
    else:
        attended = q * (kv_offset + q)
    return 4.0 * h * attended


@lru_cache(maxsize=1 << 16)
def layer_forward_flops(
    model: ModelConfig,
    query_tokens: int,
    kv_offset: int = 0,
    causal: bool = True,
) -> FlopsBreakdown:
    """Forward FLOPs of one transformer layer on a slice of ``query_tokens``.

    The linear component scales linearly in ``query_tokens``; the attention
    component additionally depends on ``kv_offset`` (causal attention over
    the earlier part of the sequence).  Memoized: the result is a frozen
    value object and this is the hottest leaf of every sweep (the planner
    grid search and the serving engine's per-iteration pricing).
    """
    h = model.hidden_size
    qkv = 2.0 * h * (h + 2 * model.kv_channels)
    out_proj = 2.0 * h * h
    mlp = 6.0 * h * model.ffn_hidden_size * model.active_experts
    router = 2.0 * h * model.num_experts if model.is_moe else 0.0
    linear = (qkv + out_proj + mlp + router) * query_tokens
    attn = attention_core_flops(model, query_tokens, kv_offset, causal=causal)
    return FlopsBreakdown(linear=linear, attention=attn)


@lru_cache(maxsize=1 << 14)
def output_layer_flops(model: ModelConfig, tokens: int) -> FlopsBreakdown:
    """Forward FLOPs of the vocabulary projection for ``tokens`` tokens."""
    return FlopsBreakdown(linear=2.0 * model.hidden_size * model.vocab_size * tokens)


def embedding_flops(model: ModelConfig, tokens: int) -> FlopsBreakdown:
    """Forward FLOPs of the input embedding lookup (effectively negligible)."""
    # A gather costs no FLOPs worth modelling; keep the symbol for clarity.
    return FlopsBreakdown(linear=0.0 * tokens)


@lru_cache(maxsize=1 << 14)
def model_forward_flops(
    model: ModelConfig, sequence_length: int, causal: bool = True
) -> FlopsBreakdown:
    """Forward FLOPs of the full model over one sequence."""
    per_layer = layer_forward_flops(model, sequence_length, kv_offset=0, causal=causal)
    total = per_layer * model.num_layers
    total = total + output_layer_flops(model, sequence_length)
    return total


def model_flops_per_iteration(
    model: ModelConfig,
    sequence_length: int,
    num_sequences: int,
    include_backward: bool = True,
) -> float:
    """Total "model FLOPs" of one training iteration.

    This is the MFU numerator: the FLOPs the model fundamentally requires
    (forward plus, when ``include_backward``, twice the forward for the
    backward pass), *excluding* any activation recomputation.  Matches the
    convention used to report MFU in the paper's evaluation.
    """
    fwd = model_forward_flops(model, sequence_length).total * num_sequences
    return fwd * 3.0 if include_backward else fwd
