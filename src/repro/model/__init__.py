"""Transformer model description: configs, FLOPs, memory and time costs."""

from .config import (
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_70B,
    LLAMA_149B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    MODEL_REGISTRY,
    ModelConfig,
    get_model_config,
)
from .costs import CostModel, PassCost, PassKind
from .flops import (
    FlopsBreakdown,
    attention_core_flops,
    layer_forward_flops,
    model_flops_per_iteration,
    model_forward_flops,
    output_layer_flops,
)
from .memory import (
    ADAM_MIXED_PRECISION,
    ModelStateMemory,
    OptimizerSpec,
    RecomputeMode,
    activation_bytes_per_token_per_layer,
    kv_cache_bytes_per_token_per_layer,
    layers_per_pipeline_stage,
    logits_bytes_per_token,
    model_state_bytes_per_device,
)

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model_config",
    "LLAMA_7B",
    "LLAMA_13B",
    "LLAMA_70B",
    "LLAMA_149B",
    "MIXTRAL_8X7B",
    "MIXTRAL_8X22B",
    "FlopsBreakdown",
    "attention_core_flops",
    "layer_forward_flops",
    "output_layer_flops",
    "model_forward_flops",
    "model_flops_per_iteration",
    "RecomputeMode",
    "OptimizerSpec",
    "ADAM_MIXED_PRECISION",
    "ModelStateMemory",
    "activation_bytes_per_token_per_layer",
    "kv_cache_bytes_per_token_per_layer",
    "logits_bytes_per_token",
    "model_state_bytes_per_device",
    "layers_per_pipeline_stage",
    "CostModel",
    "PassKind",
    "PassCost",
]
