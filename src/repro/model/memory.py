"""Memory accounting for LLM training.

Two families of consumers are modelled, mirroring the paper's Section 1:

* **model states** — parameters, gradients and optimizer states, which scale
  with model size and are divided by tensor / pipeline / expert parallelism
  (and, for the optimizer, by data parallelism when a distributed optimizer
  is used);
* **activations** — whose footprint grows linearly with context length and is
  the quantity SlimPipe attacks.

The activation model is itemised for the exact stack the paper implements
(Section 5): cuDNN-SDPA-style attention that does not materialise the score
matrix, SwiGLU with the swish product recomputed, and a memory-efficient
RMSNorm that keeps its input rather than its output.  Under *full*
recomputation only the layer input survives, which reproduces the paper's own
arithmetic ("1048576 x 8192 x 80 x 2 / 8 = 160 GiB" for Llama 70B at 1M
context with 8-way TP) exactly — see ``tests/test_memory_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..constants import DType
from .config import ModelConfig

__all__ = [
    "RecomputeMode",
    "OptimizerSpec",
    "ADAM_MIXED_PRECISION",
    "activation_bytes_per_token_per_layer",
    "kv_cache_bytes_per_token_per_layer",
    "logits_bytes_per_token",
    "ModelStateMemory",
    "model_state_bytes_per_device",
    "layers_per_pipeline_stage",
]


class RecomputeMode(Enum):
    """Activation rematerialisation policy (Section 2.3 / Section 6.4).

    * ``NONE`` — keep every tensor the backward pass needs.
    * ``SELECTIVE`` — recompute the MLP up-projection plus SwiGLU (the
      paper's own selective policy), dropping the FFN-sized activations.
    * ``FULL`` — keep only each layer's input and recompute the layer during
      the backward pass.
    """

    NONE = "none"
    SELECTIVE = "selective"
    FULL = "full"


@dataclass(frozen=True)
class OptimizerSpec:
    """Bytes-per-parameter accounting for the optimizer and gradients.

    Defaults model the paper's setting: bf16 parameters and gradients for
    compute, fp32 master weights plus Adam first/second moments held by a
    distributed optimizer (sharded across data parallel ranks), and fp32
    gradient accumulation buffers.
    """

    param_bytes: int = 2
    grad_bytes: int = 4
    master_param_bytes: int = 4
    exp_avg_bytes: int = 4
    exp_avg_sq_bytes: int = 4
    distributed_optimizer: bool = True

    def state_bytes_per_param(self, data_parallel_size: int = 1) -> float:
        """Bytes per parameter of resident model state on one device."""
        optimizer = self.master_param_bytes + self.exp_avg_bytes + self.exp_avg_sq_bytes
        if self.distributed_optimizer and data_parallel_size > 1:
            optimizer /= data_parallel_size
        return self.param_bytes + self.grad_bytes + optimizer


#: The optimizer configuration used throughout the paper's evaluation.
ADAM_MIXED_PRECISION = OptimizerSpec()


def activation_bytes_per_token_per_layer(
    model: ModelConfig,
    recompute: RecomputeMode = RecomputeMode.NONE,
    tensor_parallel_size: int = 1,
    dtype: DType = DType.BF16,
) -> float:
    """Stored activation bytes per token, per transformer layer, per device.

    With sequence parallelism enabled (the paper always pairs TP with SP) the
    whole layer's activations are sharded by ``tensor_parallel_size``.

    Itemisation for ``RecomputeMode.NONE`` (per token, in elements):

    ========================  ======================  =======================
    tensor                    size                    note
    ========================  ======================  =======================
    attention norm input      ``h``                   memory-efficient RMSNorm
    query                     ``h``                   SDPA saves Q, K, V, O
    key + value               ``2 * g * d_head``      this *is* the KV cache
    attention output          ``h``                   input of output proj
    MLP norm input            ``h``                   residual stream
    MLP input                 ``h``                   input of gate/up proj
    gate and up outputs       ``2 * H * k_active``    swish product recomputed
    ========================  ======================  =======================

    ``SELECTIVE`` drops the gate/up outputs (they are recomputed), ``FULL``
    keeps only the layer input (``h``).
    """
    if tensor_parallel_size < 1:
        raise ValueError("tensor_parallel_size must be >= 1")
    h = model.hidden_size
    elem = dtype.bytes
    if recompute is RecomputeMode.FULL:
        per_token_elems = h
    else:
        per_token_elems = 5 * h + 2 * model.kv_channels
        if recompute is RecomputeMode.NONE:
            per_token_elems += 2 * model.ffn_hidden_size * model.active_experts
    return per_token_elems * elem / tensor_parallel_size


def kv_cache_bytes_per_token_per_layer(
    model: ModelConfig,
    tensor_parallel_size: int = 1,
    dtype: DType = DType.BF16,
) -> float:
    """Bytes of key+value retained per token per layer (per device under TP).

    SlimPipe keeps keys and values of already-processed slices alive until
    their backward pass; under ``RecomputeMode.FULL`` this is the *only*
    cross-slice state besides the layer inputs.
    """
    return 2 * model.kv_channels * dtype.bytes / tensor_parallel_size


def logits_bytes_per_token(
    model: ModelConfig,
    tensor_parallel_size: int = 1,
    vocab_parallel_size: int = 1,
) -> float:
    """Bytes of fp32 vocabulary logits stored per token for the loss.

    The paper notes the cross-entropy keeps fp32 logits for the gradient; a
    256K context with a 128,000 vocabulary costs about 16 GiB even under
    8-way TP (Section 4.3.1).  Vocabulary parallelism (Section 4.3.2) further
    divides this by the pipeline size.
    """
    return 4.0 * model.vocab_size / (tensor_parallel_size * vocab_parallel_size)


def layers_per_pipeline_stage(model: ModelConfig, pipeline_parallel_size: int) -> int:
    """Number of transformer layers per pipeline device (must divide evenly)."""
    if pipeline_parallel_size < 1:
        raise ValueError("pipeline_parallel_size must be >= 1")
    if model.num_layers % pipeline_parallel_size != 0:
        raise ValueError(
            f"{model.num_layers} layers are not divisible by PP size "
            f"{pipeline_parallel_size}"
        )
    return model.num_layers // pipeline_parallel_size


@dataclass(frozen=True)
class ModelStateMemory:
    """Per-device breakdown of model-state memory (bytes)."""

    transformer_layers: float
    embedding: float
    output_layer: float

    @property
    def total(self) -> float:
        return self.transformer_layers + self.embedding + self.output_layer


def model_state_bytes_per_device(
    model: ModelConfig,
    *,
    tensor_parallel_size: int = 1,
    pipeline_parallel_size: int = 1,
    expert_parallel_size: int = 1,
    data_parallel_size: int = 1,
    pipeline_rank: int = 0,
    vocab_parallel: bool = False,
    optimizer: OptimizerSpec = ADAM_MIXED_PRECISION,
) -> ModelStateMemory:
    """Model-state (parameters + gradients + optimizer) bytes on one device.

    Dense parameters are sharded by TP; expert parameters additionally by EP.
    The embedding / output projection live on the first / last pipeline rank
    unless ``vocab_parallel`` is set, in which case every pipeline rank holds
    ``1/p`` of the (tied) vocabulary matrix as Section 4.3.2 prescribes.
    """
    if expert_parallel_size < 1:
        raise ValueError("expert_parallel_size must be >= 1")
    per_param = optimizer.state_bytes_per_param(data_parallel_size)
    layers = layers_per_pipeline_stage(model, pipeline_parallel_size)

    attn = model.attention_params_per_layer() / tensor_parallel_size
    norms = model.norm_params_per_layer()
    if model.is_moe:
        experts = 3 * model.hidden_size * model.ffn_hidden_size * model.num_experts
        experts /= tensor_parallel_size * expert_parallel_size
        router = model.hidden_size * model.num_experts
        mlp = experts + router
    else:
        mlp = model.mlp_params_per_layer() / tensor_parallel_size
    layer_params = attn + mlp + norms
    transformer_bytes = layers * layer_params * per_param

    vocab_params = model.embedding_params() / tensor_parallel_size
    if vocab_parallel:
        vocab_here = vocab_params / pipeline_parallel_size
        embedding = vocab_here * per_param
        output_layer = 0.0 if model.tie_embeddings else vocab_here * per_param
    else:
        is_first = pipeline_rank == 0
        is_last = pipeline_rank == pipeline_parallel_size - 1
        embedding = vocab_params * per_param if is_first else 0.0
        if model.tie_embeddings:
            # Tied weights: the last stage holds a replica of the embedding to
            # compute the output projection (classic Megatron behaviour).
            output_layer = vocab_params * per_param if (is_last and not is_first) else 0.0
        else:
            output_layer = vocab_params * per_param if is_last else 0.0
    return ModelStateMemory(
        transformer_layers=transformer_bytes,
        embedding=embedding,
        output_layer=output_layer,
    )
