"""Transformer model configurations.

This module defines :class:`ModelConfig`, the static description of a
transformer architecture used throughout the reproduction, together with the
model presets of Table 3 of the paper (Llama 13B / 70B / 149B and
Mixtral 8x7B / 8x22B) plus a Llama 7B preset used by Figure 2.

Parameter counts derived from these configs match the paper's Table 3 to
within 1% (see ``tests/test_model_config.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional

from ..constants import UnknownNameError

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model_config",
    "LLAMA_7B",
    "LLAMA_13B",
    "LLAMA_70B",
    "LLAMA_149B",
    "MIXTRAL_8X7B",
    "MIXTRAL_8X22B",
]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only transformer.

    Attributes follow the notation of Table 3 in the paper:

    * ``num_layers`` — :math:`L`, number of transformer layers.
    * ``num_attention_heads`` — :math:`a`.
    * ``num_query_groups`` — :math:`g`; ``None`` means multi-head attention
      (every head has its own KV head, i.e. ``g == a``).
    * ``hidden_size`` — :math:`h`.
    * ``ffn_hidden_size`` — :math:`H` (the SwiGLU intermediate size).
    * ``vocab_size`` — output vocabulary (128,000 for every model in the paper).
    * ``num_experts`` / ``experts_per_token`` — MoE routing configuration;
      ``num_experts is None`` denotes a dense model.
    * ``tie_embeddings`` — whether input embedding and the output projection
      share weights (Section 4.3 assumes they do).
    """

    name: str
    num_layers: int
    num_attention_heads: int
    hidden_size: int
    ffn_hidden_size: int
    vocab_size: int = 128_000
    num_query_groups: Optional[int] = None
    num_experts: Optional[int] = None
    experts_per_token: int = 2
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError(
                "hidden_size must be divisible by num_attention_heads "
                f"({self.hidden_size} % {self.num_attention_heads})"
            )
        groups = self.num_query_groups
        if groups is not None:
            if groups <= 0 or self.num_attention_heads % groups != 0:
                raise ValueError(
                    "num_query_groups must divide num_attention_heads "
                    f"({self.num_attention_heads} % {groups})"
                )
        if self.num_experts is not None:
            if self.num_experts <= 0:
                raise ValueError("num_experts must be positive")
            if not (0 < self.experts_per_token <= self.num_experts):
                raise ValueError(
                    "experts_per_token must be in (0, num_experts] "
                    f"got {self.experts_per_token} of {self.num_experts}"
                )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension ``h / a``."""
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_groups(self) -> int:
        """Effective number of KV groups (``a`` for MHA, ``g`` for GQA)."""
        return self.num_query_groups or self.num_attention_heads

    @property
    def kv_channels(self) -> int:
        """Total width of a key (or value) projection: ``g * head_dim``."""
        return self.kv_groups * self.head_dim

    @property
    def is_moe(self) -> bool:
        return self.num_experts is not None

    @property
    def active_experts(self) -> int:
        """Experts used per token (1 for dense models)."""
        return self.experts_per_token if self.is_moe else 1

    # ------------------------------------------------------------------
    # Parameter counts
    # ------------------------------------------------------------------
    def attention_params_per_layer(self) -> int:
        """Parameters of one attention block (QKV + output projections)."""
        h = self.hidden_size
        qkv = h * (h + 2 * self.kv_channels)
        out = h * h
        return qkv + out

    def mlp_params_per_layer(self) -> int:
        """Parameters of one MLP/MoE block (SwiGLU: gate, up and down)."""
        dense = 3 * self.hidden_size * self.ffn_hidden_size
        if not self.is_moe:
            return dense
        router = self.hidden_size * self.num_experts
        return dense * self.num_experts + router

    def norm_params_per_layer(self) -> int:
        """RMSNorm weights (two per layer)."""
        return 2 * self.hidden_size

    def params_per_layer(self) -> int:
        """Total parameters of one transformer layer."""
        return (
            self.attention_params_per_layer()
            + self.mlp_params_per_layer()
            + self.norm_params_per_layer()
        )

    def embedding_params(self) -> int:
        """Parameters of the token embedding (shared with the output layer)."""
        return self.vocab_size * self.hidden_size

    def output_layer_params(self) -> int:
        """Parameters of the output projection (0 when tied to the embedding)."""
        return 0 if self.tie_embeddings else self.vocab_size * self.hidden_size

    def total_params(self) -> int:
        """Total parameter count, including the vocabulary, as in Table 3."""
        final_norm = self.hidden_size
        return (
            self.num_layers * self.params_per_layer()
            + self.embedding_params()
            + self.output_layer_params()
            + final_norm
        )

    def active_params_per_layer(self) -> int:
        """Parameters touched by one token in one layer (top-k experts only)."""
        dense_mlp = 3 * self.hidden_size * self.ffn_hidden_size
        mlp = dense_mlp * self.active_experts
        if self.is_moe:
            mlp += self.hidden_size * self.num_experts
        return self.attention_params_per_layer() + mlp + self.norm_params_per_layer()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_layers(self, num_layers: int) -> "ModelConfig":
        """Return a copy of the config with a different layer count."""
        return replace(self, num_layers=num_layers, name=f"{self.name}-L{num_layers}")

    def scaled_down(self, factor: int, name: Optional[str] = None) -> "ModelConfig":
        """A structurally similar but smaller config (used by numeric tests)."""
        return replace(
            self,
            name=name or f"{self.name}-tiny",
            num_layers=max(2, self.num_layers // factor),
            hidden_size=max(self.num_attention_heads, self.hidden_size // factor),
            ffn_hidden_size=max(4, self.ffn_hidden_size // factor),
            vocab_size=max(32, self.vocab_size // factor),
        )


LLAMA_7B = ModelConfig(
    name="llama-7b",
    num_layers=32,
    num_attention_heads=32,
    hidden_size=4096,
    ffn_hidden_size=11008,
)

LLAMA_13B = ModelConfig(
    name="llama-13b",
    num_layers=40,
    num_attention_heads=40,
    hidden_size=5120,
    ffn_hidden_size=13824,
)

LLAMA_70B = ModelConfig(
    name="llama-70b",
    num_layers=80,
    num_attention_heads=64,
    num_query_groups=8,
    hidden_size=8192,
    ffn_hidden_size=28672,
)

LLAMA_149B = ModelConfig(
    name="llama-149b",
    num_layers=96,
    num_attention_heads=96,
    num_query_groups=8,
    hidden_size=12288,
    ffn_hidden_size=32768,
)

MIXTRAL_8X7B = ModelConfig(
    name="mixtral-8x7b",
    num_layers=32,
    num_attention_heads=32,
    num_query_groups=8,
    hidden_size=4096,
    ffn_hidden_size=14336,
    num_experts=8,
    experts_per_token=2,
)

MIXTRAL_8X22B = ModelConfig(
    name="mixtral-8x22b",
    num_layers=56,
    num_attention_heads=48,
    num_query_groups=8,
    hidden_size=6144,
    ffn_hidden_size=16384,
    num_experts=8,
    experts_per_token=2,
)

MODEL_REGISTRY: Dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        LLAMA_7B,
        LLAMA_13B,
        LLAMA_70B,
        LLAMA_149B,
        MIXTRAL_8X7B,
        MIXTRAL_8X22B,
    )
}


@lru_cache(maxsize=None)
def get_model_config(name: str) -> ModelConfig:
    """Look up a preset model configuration by name.

    Raises ``KeyError`` with the list of available names on a miss.  The
    lookup is memoized (configs are frozen), keeping it free inside the
    planner's grid-search sweeps.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
