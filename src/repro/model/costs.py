"""Kernel-level time model: FLOPs → seconds on a given GPU.

:class:`CostModel` converts the :class:`~repro.model.flops.FlopsBreakdown` of
a unit of work into execution time, applying

* operator-family efficiencies (large GEMMs run closer to peak than the
  attention core; backward passes run below forward passes),
* an arithmetic-intensity roll-off for short token slices (the mechanism
  behind Figure 11's "slices become too short" regime), and
* a fixed per-pass launch overhead.

The model also exposes the ``T_f`` / ``T_b`` / ``T_w`` decomposition used by
zero-bubble schedules (Section 2.2): for the attention core ``T_w = 0`` and
``T_b ≈ 2 T_f``, which is what makes ZB-V's balance assumption fail for
long-context training.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from ..hardware.gpu import GPUSpec, HOPPER_80GB
from .config import ModelConfig
from .flops import FlopsBreakdown, layer_forward_flops, output_layer_flops

__all__ = ["PassKind", "CostModel", "PassCost"]


class PassKind(Enum):
    """The kind of computation a pipeline pass performs."""

    FORWARD = "F"
    BACKWARD = "B"  # combined input-gradient + weight-gradient backward
    BACKWARD_INPUT = "Bi"  # activation-gradient only (ZB-style)
    BACKWARD_WEIGHT = "Bw"  # weight-gradient only (ZB-style)


@dataclass(frozen=True)
class PassCost:
    """Execution time of one pass, split into compute and exposed comm."""

    compute: float
    communication: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.communication

    def __add__(self, other: "PassCost") -> "PassCost":
        return PassCost(
            compute=self.compute + other.compute,
            communication=self.communication + other.communication,
        )


class CostModel:
    """Translate FLOPs into seconds for a particular :class:`GPUSpec`."""

    def __init__(self, gpu: GPUSpec = HOPPER_80GB):
        self.gpu = gpu

    # ------------------------------------------------------------------
    # Efficiency helpers
    # ------------------------------------------------------------------
    def intensity_factor(self, tokens: float) -> float:
        """Efficiency multiplier in (0, 1] for a pass over ``tokens`` tokens.

        Approaches 1 for long slices and degrades as slices shrink below the
        GPU's ``intensity_tokens`` knee, modelling launch overheads and
        reduced tile occupancy.
        """
        if tokens <= 0:
            return 1.0
        knee = self.gpu.intensity_tokens
        return tokens / (tokens + knee)

    def _linear_rate(self, backward: bool) -> float:
        eff = (
            self.gpu.gemm_efficiency_backward
            if backward
            else self.gpu.gemm_efficiency_forward
        )
        return self.gpu.peak_flops * eff

    def _attention_rate(self, backward: bool) -> float:
        eff = (
            self.gpu.attention_efficiency_backward
            if backward
            else self.gpu.attention_efficiency_forward
        )
        return self.gpu.peak_flops * eff

    # ------------------------------------------------------------------
    # Core conversion
    # ------------------------------------------------------------------
    def time_of(
        self,
        flops: FlopsBreakdown,
        kind: PassKind,
        tokens: float,
        include_overhead: bool = True,
    ) -> float:
        """Time in seconds to execute ``flops`` as a pass of the given kind.

        ``tokens`` is the number of query tokens processed, used for the
        arithmetic-intensity roll-off.
        """
        if kind is PassKind.FORWARD:
            work = flops
            backward = False
        elif kind is PassKind.BACKWARD:
            work = flops.backward_total()
            backward = True
        elif kind is PassKind.BACKWARD_INPUT:
            work = flops.backward_input_grad()
            backward = True
        elif kind is PassKind.BACKWARD_WEIGHT:
            work = flops.backward_weight_grad()
            backward = True
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown pass kind {kind}")

        factor = self.intensity_factor(tokens)
        linear_time = work.linear / (self._linear_rate(backward) * factor)
        attention_time = work.attention / (self._attention_rate(backward) * factor)
        total = linear_time + attention_time
        if include_overhead and (work.linear > 0 or work.attention > 0):
            total += self.gpu.kernel_launch_overhead
        return total

    # ------------------------------------------------------------------
    # Convenience wrappers used widely by the simulator and analysis
    # ------------------------------------------------------------------
    def layer_pass_time(
        self,
        model: ModelConfig,
        kind: PassKind,
        query_tokens: int,
        kv_offset: int = 0,
        num_layers: int = 1,
        tensor_parallel_size: int = 1,
    ) -> float:
        """Time of ``num_layers`` transformer layers on a query slice.

        Memoized across :class:`CostModel` instances (keyed on the GPU spec):
        schedule sweeps price the same (model, slice, offset) pass thousands
        of times.  Subclasses overriding the time model bypass the shared
        cache so their overrides are honoured.
        """
        if type(self) is not CostModel:
            return self._layer_pass_time_direct(
                model, kind, query_tokens, kv_offset, num_layers, tensor_parallel_size
            )
        return _layer_pass_time_cached(
            self.gpu, model, kind, query_tokens, kv_offset, num_layers, tensor_parallel_size
        )

    def output_layer_time(
        self,
        model: ModelConfig,
        kind: PassKind,
        tokens: int,
        tensor_parallel_size: int = 1,
        vocab_parallel_size: int = 1,
    ) -> float:
        """Time of the vocabulary projection (+ its backward) on ``tokens``."""
        if type(self) is not CostModel:
            return self._output_layer_time_direct(
                model, kind, tokens, tensor_parallel_size, vocab_parallel_size
            )
        return _output_layer_time_cached(
            self.gpu, model, kind, tokens, tensor_parallel_size, vocab_parallel_size
        )

    def _layer_pass_time_direct(
        self,
        model: ModelConfig,
        kind: PassKind,
        query_tokens: int,
        kv_offset: int,
        num_layers: int,
        tensor_parallel_size: int,
    ) -> float:
        flops = layer_forward_flops(model, query_tokens, kv_offset) * num_layers
        flops = flops * (1.0 / tensor_parallel_size)
        return self.time_of(flops, kind, tokens=query_tokens)

    def _output_layer_time_direct(
        self,
        model: ModelConfig,
        kind: PassKind,
        tokens: int,
        tensor_parallel_size: int,
        vocab_parallel_size: int,
    ) -> float:
        flops = output_layer_flops(model, tokens) * (
            1.0 / (tensor_parallel_size * vocab_parallel_size)
        )
        return self.time_of(flops, kind, tokens=tokens)

    def tf_tb_tw(
        self,
        model: ModelConfig,
        query_tokens: int,
        kv_offset: int = 0,
        num_layers: int = 1,
        tensor_parallel_size: int = 1,
    ) -> tuple[float, float, float]:
        """Forward / input-grad / weight-grad times of a layer block.

        This is the quantity zero-bubble schedules reason about; the paper
        points out that attention forces ``T_w < T_f < T_b``.
        """
        times = []
        for kind in (PassKind.FORWARD, PassKind.BACKWARD_INPUT, PassKind.BACKWARD_WEIGHT):
            times.append(
                self.layer_pass_time(
                    model,
                    kind,
                    query_tokens,
                    kv_offset,
                    num_layers=num_layers,
                    tensor_parallel_size=tensor_parallel_size,
                )
            )
        return tuple(times)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Shared memoization of the per-layer cost helpers (keyed on the GPU spec, so
# every CostModel over the same frozen GPUSpec shares one cache).
# ---------------------------------------------------------------------------
@lru_cache(maxsize=1 << 16)
def _layer_pass_time_cached(
    gpu: GPUSpec,
    model: ModelConfig,
    kind: PassKind,
    query_tokens: int,
    kv_offset: int,
    num_layers: int,
    tensor_parallel_size: int,
) -> float:
    return CostModel(gpu)._layer_pass_time_direct(
        model, kind, query_tokens, kv_offset, num_layers, tensor_parallel_size
    )


@lru_cache(maxsize=1 << 14)
def _output_layer_time_cached(
    gpu: GPUSpec,
    model: ModelConfig,
    kind: PassKind,
    tokens: int,
    tensor_parallel_size: int,
    vocab_parallel_size: int,
) -> float:
    return CostModel(gpu)._output_layer_time_direct(
        model, kind, tokens, tensor_parallel_size, vocab_parallel_size
    )
