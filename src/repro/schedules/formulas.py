"""Closed-form memory and bubble models of every pipeline scheme (Table 2).

These are the analytic counterparts of the schedule builders: for each scheme
the paper compares, the peak *activation memory factor* (in units of one
microbatch's full-model activation ``M_a``) and the *bubble fraction* (idle
device-time over total device-time) as functions of the pipeline size ``p``,
microbatch count ``m``, slices per sequence ``n`` and virtual stages per
device ``v``.

Two schemes need an extra ingredient: the zero-bubble family's residual
bubbles and SlimPipe's asymptotic bubble term depend on how large a share of
the compute the *attention core* is (because ``T_w = 0`` and ``T_b ≈ 2 T_f``
for attention, Section 2.2), so the corresponding functions accept an
``attention_share`` in ``[0, 1]`` — 0 reproduces the table's short-context
columns, 1 the long-context limit.

The schedule builders and the discrete-event simulator reproduce these values
structurally; ``tests/test_formulas.py`` cross-checks the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "SchemeCharacteristics",
    "SCHEME_FORMULAS",
    "activation_memory_factor",
    "bubble_fraction_estimate",
    "slimpipe_accumulated_activation_factor",
    "available_schemes",
]


def _require_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 1:
            raise ValueError(f"{name} must be >= 1, got {value}")


# ---------------------------------------------------------------------------
# Activation memory factors (units of one microbatch's full-model activation)
# ---------------------------------------------------------------------------
def _gpipe_memory(p: int, m: int, n: int, v: int) -> float:
    return m / p


def _terapipe_memory(p: int, m: int, n: int, v: int) -> float:
    return m / p


def _1f1b_memory(p: int, m: int, n: int, v: int) -> float:
    return min(m, p) / p  # "1" in Table 2 once m >= p


def _interleaved_memory(p: int, m: int, n: int, v: int) -> float:
    return min(m, p) / p * (1.0 + (p - 1) / (v * p))


def _zbv_memory(p: int, m: int, n: int, v: int) -> float:
    return min(m, p) / p  # "same peak as 1F1B"


def _vhalf_memory(p: int, m: int, n: int, v: int) -> float:
    # Half of 1F1B's p in-flight microbatches plus one: (p/2 + 1) stage units,
    # i.e. the "1/2 + 1/p" of Table 2 (bounded by m for tiny batches).
    return min(m, p / 2.0 + 1.0) / p


def _slimpipe_memory(p: int, m: int, n: int, v: int) -> float:
    return 1.0 / p + 2.0 * (p - 1) / (n * v * p)


# ---------------------------------------------------------------------------
# Bubble fractions (idle time / total device time)
# ---------------------------------------------------------------------------
def _ratio_to_fraction(overhead_ratio: float) -> float:
    """Convert a "bubble time / useful time" ratio into an idle fraction."""
    return overhead_ratio / (1.0 + overhead_ratio)


def _gpipe_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    return _ratio_to_fraction((p - 1) / m)


def _terapipe_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    return _ratio_to_fraction((p - 1) / (n * m))


def _1f1b_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    return _ratio_to_fraction((p - 1) / m)


def _interleaved_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    return _ratio_to_fraction((p - 1) / (v * m))


def _zbv_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    # Zero bubble when T_f = T_b = T_w; the attention core (T_w = 0, T_b = 2 T_f)
    # reintroduces imbalance bubbles that grow with its share of the compute.
    return _ratio_to_fraction(attention_share * 2.0 * (p - 1) / (3.0 * m))


def _vhalf_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    return _ratio_to_fraction(p / (2.0 * m) + attention_share / 3.0)


def _slimpipe_bubble(p: int, m: int, n: int, v: int, attention_share: float) -> float:
    linear_term = (p - 1) / (n * v * m)
    attention_term = (p - 1) * p / ((n + 1.0) * n * v * m)
    ratio = (1.0 - attention_share) * linear_term + attention_share * attention_term
    return _ratio_to_fraction(ratio)


@dataclass(frozen=True)
class SchemeCharacteristics:
    """Closed-form descriptors of one pipeline scheme."""

    name: str
    memory_factor: Callable[[int, int, int, int], float]
    bubble_fraction: Callable[[int, int, int, int, float], float]
    uses_slices: bool = False
    uses_virtual_stages: bool = False
    splits_backward: bool = False


SCHEME_FORMULAS: Dict[str, SchemeCharacteristics] = {
    "gpipe": SchemeCharacteristics("gpipe", _gpipe_memory, _gpipe_bubble),
    "terapipe": SchemeCharacteristics(
        "terapipe", _terapipe_memory, _terapipe_bubble, uses_slices=True
    ),
    "1f1b": SchemeCharacteristics("1f1b", _1f1b_memory, _1f1b_bubble),
    "interleaved-1f1b": SchemeCharacteristics(
        "interleaved-1f1b", _interleaved_memory, _interleaved_bubble, uses_virtual_stages=True
    ),
    "zb-v": SchemeCharacteristics("zb-v", _zbv_memory, _zbv_bubble, splits_backward=True),
    "v-half": SchemeCharacteristics(
        "v-half", _vhalf_memory, _vhalf_bubble, splits_backward=True
    ),
    "slimpipe": SchemeCharacteristics(
        "slimpipe", _slimpipe_memory, _slimpipe_bubble, uses_slices=True, uses_virtual_stages=True
    ),
}


def available_schemes() -> list[str]:
    """Scheme names understood by the closed-form models."""
    return sorted(SCHEME_FORMULAS)


def activation_memory_factor(
    scheme: str, p: int, m: int, n: Optional[int] = None, v: int = 1
) -> float:
    """Peak activation memory of ``scheme`` in units of one microbatch's ``M_a``.

    ``n`` defaults to ``p`` for sliced schemes and is ignored for the others.
    """
    _require_positive(p=p, m=m, v=v)
    chars = _lookup(scheme)
    slices = n if n is not None else p
    _require_positive(n=slices)
    return chars.memory_factor(p, m, slices, v)


def bubble_fraction_estimate(
    scheme: str,
    p: int,
    m: int,
    n: Optional[int] = None,
    v: int = 1,
    attention_share: float = 0.0,
) -> float:
    """Estimated bubble fraction of ``scheme`` (Table 2, right column).

    ``attention_share`` is the fraction of per-microbatch compute spent in the
    attention core — it drives the imbalance bubbles of the zero-bubble family
    and the asymptotic term of SlimPipe's bound.
    """
    _require_positive(p=p, m=m, v=v)
    if not 0.0 <= attention_share <= 1.0:
        raise ValueError("attention_share must be in [0, 1]")
    chars = _lookup(scheme)
    slices = n if n is not None else p
    _require_positive(n=slices)
    return chars.bubble_fraction(p, m, slices, v, attention_share)


def slimpipe_accumulated_activation_factor(p: int, n: int, v: int = 1) -> float:
    """Eq. 1 as a fraction of ``M_a``: ``(1 + 2(p-1)/(n v)) / p``."""
    _require_positive(p=p, n=n, v=v)
    return (1.0 + 2.0 * (p - 1) / (n * v)) / p


def _lookup(scheme: str) -> SchemeCharacteristics:
    try:
        return SCHEME_FORMULAS[scheme]
    except KeyError:
        raise KeyError(
            f"unknown scheme {scheme!r}; available: {available_schemes()}"
        ) from None
