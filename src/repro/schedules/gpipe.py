"""GPipe schedule: all forwards, then all backwards.

GPipe treats a whole microbatch as the atomic unit and accumulates the
activations of every microbatch before any backward starts, which is why its
activation memory grows with ``m`` (Table 2, first row) and its bubble
fraction is ``(p - 1) / m``.
"""

from __future__ import annotations

from ..model.costs import PassKind
from .base import Pass, PipelineSchedule

__all__ = ["build_gpipe_schedule"]


def build_gpipe_schedule(
    num_devices: int, num_microbatches: int, name: str = "gpipe"
) -> PipelineSchedule:
    """Build a GPipe schedule for ``num_devices`` stages and ``num_microbatches``."""
    if num_devices < 1 or num_microbatches < 1:
        raise ValueError("num_devices and num_microbatches must be >= 1")
    device_orders = []
    for device in range(num_devices):
        order = [
            Pass(PassKind.FORWARD, mb, device, device)
            for mb in range(num_microbatches)
        ]
        order += [
            Pass(PassKind.BACKWARD, mb, device, device)
            for mb in reversed(range(num_microbatches))
        ]
        device_orders.append(order)
    schedule = PipelineSchedule(
        name=name,
        num_devices=num_devices,
        num_stages=num_devices,
        num_microbatches=num_microbatches,
        num_slices=1,
        device_orders=device_orders,
    )
    schedule.validate()
    return schedule
