"""Baseline pipeline-parallel schedules and the schedule abstraction."""

from .base import Pass, PipelineSchedule, ScheduleValidationError
from .formulas import (
    SCHEME_FORMULAS,
    activation_memory_factor,
    available_schemes,
    bubble_fraction_estimate,
    slimpipe_accumulated_activation_factor,
)
from .gpipe import build_gpipe_schedule
from .interleaved import build_interleaved_1f1b_schedule
from .pipedream_1f1b import build_1f1b_schedule
from .registry import SCHEDULE_BUILDERS, available_schedules, build_schedule
from .terapipe import build_terapipe_schedule
from .zero_bubble import build_zero_bubble_v_schedule, v_shape_stage_of

__all__ = [
    "Pass",
    "PipelineSchedule",
    "ScheduleValidationError",
    "build_gpipe_schedule",
    "build_1f1b_schedule",
    "build_interleaved_1f1b_schedule",
    "build_terapipe_schedule",
    "build_zero_bubble_v_schedule",
    "v_shape_stage_of",
    "build_schedule",
    "available_schedules",
    "SCHEDULE_BUILDERS",
    "SCHEME_FORMULAS",
    "activation_memory_factor",
    "bubble_fraction_estimate",
    "slimpipe_accumulated_activation_factor",
    "available_schemes",
]
