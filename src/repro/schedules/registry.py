"""Registry of baseline pipeline-schedule builders.

Provides a single entry point, :func:`build_schedule`, used by the analysis
and benchmark layers to construct any of the schemes compared in the paper
(Figures 2, 3, 13, 14) by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .base import PipelineSchedule
from .gpipe import build_gpipe_schedule
from .interleaved import build_interleaved_1f1b_schedule
from .pipedream_1f1b import build_1f1b_schedule
from .terapipe import build_terapipe_schedule
from .zero_bubble import build_zero_bubble_v_schedule

__all__ = ["SCHEDULE_BUILDERS", "build_schedule", "available_schedules"]


def _build_gpipe(p: int, m: int, **_: object) -> PipelineSchedule:
    return build_gpipe_schedule(p, m)


def _build_1f1b(p: int, m: int, **_: object) -> PipelineSchedule:
    return build_1f1b_schedule(p, m)


def _build_interleaved(p: int, m: int, *, num_chunks: int = 2, **_: object) -> PipelineSchedule:
    return build_interleaved_1f1b_schedule(p, m, num_chunks)


def _build_terapipe(p: int, m: int, *, num_slices: Optional[int] = None, **_: object) -> PipelineSchedule:
    return build_terapipe_schedule(p, m, num_slices or p)


def _build_zbv(p: int, m: int, *, duration_fn=None, **_: object) -> PipelineSchedule:
    return build_zero_bubble_v_schedule(p, m, duration_fn=duration_fn)


def _build_vhalf(p: int, m: int, *, duration_fn=None, **_: object) -> PipelineSchedule:
    return build_zero_bubble_v_schedule(p, m, duration_fn=duration_fn, half_memory=True)


SCHEDULE_BUILDERS: Dict[str, Callable[..., PipelineSchedule]] = {
    "gpipe": _build_gpipe,
    "1f1b": _build_1f1b,
    "interleaved-1f1b": _build_interleaved,
    "terapipe": _build_terapipe,
    "zb-v": _build_zbv,
    "v-half": _build_vhalf,
}


def available_schedules() -> list[str]:
    """Names accepted by :func:`build_schedule` (SlimPipe lives in ``repro.core``)."""
    return sorted(SCHEDULE_BUILDERS)


def build_schedule(name: str, num_devices: int, num_microbatches: int, **kwargs) -> PipelineSchedule:
    """Build a baseline schedule by name.

    ``kwargs`` are builder-specific: ``num_chunks`` for the interleaved
    schedule, ``num_slices`` for TeraPipe, ``duration_fn`` for the
    zero-bubble schemes.
    """
    try:
        builder = SCHEDULE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r}; available: {available_schedules()}"
        ) from None
    return builder(num_devices, num_microbatches, **kwargs)
