"""TeraPipe-style token-level pipeline schedule.

TeraPipe slices every microbatch along the sequence dimension and pipelines
the slices, which shrinks the warm-up bubble to ``(p - 1) / (n m)``.  It
keeps GPipe's all-forward-then-all-backward structure, however, so the
activations of **all** microbatches accumulate (Table 2) — the critical
memory limitation the paper contrasts SlimPipe against.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..model.costs import PassKind
from .base import Pass, PipelineSchedule

__all__ = ["build_terapipe_schedule"]


def build_terapipe_schedule(
    num_devices: int,
    num_microbatches: int,
    num_slices: int,
    name: str = "terapipe",
) -> PipelineSchedule:
    """Build a TeraPipe schedule with ``num_slices`` slices per microbatch."""
    p, m, n = num_devices, num_microbatches, num_slices
    if p < 1 or m < 1 or n < 1:
        raise ValueError("num_devices, num_microbatches and num_slices must be >= 1")
    device_orders = []
    for rank in range(p):
        order = [
            Pass(PassKind.FORWARD, mb, rank, rank, slice_index=sl, num_slices=n)
            for mb in range(m)
            for sl in range(n)
        ]
        order += [
            Pass(PassKind.BACKWARD, mb, rank, rank, slice_index=sl, num_slices=n)
            for mb in reversed(range(m))
            for sl in reversed(range(n))
        ]
        device_orders.append(order)
    schedule = PipelineSchedule(
        name=name,
        num_devices=p,
        num_stages=p,
        num_microbatches=m,
        num_slices=n,
        device_orders=device_orders,
    )
    schedule.validate()
    return schedule
