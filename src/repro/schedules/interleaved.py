"""Interleaved 1F1B schedule (Megatron-LM virtual pipeline).

Each device hosts ``v`` non-contiguous model chunks (stage ``chunk * p + rank``
for chunk ``0..v-1``), and microbatches are streamed through the chunks in
groups of ``p``.  Compared with the default 1F1B this divides the warm-up
bubble by ``v`` at the price of a slightly higher activation peak
(``1 + (p - 1) / (v p)`` microbatches, Table 2).

The unit ordering and warm-up sizes follow Megatron-LM's implementation,
including its requirement that the number of microbatches be a multiple of
the pipeline size — the constraint that, as Section 6.4 notes, prevents the
baseline from scaling when long contexts shrink the batch.
"""

from __future__ import annotations

from ..model.costs import PassKind
from .base import Pass, PipelineSchedule

__all__ = ["build_interleaved_1f1b_schedule"]


def _unit_to_pass(
    unit: int,
    rank: int,
    num_devices: int,
    num_chunks: int,
    forward: bool,
) -> Pass:
    """Map the ``unit``-th forward (or backward) work unit of a device to a pass."""
    p, v = num_devices, num_chunks
    group = unit // (p * v)
    within = unit % (p * v)
    chunk = within // p
    if not forward:
        chunk = v - 1 - chunk
    microbatch = group * p + within % p
    stage = chunk * p + rank
    kind = PassKind.FORWARD if forward else PassKind.BACKWARD
    return Pass(kind, microbatch, stage, rank)


def build_interleaved_1f1b_schedule(
    num_devices: int,
    num_microbatches: int,
    num_chunks: int,
    name: str = "interleaved-1f1b",
) -> PipelineSchedule:
    """Build the interleaved 1F1B schedule with ``num_chunks`` stages per device."""
    p, m, v = num_devices, num_microbatches, num_chunks
    if p < 1 or m < 1 or v < 1:
        raise ValueError("num_devices, num_microbatches and num_chunks must be >= 1")
    if v > 1 and m % p != 0:
        raise ValueError(
            "interleaved 1F1B requires the number of microbatches to be a "
            f"multiple of the pipeline size (m={m}, p={p})"
        )
    total_units = m * v
    device_orders = []
    for rank in range(p):
        if m == p and v > 1:
            warmup = total_units
        else:
            warmup = min(total_units, 2 * (p - rank - 1) + (v - 1) * p)
        order = []
        forward_unit = 0
        backward_unit = 0
        for _ in range(warmup):
            order.append(_unit_to_pass(forward_unit, rank, p, v, forward=True))
            forward_unit += 1
        for _ in range(total_units - warmup):
            order.append(_unit_to_pass(forward_unit, rank, p, v, forward=True))
            forward_unit += 1
            order.append(_unit_to_pass(backward_unit, rank, p, v, forward=False))
            backward_unit += 1
        while backward_unit < total_units:
            order.append(_unit_to_pass(backward_unit, rank, p, v, forward=False))
            backward_unit += 1
        device_orders.append(order)
    schedule = PipelineSchedule(
        name=name,
        num_devices=p,
        num_stages=p * v,
        num_microbatches=m,
        num_slices=1,
        device_orders=device_orders,
        metadata={"num_chunks": v},
    )
    schedule.validate()
    return schedule
