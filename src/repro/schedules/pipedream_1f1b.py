"""PipeDream-Flush / DAPPLE one-forward-one-backward (1F1B) schedule.

The default 1F1B schedule (Figure 4, top): each device runs a warm-up of
forwards, then alternates one forward and one backward, then drains the
remaining backwards.  Peak in-flight activations on the first device equal
``p`` microbatches, independent of ``m`` — the memory behaviour SlimPipe
improves on — while the bubble fraction stays at ``(p - 1) / m`` (Table 2).
"""

from __future__ import annotations

from ..model.costs import PassKind
from .base import Pass, PipelineSchedule

__all__ = ["build_1f1b_schedule"]


def build_1f1b_schedule(
    num_devices: int, num_microbatches: int, name: str = "1f1b"
) -> PipelineSchedule:
    """Build the default (non-interleaved) 1F1B schedule."""
    if num_devices < 1 or num_microbatches < 1:
        raise ValueError("num_devices and num_microbatches must be >= 1")
    p, m = num_devices, num_microbatches
    device_orders = []
    for rank in range(p):
        warmup = min(p - rank - 1, m)
        steady = m - warmup
        order = []
        forward_mb = 0
        backward_mb = 0
        for _ in range(warmup):
            order.append(Pass(PassKind.FORWARD, forward_mb, rank, rank))
            forward_mb += 1
        for _ in range(steady):
            order.append(Pass(PassKind.FORWARD, forward_mb, rank, rank))
            forward_mb += 1
            order.append(Pass(PassKind.BACKWARD, backward_mb, rank, rank))
            backward_mb += 1
        for _ in range(warmup):
            order.append(Pass(PassKind.BACKWARD, backward_mb, rank, rank))
            backward_mb += 1
        device_orders.append(order)
    schedule = PipelineSchedule(
        name=name,
        num_devices=p,
        num_stages=p,
        num_microbatches=m,
        num_slices=1,
        device_orders=device_orders,
    )
    schedule.validate()
    return schedule
