"""Pipeline schedule abstraction.

A *schedule* is, for every pipeline device, the ordered list of passes the
device executes in one training iteration.  A :class:`Pass` is the unit of
work the paper calls a computational unit: a forward or backward of one
microbatch (classic schemes), of one sequence slice (SlimPipe, TeraPipe),
optionally restricted to the input-gradient or weight-gradient half of the
backward pass (zero-bubble schemes).

Dependencies between passes are derived structurally by
:meth:`PipelineSchedule.dependencies`:

* a forward needs the same slice's forward on the previous stage, and — for
  sliced schedules — the previous slice's forward on the *same* stage (its
  keys/values must be in the KV cache);
* a backward needs the same slice's forward on its own stage and the same
  slice's backward on the next stage, and — for sliced schedules — the
  *next* slice's backward on the same stage (gradients flow into earlier
  slices' keys/values through causal attention);
* a weight-gradient pass needs its matching input-gradient pass.

The discrete-event simulator in :mod:`repro.sim` executes any schedule that
satisfies these dependencies and reports timelines, bubbles and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..model.costs import PassKind

__all__ = ["Pass", "PipelineSchedule", "ScheduleValidationError"]


class ScheduleValidationError(ValueError):
    """Raised when a schedule violates a structural invariant."""


@dataclass(frozen=True)
class Pass:
    """One unit of pipeline work.

    Attributes
    ----------
    kind:
        Forward, combined backward, or one of the split backward halves.
    microbatch:
        Zero-based microbatch index.
    stage:
        Global stage index in ``[0, p*v)``; stage 0 holds the embedding and
        the last stage the output layer (unless vocabulary parallelism is on).
    device:
        Pipeline rank executing the pass.
    slice_index:
        Zero-based sequence slice for sliced schedules, ``None`` when the
        whole microbatch is the unit of work.
    num_slices:
        Number of slices each microbatch is split into (1 when unsliced).
    """

    kind: PassKind
    microbatch: int
    stage: int
    device: int
    slice_index: Optional[int] = None
    num_slices: int = 1

    def __post_init__(self) -> None:
        if self.microbatch < 0 or self.stage < 0 or self.device < 0:
            raise ValueError("microbatch, stage and device must be non-negative")
        if self.num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        if self.slice_index is not None and not 0 <= self.slice_index < self.num_slices:
            raise ValueError(
                f"slice_index {self.slice_index} out of range [0, {self.num_slices})"
            )

    # ------------------------------------------------------------------
    @property
    def is_forward(self) -> bool:
        return self.kind is PassKind.FORWARD

    @property
    def is_backward(self) -> bool:
        return self.kind in (PassKind.BACKWARD, PassKind.BACKWARD_INPUT, PassKind.BACKWARD_WEIGHT)

    @property
    def work_key(self) -> Tuple[int, int, Optional[int]]:
        """Identity of the work item independent of pass kind."""
        return (self.microbatch, self.stage, self.slice_index)

    @property
    def slice_or_zero(self) -> int:
        return self.slice_index or 0

    def with_kind(self, kind: PassKind) -> "Pass":
        return Pass(
            kind=kind,
            microbatch=self.microbatch,
            stage=self.stage,
            device=self.device,
            slice_index=self.slice_index,
            num_slices=self.num_slices,
        )

    def describe(self) -> str:
        """Human-readable label, e.g. ``F[mb0,s3,slice2]@dev1``."""
        slice_part = f",slice{self.slice_index}" if self.slice_index is not None else ""
        return f"{self.kind.value}[mb{self.microbatch},s{self.stage}{slice_part}]@dev{self.device}"


@dataclass
class PipelineSchedule:
    """An ordered per-device list of passes plus the structural metadata."""

    name: str
    num_devices: int
    num_stages: int
    num_microbatches: int
    num_slices: int
    device_orders: List[List[Pass]]
    splits_backward: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Lazily built stage → device map (schedules are immutable once built,
    #: and dependency resolution calls this for every pass).
    _stage_device_cache: Optional[Dict[int, int]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def stages_per_device(self) -> int:
        return self.num_stages // self.num_devices

    def all_passes(self) -> Iterator[Pass]:
        for order in self.device_orders:
            yield from order

    def passes_on_device(self, device: int) -> Sequence[Pass]:
        return self.device_orders[device]

    def device_of_stage(self, stage: int) -> int:
        """Device executing a given stage (derived from the passes)."""
        mapping = self.stage_to_device()
        try:
            return mapping[stage]
        except KeyError:
            raise ScheduleValidationError(f"stage {stage} never appears in the schedule")

    def stage_to_device(self) -> Dict[int, int]:
        """Recompute (and re-cache) the stage → device map, checking consistency."""
        mapping: Dict[int, int] = {}
        for p in self.all_passes():
            existing = mapping.get(p.stage)
            if existing is None:
                mapping[p.stage] = p.device
            elif existing != p.device:
                raise ScheduleValidationError(
                    f"stage {p.stage} appears on devices {existing} and {p.device}"
                )
        self._stage_device_cache = mapping
        return mapping

    def _stage_device_map(self) -> Dict[int, int]:
        """Cached stage → device map for the dependency hot path.

        Schedules are effectively immutable once built; callers that mutate
        ``device_orders`` (tests, experiments) should call
        :meth:`stage_to_device` or :meth:`validate` to refresh the cache.
        """
        if self._stage_device_cache is None:
            return self.stage_to_device()
        return self._stage_device_cache

    def total_passes(self) -> int:
        return sum(len(order) for order in self.device_orders)

    # ------------------------------------------------------------------
    # Dependencies
    # ------------------------------------------------------------------
    def backward_kinds(self) -> Tuple[PassKind, ...]:
        """Pass kinds that carry the activation gradient across stages."""
        return (PassKind.BACKWARD_INPUT,) if self.splits_backward else (PassKind.BACKWARD,)

    def dependencies(self, p: Pass) -> List[Pass]:
        """Structural prerequisites of pass ``p`` (see the module docstring)."""
        deps: List[Pass] = []
        stage_device = self._stage_device_map()
        grad_kind = self.backward_kinds()[0]

        def make(kind: PassKind, stage: int, slice_index: Optional[int], microbatch: int) -> Pass:
            return Pass(
                kind=kind,
                microbatch=microbatch,
                stage=stage,
                device=stage_device[stage],
                slice_index=slice_index,
                num_slices=p.num_slices,
            )

        if p.kind is PassKind.FORWARD:
            if p.stage > 0:
                deps.append(make(PassKind.FORWARD, p.stage - 1, p.slice_index, p.microbatch))
            if p.slice_index is not None and p.slice_index > 0:
                deps.append(make(PassKind.FORWARD, p.stage, p.slice_index - 1, p.microbatch))
        elif p.kind in (PassKind.BACKWARD, PassKind.BACKWARD_INPUT):
            deps.append(make(PassKind.FORWARD, p.stage, p.slice_index, p.microbatch))
            if p.stage < self.num_stages - 1:
                deps.append(make(grad_kind, p.stage + 1, p.slice_index, p.microbatch))
            if p.slice_index is not None and p.slice_index < p.num_slices - 1:
                deps.append(make(grad_kind, p.stage, p.slice_index + 1, p.microbatch))
        elif p.kind is PassKind.BACKWARD_WEIGHT:
            deps.append(make(PassKind.BACKWARD_INPUT, p.stage, p.slice_index, p.microbatch))
        else:  # pragma: no cover - exhaustive enum
            raise ScheduleValidationError(f"unsupported pass kind {p.kind}")
        return deps

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`ScheduleValidationError`.

        * device lists agree with the declared shape (devices, stages),
        * every (microbatch, stage, slice) has exactly one forward and one
          complete backward (combined, or input+weight when split),
        * on every device a backward never precedes its own forward,
        * every dependency of every pass exists somewhere in the schedule.
        """
        if len(self.device_orders) != self.num_devices:
            raise ScheduleValidationError(
                f"expected {self.num_devices} device lists, got {len(self.device_orders)}"
            )
        for device, order in enumerate(self.device_orders):
            for p in order:
                if p.device != device:
                    raise ScheduleValidationError(
                        f"pass {p.describe()} stored in device {device}'s list"
                    )
                if p.stage >= self.num_stages:
                    raise ScheduleValidationError(
                        f"pass {p.describe()} references stage >= {self.num_stages}"
                    )
                if p.microbatch >= self.num_microbatches:
                    raise ScheduleValidationError(
                        f"pass {p.describe()} references microbatch >= {self.num_microbatches}"
                    )
                if p.num_slices != self.num_slices:
                    raise ScheduleValidationError(
                        f"pass {p.describe()} disagrees with schedule num_slices={self.num_slices}"
                    )

        # Exactly-once bookkeeping -------------------------------------
        seen: Dict[Tuple[PassKind, Tuple[int, int, Optional[int]]], int] = {}
        for p in self.all_passes():
            key = (p.kind, p.work_key)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > 1:
                raise ScheduleValidationError(f"duplicate pass {p.describe()}")

        uses_slices = any(p.slice_index is not None for p in self.all_passes())
        slices = list(range(self.num_slices)) if uses_slices else [None]
        expected_backward = (
            (PassKind.BACKWARD_INPUT, PassKind.BACKWARD_WEIGHT)
            if self.splits_backward
            else (PassKind.BACKWARD,)
        )
        for mb in range(self.num_microbatches):
            for stage in range(self.num_stages):
                for sl in slices:
                    work = (mb, stage, sl)
                    if (PassKind.FORWARD, work) not in seen:
                        raise ScheduleValidationError(f"missing forward for {work}")
                    for kind in expected_backward:
                        if (kind, work) not in seen:
                            raise ScheduleValidationError(
                                f"missing {kind.value} for {work}"
                            )

        # Per-device forward-before-backward ----------------------------
        for device, order in enumerate(self.device_orders):
            finished_forward = set()
            for p in order:
                if p.kind is PassKind.FORWARD:
                    finished_forward.add(p.work_key)
                elif p.is_backward and p.work_key not in finished_forward:
                    raise ScheduleValidationError(
                        f"{p.describe()} scheduled before its forward on device {device}"
                    )

        # Dependencies must exist ---------------------------------------
        all_keys = {(p.kind, p.work_key) for p in self.all_passes()}
        for p in self.all_passes():
            for dep in self.dependencies(p):
                if (dep.kind, dep.work_key) not in all_keys:
                    raise ScheduleValidationError(
                        f"{p.describe()} depends on missing pass {dep.describe()}"
                    )

    # ------------------------------------------------------------------
    def warmup_forward_counts(self) -> List[int]:
        """Number of forwards each device runs before its first backward."""
        counts = []
        for order in self.device_orders:
            count = 0
            for p in order:
                if p.kind is PassKind.FORWARD:
                    count += 1
                elif p.is_backward:
                    break
            counts.append(count)
        return counts

    def max_inflight_activations(self) -> List[int]:
        """Peak number of live forward activations per device.

        A forward adds one unit of live activation; the pass completing the
        backward for that work item (the combined backward, or the
        weight-gradient half when the backward is split) releases it.
        """
        release_kind = (
            PassKind.BACKWARD_WEIGHT if self.splits_backward else PassKind.BACKWARD
        )
        peaks = []
        for order in self.device_orders:
            live = 0
            peak = 0
            for p in order:
                if p.kind is PassKind.FORWARD:
                    live += 1
                    peak = max(peak, live)
                elif p.kind is release_kind:
                    live -= 1
            peaks.append(peak)
        return peaks
