"""Zero-bubble V-shaped schedules (ZB-V and V-Half).

Zero Bubble Pipeline Parallelism splits every backward pass into an
activation-gradient half (``Bi``) and a weight-gradient half (``Bw``) and
assigns each device two model chunks arranged in a "V": device ``r`` holds
stage ``r`` on the way down and stage ``2p - 1 - r`` on the way back up.
``Bw`` passes have no cross-device dependencies, so they can be used to fill
what would otherwise be bubbles; when ``T_f = T_b = T_w`` the pipeline is
bubble-free.

The original systems hand-craft (or ILP-solve) the pass order for specific
``T_f/T_b/T_w`` ratios.  This reproduction uses a timing-aware greedy list
scheduler with the same ingredients — V-shaped placement, split backward,
``Bw`` as filler, a per-device in-flight activation cap (``2p`` stage
activations for ZB-V, ``p`` for V-Half, matching "same as 1F1B" and "half of
1F1B") — which reproduces the qualitative behaviour the paper discusses:
near-zero bubbles when the three pass types are balanced, and growing
*imbalance bubbles* when causal attention makes ``T_b`` dominate
(Section 2.2).  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..model.costs import PassKind
from .base import Pass, PipelineSchedule, ScheduleValidationError

__all__ = ["build_zero_bubble_v_schedule", "v_shape_stage_of"]

DurationFn = Callable[[Pass], float]

#: Tie-break priority: keep the activation-gradient chain moving, then start
#: new forwards, and use weight-gradient passes as bubble filler.
_PRIORITY = {
    PassKind.BACKWARD_INPUT: 0,
    PassKind.FORWARD: 1,
    PassKind.BACKWARD_WEIGHT: 2,
}


def v_shape_stage_of(chunk: int, rank: int, num_devices: int) -> int:
    """Stage index handled by ``rank`` for V-chunk ``chunk`` (0 = down, 1 = up)."""
    if chunk == 0:
        return rank
    if chunk == 1:
        return 2 * num_devices - 1 - rank
    raise ValueError("the V shape has exactly two chunks per device")


def _uniform_duration(_: Pass) -> float:
    return 1.0


def build_zero_bubble_v_schedule(
    num_devices: int,
    num_microbatches: int,
    duration_fn: Optional[DurationFn] = None,
    half_memory: bool = False,
    memory_limit_units: Optional[int] = None,
    name: Optional[str] = None,
) -> PipelineSchedule:
    """Build a ZB-V (or, with ``half_memory``, a V-Half) schedule.

    Parameters
    ----------
    duration_fn:
        Estimated duration of each pass, used to decide which ready pass to
        run next (the zero-bubble idea needs timing knowledge).  Defaults to
        uniform durations.
    half_memory:
        Build the V-Half variant, capping in-flight activations at half of
        ZB-V's budget.
    memory_limit_units:
        Override the per-device cap on in-flight stage activations.
    """
    p, m = num_devices, num_microbatches
    if p < 1 or m < 1:
        raise ValueError("num_devices and num_microbatches must be >= 1")
    duration_fn = duration_fn or _uniform_duration
    if memory_limit_units is None:
        memory_limit_units = p if half_memory else 2 * p
    memory_limit_units = max(2, memory_limit_units)
    schedule_name = name or ("v-half" if half_memory else "zb-v")

    num_stages = 2 * p
    stage_device = {
        v_shape_stage_of(chunk, rank, p): rank for rank in range(p) for chunk in (0, 1)
    }

    def make_pass(kind: PassKind, mb: int, stage: int) -> Pass:
        return Pass(kind, mb, stage, stage_device[stage])

    # All passes that must be scheduled, grouped per device ------------------
    pending: List[List[Pass]] = [[] for _ in range(p)]
    for mb in range(m):
        for stage in range(num_stages):
            for kind in (PassKind.FORWARD, PassKind.BACKWARD_INPUT, PassKind.BACKWARD_WEIGHT):
                work = make_pass(kind, mb, stage)
                pending[work.device].append(work)

    completion: Dict[Tuple[PassKind, Tuple[int, int, Optional[int]]], float] = {}
    device_time = [0.0] * p
    in_flight = [0] * p
    device_orders: List[List[Pass]] = [[] for _ in range(p)]

    def dependencies(work: Pass) -> List[Pass]:
        deps: List[Pass] = []
        if work.kind is PassKind.FORWARD:
            if work.stage > 0:
                deps.append(make_pass(PassKind.FORWARD, work.microbatch, work.stage - 1))
        elif work.kind is PassKind.BACKWARD_INPUT:
            deps.append(make_pass(PassKind.FORWARD, work.microbatch, work.stage))
            if work.stage < num_stages - 1:
                deps.append(
                    make_pass(PassKind.BACKWARD_INPUT, work.microbatch, work.stage + 1)
                )
        else:  # BACKWARD_WEIGHT
            deps.append(make_pass(PassKind.BACKWARD_INPUT, work.microbatch, work.stage))
        return deps

    total = sum(len(items) for items in pending)
    scheduled = 0
    while scheduled < total:
        best: Optional[Tuple[float, int, int, int, int, int]] = None  # est, prio, -stage, mb, dev, idx
        for device in range(p):
            for index, work in enumerate(pending[device]):
                if work.kind is PassKind.FORWARD:
                    # Respect the activation cap, and keep the final slot
                    # reserved for up-leg (second chunk) forwards so the
                    # backward chain that starts at the V's last stage can
                    # always be reached — otherwise early down-leg forwards
                    # can fill the budget and deadlock the pipeline.
                    if in_flight[device] >= memory_limit_units:
                        continue
                    if (
                        in_flight[device] == memory_limit_units - 1
                        and work.stage < p
                    ):
                        continue
                ready = device_time[device]
                blocked = False
                for dep in dependencies(work):
                    key = (dep.kind, dep.work_key)
                    if key not in completion:
                        blocked = True
                        break
                    ready = max(ready, completion[key])
                if blocked:
                    continue
                candidate = (
                    ready,
                    _PRIORITY[work.kind],
                    -work.stage,  # push in-flight microbatches deeper first
                    work.microbatch,
                    device,
                    index,
                )
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            raise ScheduleValidationError(
                f"greedy zero-bubble scheduler deadlocked with {total - scheduled} "
                "passes remaining; consider raising memory_limit_units"
            )
        ready, _, _, _, device, index = best
        work = pending[device].pop(index)
        start = max(ready, device_time[device])
        finish = start + duration_fn(work)
        device_time[device] = finish
        completion[(work.kind, work.work_key)] = finish
        device_orders[device].append(work)
        if work.kind is PassKind.FORWARD:
            in_flight[device] += 1
        elif work.kind is PassKind.BACKWARD_WEIGHT:
            in_flight[device] -= 1
        scheduled += 1

    schedule = PipelineSchedule(
        name=schedule_name,
        num_devices=p,
        num_stages=num_stages,
        num_microbatches=m,
        num_slices=1,
        device_orders=device_orders,
        splits_backward=True,
        metadata={
            "memory_limit_units": memory_limit_units,
            "half_memory": half_memory,
        },
    )
    schedule.validate()
    return schedule
