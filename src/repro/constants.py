"""Shared numeric constants and unit helpers.

The whole reproduction works in three unit families:

* **bytes** for memory accounting (``GiB`` helpers below),
* **FLOPs** for compute accounting,
* **seconds** for simulated time.

Context lengths follow the paper's convention that ``64K`` means ``64 * 1024``
tokens, i.e. the binary kilo, matching the "1048576 (context length)" example
in Section 3 of the paper.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KILO_TOKENS",
    "DType",
    "UnknownNameError",
    "dtype_bytes",
    "to_gib",
    "from_gib",
    "tokens_from_k",
]


class UnknownNameError(KeyError):
    """A registry lookup (model, scenario, experiment) missed.

    The message always lists the valid names; the CLI catches exactly this
    type to report a clean exit-2 error without masking genuine ``KeyError``
    bugs elsewhere.
    """

KIB: int = 1024
MIB: int = 1024**2
GIB: int = 1024**3
TIB: int = 1024**4

#: One "K" of context length, e.g. a 64K context is ``64 * KILO_TOKENS`` tokens.
KILO_TOKENS: int = 1024


class DType(Enum):
    """Floating point datatypes used in training."""

    BF16 = "bf16"
    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def bytes(self) -> int:
        return dtype_bytes(self)


_DTYPE_BYTES = {
    DType.BF16: 2,
    DType.FP16: 2,
    DType.FP32: 4,
}


def dtype_bytes(dtype: DType) -> int:
    """Return the number of bytes per element for *dtype*."""
    return _DTYPE_BYTES[dtype]


def to_gib(num_bytes: float) -> float:
    """Convert a byte count to GiB."""
    return num_bytes / GIB


def from_gib(gib: float) -> float:
    """Convert GiB to bytes."""
    return gib * GIB


def tokens_from_k(context_k: float) -> int:
    """Convert a context length expressed in "K" (e.g. 256 for 256K) to tokens."""
    return int(round(context_k * KILO_TOKENS))
