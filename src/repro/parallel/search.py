"""Hybrid-parallelism configuration enumeration and grid search.

The paper bakes every system's configuration "through grid search"
(Section 6.4).  This module provides the shared enumeration machinery: which
(t, c, d, e, p, v, n) combinations are even worth evaluating for a given
model, cluster and workload, given the structural constraints the paper spells
out:

* TP, CP and EP stay within one NVLink domain (Section 6.1), and TP cannot
  exceed the number of attention heads (or KV groups, for the GQA models);
* the pipeline size must divide the layer count, and the virtual-stage count
  must divide the per-device layer count;
* the global batch (fixed tokens per iteration / context length) must split
  evenly over data-parallel replicas, and interleaved 1F1B additionally needs
  the per-replica microbatch count to be a multiple of the pipeline size —
  the scalability ceiling discussed in Section 6.4;
* expert parallelism must divide the expert count and reuses DP×CP ranks.

The resulting iterators are deliberately generous (the systems filter further
and the estimator rejects OOM configurations); they are shared by the three
system models and by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from .config import ParallelConfig, WorkloadConfig

__all__ = [
    "SearchSpace",
    "divisors",
    "candidate_parallel_configs",
    "grid_search",
]


def divisors(value: int, ceiling: Optional[int] = None) -> List[int]:
    """Positive divisors of ``value`` (optionally capped at ``ceiling``).

    ``ceiling`` must be at least 1 when given: a zero or negative ceiling can
    only arise from a caller bug (an empty search dimension would silently
    produce "no-configuration" everywhere), so it is rejected loudly.
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    if ceiling is not None and ceiling < 1:
        raise ValueError(f"ceiling must be >= 1 when given, got {ceiling}")
    result = [d for d in range(1, value + 1) if value % d == 0]
    if ceiling is not None:
        result = [d for d in result if d <= ceiling]
    return result


@dataclass(frozen=True)
class SearchSpace:
    """Limits of the configuration enumeration.

    The defaults mirror the paper's deployment rules: intra-node groups of at
    most 8 GPUs, pipeline sizes up to 32, up to 8 virtual stages per device,
    SlimPipe slice counts of ``p`` to ``8 p``.
    """

    max_tensor_parallel: int = 8
    max_context_parallel: int = 16
    max_pipeline_parallel: int = 32
    max_virtual_stages: int = 8
    slice_multipliers: Tuple[int, ...] = (1, 2, 4, 8)
    require_interleave_divisibility: bool = False
    allow_cross_node_context_parallel: bool = True


def _tensor_parallel_options(
    model: ModelConfig, cluster: ClusterTopology, space: SearchSpace
) -> List[int]:
    limit = min(space.max_tensor_parallel, cluster.gpus_per_node, model.kv_groups)
    return [t for t in divisors(model.num_attention_heads, limit)]


def _context_parallel_options(
    cluster: ClusterTopology, space: SearchSpace, tensor_parallel: int
) -> List[int]:
    options = [1]
    c = 2
    while c <= space.max_context_parallel:
        within_node = tensor_parallel * c <= cluster.gpus_per_node
        if within_node or space.allow_cross_node_context_parallel:
            options.append(c)
        c *= 2
    return options


def candidate_parallel_configs(
    model: ModelConfig,
    cluster: ClusterTopology,
    workload: WorkloadConfig,
    space: SearchSpace = SearchSpace(),
    *,
    use_pipeline: bool = True,
    use_virtual_stages: bool = True,
    use_slices: bool = False,
    require_interleave_divisibility: Optional[bool] = None,
) -> Iterator[ParallelConfig]:
    """Enumerate structurally valid hybrid-parallelism configurations.

    ``use_slices`` additionally enumerates SlimPipe's ``n`` (as multiples of
    ``p``); ``require_interleave_divisibility`` enforces Megatron's
    ``m % p == 0`` rule for interleaved schedules when virtual stages are used.
    """
    total_gpus = cluster.total_gpus
    interleave_rule = (
        space.require_interleave_divisibility
        if require_interleave_divisibility is None
        else require_interleave_divisibility
    )
    for t in _tensor_parallel_options(model, cluster, space):
        for c in _context_parallel_options(cluster, space, t):
            if workload.sequence_length % c != 0:
                continue
            pipeline_options = (
                divisors(model.num_layers, space.max_pipeline_parallel)
                if use_pipeline
                else [1]
            )
            for p in pipeline_options:
                per_stage = t * c * p
                if per_stage > total_gpus or total_gpus % per_stage != 0:
                    continue
                d = total_gpus // per_stage
                if workload.global_batch_sequences % d != 0:
                    continue
                m = workload.global_batch_sequences // d
                if m < 1:
                    continue
                expert_options = (
                    [e for e in divisors(model.num_experts, cluster.gpus_per_node) if e <= d * c]
                    if model.is_moe
                    else [1]
                )
                layers_per_device = model.num_layers // p
                virtual_options = (
                    [v for v in divisors(layers_per_device, space.max_virtual_stages)]
                    if use_virtual_stages and p > 1
                    else [1]
                )
                for e in expert_options:
                    for v in virtual_options:
                        if v > 1 and interleave_rule and m % p != 0:
                            continue
                        if use_slices:
                            for mult in space.slice_multipliers:
                                n = p * mult
                                if workload.sequence_length // c < n:
                                    continue
                                yield ParallelConfig(
                                    tensor_parallel_size=t,
                                    context_parallel_size=c,
                                    data_parallel_size=d,
                                    expert_parallel_size=e,
                                    pipeline_parallel_size=p,
                                    virtual_pipeline_size=v,
                                    num_slices=n,
                                )
                        else:
                            yield ParallelConfig(
                                tensor_parallel_size=t,
                                context_parallel_size=c,
                                data_parallel_size=d,
                                expert_parallel_size=e,
                                pipeline_parallel_size=p,
                                virtual_pipeline_size=v,
                            )


def grid_search(
    candidates: Iterable[ParallelConfig],
    objective: Callable[[ParallelConfig], Optional[float]],
) -> Tuple[Optional[ParallelConfig], float]:
    """Pick the candidate maximising ``objective`` (``None`` = infeasible).

    Returns ``(best_config, best_value)``; ``(None, -inf)`` when every
    candidate is infeasible or the iterator is empty.
    """
    # The evaluate-and-keep-the-best loop lives in the sweep engine
    # (imported lazily: the sweep layer builds on the systems which build on
    # this module).
    from ..sweep.engine import argmax_stream

    return argmax_stream(candidates, objective)
