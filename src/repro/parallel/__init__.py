"""Hybrid parallelism configuration, rank mapping and configuration search."""

from .config import ParallelConfig, WorkloadConfig
from .mapping import RankCoordinates, RankMapper
from .search import SearchSpace, candidate_parallel_configs, divisors, grid_search

__all__ = [
    "ParallelConfig",
    "WorkloadConfig",
    "RankMapper",
    "RankCoordinates",
    "SearchSpace",
    "candidate_parallel_configs",
    "grid_search",
    "divisors",
]
