"""Hybrid-parallelism and workload configuration.

:class:`ParallelConfig` captures the paper's notation (Table 1): tensor
parallelism ``t``, context parallelism ``c``, data parallelism ``d``, expert
parallelism ``e``, pipeline parallelism ``p``, virtual stages per device
``v``, microbatches ``m`` and, for SlimPipe, slices per sequence ``n``.

:class:`WorkloadConfig` captures the training workload: the context length
and the fixed per-iteration token budget (4M tokens in Section 6.4, 16M in
Section 6.5) from which the number of microbatches follows — the "limited
global batch size" effect of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig

__all__ = ["ParallelConfig", "WorkloadConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """Sizes of every parallelism dimension plus schedule granularity knobs."""

    tensor_parallel_size: int = 1
    context_parallel_size: int = 1
    data_parallel_size: int = 1
    expert_parallel_size: int = 1
    pipeline_parallel_size: int = 1
    virtual_pipeline_size: int = 1
    num_slices: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "tensor_parallel_size",
            "context_parallel_size",
            "data_parallel_size",
            "expert_parallel_size",
            "pipeline_parallel_size",
            "virtual_pipeline_size",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.num_slices is not None:
            if self.num_slices < self.pipeline_parallel_size:
                raise ValueError(
                    "num_slices must be at least the pipeline parallel size "
                    f"({self.num_slices} < {self.pipeline_parallel_size})"
                )
            if self.num_slices % self.pipeline_parallel_size != 0:
                raise ValueError(
                    "num_slices must be a multiple of the pipeline parallel size "
                    f"({self.num_slices} % {self.pipeline_parallel_size})"
                )
        if self.expert_parallel_size > self.data_parallel_size * self.context_parallel_size:
            raise ValueError(
                "expert parallelism reuses data/context parallel ranks and cannot "
                f"exceed d*c = {self.data_parallel_size * self.context_parallel_size}"
            )

    # Short aliases matching the paper's notation ------------------------------
    @property
    def t(self) -> int:
        return self.tensor_parallel_size

    @property
    def c(self) -> int:
        return self.context_parallel_size

    @property
    def d(self) -> int:
        return self.data_parallel_size

    @property
    def e(self) -> int:
        return self.expert_parallel_size

    @property
    def p(self) -> int:
        return self.pipeline_parallel_size

    @property
    def v(self) -> int:
        return self.virtual_pipeline_size

    @property
    def n(self) -> Optional[int]:
        return self.num_slices

    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        """Total GPUs used (expert parallelism reuses data-parallel ranks)."""
        return (
            self.tensor_parallel_size
            * self.context_parallel_size
            * self.data_parallel_size
            * self.pipeline_parallel_size
        )

    @property
    def ranks_per_pipeline_stage(self) -> int:
        """Global-rank stride between adjacent pipeline stages."""
        return (
            self.tensor_parallel_size
            * self.context_parallel_size
            * self.data_parallel_size
        )

    @property
    def total_stages(self) -> int:
        return self.pipeline_parallel_size * self.virtual_pipeline_size

    def layers_per_stage(self, model: ModelConfig) -> int:
        """Layers held by one virtual stage."""
        total = self.total_stages
        if model.num_layers % total != 0:
            raise ValueError(
                f"{model.num_layers} layers are not divisible by "
                f"p*v = {total} stages"
            )
        return model.num_layers // total

    def validate_against_model(self, model: ModelConfig) -> None:
        """Check divisibility constraints between the model and this config."""
        self.layers_per_stage(model)
        if model.num_attention_heads % self.tensor_parallel_size != 0:
            raise ValueError(
                f"{model.num_attention_heads} attention heads are not divisible by "
                f"TP size {self.tensor_parallel_size}"
            )
        if model.kv_groups % min(self.tensor_parallel_size, model.kv_groups) != 0:
            raise ValueError("tensor parallelism must divide the KV groups")
        if model.is_moe and model.num_experts % self.expert_parallel_size != 0:
            raise ValueError(
                f"{model.num_experts} experts are not divisible by EP size "
                f"{self.expert_parallel_size}"
            )

    def validate_against_cluster(self, cluster: ClusterTopology) -> None:
        """Check the config fits the cluster and its intra-node groups fit a node."""
        if self.world_size != cluster.total_gpus:
            raise ValueError(
                f"config uses {self.world_size} GPUs but the cluster has "
                f"{cluster.total_gpus}"
            )
        intra = self.tensor_parallel_size * self.context_parallel_size
        if not cluster.fits_in_node(intra):
            raise ValueError(
                f"TP*CP = {intra} exceeds the {cluster.gpus_per_node}-GPU NVLink domain"
            )

    def with_slices(self, num_slices: int) -> "ParallelConfig":
        """Return a copy configured for SlimPipe with ``num_slices`` slices."""
        return replace(self, num_slices=num_slices)


@dataclass(frozen=True)
class WorkloadConfig:
    """Training workload: context length and per-iteration token budget."""

    sequence_length: int
    tokens_per_iteration: int
    microbatch_sequences: int = 1

    def __post_init__(self) -> None:
        if self.sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        if self.tokens_per_iteration < self.sequence_length:
            raise ValueError(
                "tokens_per_iteration must be at least one sequence "
                f"({self.tokens_per_iteration} < {self.sequence_length})"
            )
        if self.microbatch_sequences < 1:
            raise ValueError("microbatch_sequences must be >= 1")

    @property
    def global_batch_sequences(self) -> int:
        """Sequences per iteration (the paper keeps tokens/iteration fixed)."""
        return max(1, self.tokens_per_iteration // self.sequence_length)

    def num_microbatches(self, parallel: ParallelConfig) -> int:
        """Microbatches per pipeline per iteration (``m`` in the paper).

        The global batch is first divided across data-parallel replicas, then
        into microbatches of ``microbatch_sequences`` sequences.
        """
        per_replica = self.global_batch_sequences / parallel.data_parallel_size
        m = per_replica / self.microbatch_sequences
        if m < 1 or abs(m - round(m)) > 1e-9:
            raise ValueError(
                f"global batch of {self.global_batch_sequences} sequences does not "
                f"divide evenly into DP={parallel.data_parallel_size} replicas of "
                f"{self.microbatch_sequences}-sequence microbatches"
            )
        return int(round(m))

    def microbatch_tokens(self) -> int:
        """Tokens in one microbatch (before any sequence slicing)."""
        return self.sequence_length * self.microbatch_sequences

    def tokens_per_device_sequence(self, parallel: ParallelConfig) -> int:
        """Per-device share of one sequence under context parallelism."""
        if self.sequence_length % parallel.context_parallel_size != 0:
            raise ValueError(
                f"sequence length {self.sequence_length} is not divisible by "
                f"CP size {parallel.context_parallel_size}"
            )
        return self.sequence_length // parallel.context_parallel_size
