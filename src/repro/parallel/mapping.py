"""Mapping of parallel groups onto cluster ranks.

Megatron-LM's default rank order is used: tensor parallelism varies fastest,
then context, then data, then pipeline.  With TP (and CP) innermost, those
groups stay inside one NVLink domain, while adjacent pipeline stages are
``t*c*d`` ranks apart and therefore usually live on different nodes — which
is exactly the deployment rule of Section 6.1 and what the communication
model relies on when pricing pipeline point-to-point traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hardware.topology import ClusterTopology
from .config import ParallelConfig

__all__ = ["RankCoordinates", "RankMapper"]


@dataclass(frozen=True)
class RankCoordinates:
    """Position of a global rank in the (tp, cp, dp, pp) grid."""

    tensor_rank: int
    context_rank: int
    data_rank: int
    pipeline_rank: int


class RankMapper:
    """Convert between global ranks and parallel-grid coordinates."""

    def __init__(self, parallel: ParallelConfig):
        self.parallel = parallel

    # ------------------------------------------------------------------
    def coordinates_of(self, global_rank: int) -> RankCoordinates:
        p = self.parallel
        if not 0 <= global_rank < p.world_size:
            raise ValueError(
                f"rank {global_rank} out of range [0, {p.world_size})"
            )
        remainder = global_rank
        tensor_rank = remainder % p.tensor_parallel_size
        remainder //= p.tensor_parallel_size
        context_rank = remainder % p.context_parallel_size
        remainder //= p.context_parallel_size
        data_rank = remainder % p.data_parallel_size
        remainder //= p.data_parallel_size
        pipeline_rank = remainder
        return RankCoordinates(tensor_rank, context_rank, data_rank, pipeline_rank)

    def global_rank_of(self, coords: RankCoordinates) -> int:
        p = self.parallel
        return (
            coords.tensor_rank
            + p.tensor_parallel_size
            * (
                coords.context_rank
                + p.context_parallel_size
                * (coords.data_rank + p.data_parallel_size * coords.pipeline_rank)
            )
        )

    # ------------------------------------------------------------------
    def pipeline_group(self, tensor_rank: int = 0, context_rank: int = 0, data_rank: int = 0) -> List[int]:
        """Global ranks forming one pipeline (one rank per stage)."""
        return [
            self.global_rank_of(
                RankCoordinates(tensor_rank, context_rank, data_rank, pipeline_rank)
            )
            for pipeline_rank in range(self.parallel.pipeline_parallel_size)
        ]

    def tensor_group(self, context_rank: int = 0, data_rank: int = 0, pipeline_rank: int = 0) -> List[int]:
        """Global ranks forming one tensor-parallel group."""
        return [
            self.global_rank_of(
                RankCoordinates(tensor_rank, context_rank, data_rank, pipeline_rank)
            )
            for tensor_rank in range(self.parallel.tensor_parallel_size)
        ]

    def context_group(self, tensor_rank: int = 0, data_rank: int = 0, pipeline_rank: int = 0) -> List[int]:
        """Global ranks forming one context-parallel group."""
        return [
            self.global_rank_of(
                RankCoordinates(tensor_rank, context_rank, data_rank, pipeline_rank)
            )
            for context_rank in range(self.parallel.context_parallel_size)
        ]

    def data_group(self, tensor_rank: int = 0, context_rank: int = 0, pipeline_rank: int = 0) -> List[int]:
        """Global ranks forming one data-parallel group."""
        return [
            self.global_rank_of(
                RankCoordinates(tensor_rank, context_rank, data_rank, pipeline_rank)
            )
            for data_rank in range(self.parallel.data_parallel_size)
        ]

    # ------------------------------------------------------------------
    def group_is_intra_node(self, ranks: List[int], cluster: ClusterTopology) -> bool:
        """Whether all ranks of a group share one node."""
        nodes = {cluster.node_of(rank) for rank in ranks}
        return len(nodes) <= 1

    def pipeline_neighbors_intra_node(self, cluster: ClusterTopology) -> bool:
        """Whether adjacent pipeline stages happen to live in the same node."""
        group = self.pipeline_group()
        if len(group) < 2:
            return True
        return all(
            cluster.same_node(a, b) for a, b in zip(group[:-1], group[1:])
        )
