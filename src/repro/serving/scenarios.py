"""Named serving scenarios, mirroring the figure-registry pattern.

Every scenario bundles a deterministic workload factory with the deployment
knobs a fair comparison needs pinned — model, GPU count, SLO, batching
configuration and the prefill/decode split used by the disaggregated
variant.  :func:`get_scenario` resolves names (raising with the list of
valid names on a miss, like the model registry) and :func:`run_scenario`
drives either engine over the scenario's trace.

The registry:

``chat``
    Steady Poisson chat traffic: short prompts, medium outputs.
``rag-long-prompt``
    Retrieval-augmented traffic — most prompts short, a heavy tail around
    32K tokens of retrieved context.
``summarize-512k``
    A trickle of 512K-token summarisation jobs; a single context occupies a
    large share of the KV pool, exercising admission and preemption.
``bursty-long``
    Thundering herds of long prompts on top of steady chat decode traffic —
    the scenario where colocated TPOT protection throttles prefill and
    disaggregation shows its tail-TTFT advantage.
``mixed-fleet``
    Chat, RAG and summarisation traffic multiplexed on one deployment.
``shared-system-prompt``
    Chat traffic behind one large common system prompt, with shared-prefix
    KV caching on: all but the first request skip the system prompt's
    prefill (the ≥2x TTFT / prefill-FLOPs acceptance scenario).
``rag-shared-corpus``
    RAG over a fixed document corpus with Zipf-skewed popularity: hot
    documents stay KV-resident, cold ones exercise LRU eviction.
``agentic-prefix-tree``
    Interleaved multi-turn agent sessions sharing a scaffold, each turn
    extending its session's branch of the prefix tree.
``massive-chat``
    One million chat requests at 250 req/s — the bounded-memory scale
    tier.  Arrivals stream from a lazy generator and finished requests
    fold into a :class:`~repro.serving.metrics.StreamingMetrics`
    accumulator (``retain_records=False``), so peak memory is independent
    of trace length.
``massive-diurnal``
    A quarter-million requests over a sinusoidal day curve (trough at
    midnight, peak mid-day), streamed the same way.
``massive-week``
    Half a million requests over a seven-day curve with a weekend trough
    on top of the daily sinusoid.
``noisy-neighbour``
    An interactive chat tenant sharing a deployment with a batch tenant
    that floods long prompts.  Fair scheduling plus weighted shares keeps
    the interactive tenant's TTFT inside its SLO while the batch tenant
    backfills the residual capacity.
``tenant-flash-crowd``
    A steady interactive tenant plus a best-effort tenant arriving in
    thundering herds, with a token-bucket rate limit smoothing the crowd's
    admissions so the steady tenant never sees the spikes.
``batch-backfill-under-interactive``
    A large batch backlog submitted up front underneath steady interactive
    traffic — the classic "overnight jobs under daytime chat" shape the
    fair scheduler is built for.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..constants import UnknownNameError
from ..model.config import get_model_config
from ..obs.events import EventRecorder
from .batcher import BatcherConfig
from .engine import DisaggregatedEngine, ServingConfig, ServingEngine, ServingResult
from .metrics import SLO
from .tenancy import TenancyConfig, TenantSpec, get_slo_class
from .workload import (
    Request,
    agentic_tree_trace,
    bursty_trace,
    diurnal_stream,
    long_context_trace,
    merge_traces,
    poisson_stream,
    poisson_trace,
    rag_corpus_trace,
    shared_prefix_trace,
    weekly_stream,
)

__all__ = ["ServingScenario", "SCENARIO_REGISTRY", "get_scenario", "run_scenario"]


@dataclass(frozen=True)
class ServingScenario:
    """A reproducible serving experiment: workload plus deployment knobs."""

    name: str
    description: str
    trace_factory: Callable[[int], List[Request]]
    model: str = "llama-70b"
    num_gpus: int = 8
    slo: SLO = field(default_factory=SLO)
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    block_tokens: int = 256
    prefill_fraction: float = 0.5
    prefix_caching: bool = False
    #: Lazy arrival iterator for streaming runs; ``None`` falls back to
    #: materializing :attr:`trace_factory` (fine at classic scenario sizes).
    stream_factory: Optional[Callable[[int], Iterator[Request]]] = None
    #: Default record retention: massive scenarios set ``False`` so a run
    #: streams through a bounded-memory accumulator instead of keeping a
    #: million :class:`RequestRecord` objects alive.
    retain_records: bool = True
    #: Override of :attr:`ServingConfig.max_iterations`; low-rate massive
    #: traces decode in near-singleton batches, so their iteration count is
    #: ~``num_requests * output_tokens`` and the default ceiling is too low.
    max_iterations: Optional[int] = None
    #: Per-tenant QoS configuration (SLO classes, weights, rate limits).
    #: ``None`` — every pre-tenancy scenario — leaves the engine byte-for-byte
    #: identical to a build without the tenancy layer.
    tenancy: Optional[TenancyConfig] = None

    def make_trace(self, seed: int = 0) -> List[Request]:
        return self.trace_factory(seed)

    def make_stream(self, seed: int = 0) -> Iterator[Request]:
        """Lazy arrival iterator (massive scenarios never materialize)."""
        if self.stream_factory is not None:
            return self.stream_factory(seed)
        return iter(self.make_trace(seed))

    def serving_config(
        self, num_gpus: Optional[int] = None, prefix_caching: Optional[bool] = None
    ) -> ServingConfig:
        """The scenario's engine configuration (colocated TPOT cap wired in).

        The cap protects at 70% of the TPOT SLO: decode-only iterations and
        the chunk-granularity of the budget search both land slightly above
        the cap, so protecting exactly at the SLO would structurally miss it.
        """
        kwargs = dict(
            num_gpus=self.num_gpus if num_gpus is None else num_gpus,
            block_tokens=self.block_tokens,
            batcher=self.batcher,
            tpot_cap=0.7 * self.slo.tpot,
            prefix_caching=self.prefix_caching if prefix_caching is None else prefix_caching,
            retain_records=self.retain_records,
        )
        if self.max_iterations is not None:
            kwargs["max_iterations"] = self.max_iterations
        if self.tenancy is not None:
            kwargs["tenancy"] = self.tenancy
        return ServingConfig(**kwargs)


def _chat_trace(seed: int) -> List[Request]:
    return poisson_trace(
        num_requests=150,
        arrival_rate=2.0,
        prompt_mean=2048,
        output_mean=256,
        seed=seed,
    )


def _rag_trace(seed: int) -> List[Request]:
    return long_context_trace(
        num_requests=80,
        arrival_rate=0.6,
        short_prompt_mean=2048,
        long_prompt_mean=32_768,
        long_fraction=0.35,
        output_mean=256,
        seed=seed,
    )


def _summarize_trace(seed: int) -> List[Request]:
    return poisson_trace(
        num_requests=8,
        arrival_rate=0.02,
        prompt_mean=512 * 1024,
        output_mean=256,
        seed=seed,
        prompt_cv=0.05,
        output_cv=0.2,
    )


def _bursty_long_trace(seed: int) -> List[Request]:
    bursts = bursty_trace(
        num_bursts=5,
        burst_size=8,
        burst_interval=12.0,
        prompt_mean=16_384,
        output_mean=512,
        seed=seed,
        prompt_cv=0.15,
        output_cv=0.25,
    )
    background = poisson_trace(
        num_requests=40,
        arrival_rate=0.5,
        prompt_mean=2048,
        output_mean=256,
        seed=seed + 1,
    )
    return merge_traces(bursts, background)


def _mixed_fleet_trace(seed: int) -> List[Request]:
    chat = poisson_trace(
        num_requests=80, arrival_rate=1.2, prompt_mean=2048, output_mean=256, seed=seed
    )
    rag = long_context_trace(
        num_requests=30,
        arrival_rate=0.4,
        short_prompt_mean=4096,
        long_prompt_mean=32_768,
        long_fraction=0.4,
        output_mean=256,
        seed=seed + 1,
    )
    summarize = poisson_trace(
        num_requests=3,
        arrival_rate=0.05,
        prompt_mean=256 * 1024,
        output_mean=128,
        seed=seed + 2,
        prompt_cv=0.05,
    )
    return merge_traces(chat, rag, summarize)


def _shared_system_prompt_trace(seed: int) -> List[Request]:
    return shared_prefix_trace(
        num_requests=120,
        arrival_rate=1.5,
        prefix_tokens=8192,
        suffix_mean=256,
        output_mean=128,
        seed=seed,
    )


def _rag_shared_corpus_trace(seed: int) -> List[Request]:
    return rag_corpus_trace(
        num_requests=90,
        arrival_rate=0.8,
        num_documents=24,
        document_tokens=16_384,
        question_mean=384,
        output_mean=128,
        seed=seed,
        system_tokens=1024,
    )


def _agentic_prefix_tree_trace(seed: int) -> List[Request]:
    return agentic_tree_trace(
        num_sessions=12,
        turns_per_session=6,
        scaffold_tokens=4096,
        turn_tokens=512,
        output_mean=192,
        seed=seed,
    )


# Massive-family workload knobs.  Chat runs hot but sustainable: 150 req/s on
# 4 GPUs keeps decode batches large (goodput 1.0, ttft_p99 ~40ms) while
# staying below the prefill rate the TPOT cap can sustain — 250 req/s
# diverges (the waiting queue grows without bound and goodput collapses).
# The diurnal/weekly curves run at realistic low rates, where almost every
# request decodes in a near-singleton batch the fast-forward path coalesces.
def _massive_chat_stream(seed: int) -> Iterator[Request]:
    return poisson_stream(
        num_requests=1_000_000,
        arrival_rate=150.0,
        prompt_mean=256,
        output_mean=32,
        seed=seed,
        max_prompt_tokens=4096,
        max_output_tokens=512,
    )


def _massive_chat_trace(seed: int) -> List[Request]:
    return list(_massive_chat_stream(seed))


def _massive_diurnal_stream(seed: int) -> Iterator[Request]:
    return diurnal_stream(
        num_requests=250_000,
        mean_rate=3.0,
        prompt_mean=512,
        output_mean=32,
        seed=seed,
        max_prompt_tokens=8192,
        max_output_tokens=512,
    )


def _massive_diurnal_trace(seed: int) -> List[Request]:
    return list(_massive_diurnal_stream(seed))


def _massive_week_stream(seed: int) -> Iterator[Request]:
    return weekly_stream(
        num_requests=500_000,
        weekday_rate=1.0,
        prompt_mean=512,
        output_mean=32,
        seed=seed,
        max_prompt_tokens=8192,
        max_output_tokens=512,
    )


def _massive_week_trace(seed: int) -> List[Request]:
    return list(_massive_week_stream(seed))


# Multi-tenant scenarios.  Each tags every request with a tenant name and
# pins a TenancyConfig (SLO classes, fair-share weights, rate limits); all
# three run the virtual-token-counter fair scheduler so one tenant's flood
# cannot starve another's interactive traffic.
def _noisy_neighbour_trace(seed: int) -> List[Request]:
    interactive = poisson_trace(
        num_requests=80,
        arrival_rate=2.0,
        prompt_mean=1024,
        output_mean=128,
        seed=seed,
        tenant="acme",
    )
    # Heavy enough to saturate the deployment: under FCFS the interactive
    # tenant's TTFT p99 blows past 60s; under fair scheduling it stays
    # inside its 2s SLO while the batch tenant backfills the residual.
    noisy = poisson_trace(
        num_requests=60,
        arrival_rate=8.0,
        prompt_mean=16_384,
        output_mean=384,
        seed=seed + 1,
        tenant="crunch",
    )
    return merge_traces(interactive, noisy)


_NOISY_NEIGHBOUR_TENANCY = TenancyConfig.of(
    TenantSpec("acme", slo_class=get_slo_class("interactive"), weight=3.0),
    TenantSpec("crunch", slo_class=get_slo_class("batch"), weight=1.0),
)


def _tenant_flash_crowd_trace(seed: int) -> List[Request]:
    steady = poisson_trace(
        num_requests=90,
        arrival_rate=1.5,
        prompt_mean=2048,
        output_mean=192,
        seed=seed,
        tenant="acme",
    )
    crowd = bursty_trace(
        num_bursts=4,
        burst_size=15,
        burst_interval=15.0,
        prompt_mean=4096,
        output_mean=128,
        seed=seed + 1,
        tenant="mob",
    )
    return merge_traces(steady, crowd)


_FLASH_CROWD_TENANCY = TenancyConfig.of(
    TenantSpec("acme", slo_class=get_slo_class("interactive"), weight=2.0),
    TenantSpec(
        "mob",
        slo_class=get_slo_class("best-effort"),
        weight=1.0,
        # ~63K prompt+output tokens arrive per 15s burst; a 3K tok/s refill
        # with a one-burst-sized bucket spreads each herd over the idle gap.
        rate_limit=3000.0,
        burst_tokens=16_384.0,
    ),
)


def _batch_backfill_trace(seed: int) -> List[Request]:
    interactive = poisson_trace(
        num_requests=100,
        arrival_rate=2.5,
        prompt_mean=1536,
        output_mean=160,
        seed=seed,
        tenant="acme",
    )
    # The backlog arrives almost instantly (high rate), then waits: pure
    # backfill pressure for the whole run.
    backlog = poisson_trace(
        num_requests=60,
        arrival_rate=20.0,
        prompt_mean=4096,
        output_mean=256,
        seed=seed + 1,
        tenant="grind",
    )
    return merge_traces(interactive, backlog)


_BATCH_BACKFILL_TENANCY = TenancyConfig.of(
    TenantSpec("acme", slo_class=get_slo_class("interactive"), weight=4.0),
    TenantSpec("grind", slo_class=get_slo_class("best-effort"), weight=1.0),
)


SCENARIO_REGISTRY: Dict[str, ServingScenario] = {
    scenario.name: scenario
    for scenario in (
        ServingScenario(
            name="chat",
            description="steady Poisson chat traffic (2K prompts, 256-token outputs)",
            trace_factory=_chat_trace,
            slo=SLO(ttft=2.0, tpot=0.05),
        ),
        ServingScenario(
            name="rag-long-prompt",
            description="RAG traffic with a 35% heavy tail of 32K-token prompts",
            trace_factory=_rag_trace,
            slo=SLO(ttft=5.0, tpot=0.06),
        ),
        ServingScenario(
            name="summarize-512k",
            description="512K-context summarisation jobs arriving as a trickle",
            trace_factory=_summarize_trace,
            num_gpus=16,
            slo=SLO(ttft=60.0, tpot=0.1),
            batcher=BatcherConfig(max_batch_tokens=16_384, prefill_chunk_tokens=8192),
        ),
        ServingScenario(
            name="bursty-long",
            description="bursts of 16K prompts over steady chat decode traffic",
            trace_factory=_bursty_long_trace,
            slo=SLO(ttft=10.0, tpot=0.03),
            prefill_fraction=0.625,
        ),
        ServingScenario(
            name="mixed-fleet",
            description="chat + RAG + 256K summarisation multiplexed on one fleet",
            trace_factory=_mixed_fleet_trace,
            slo=SLO(ttft=5.0, tpot=0.06),
        ),
        ServingScenario(
            name="shared-system-prompt",
            description="chat behind one 8K system prompt, shared-prefix KV caching on",
            trace_factory=_shared_system_prompt_trace,
            model="llama-13b",
            num_gpus=4,
            slo=SLO(ttft=2.0, tpot=0.05),
            prefix_caching=True,
        ),
        ServingScenario(
            name="rag-shared-corpus",
            description="RAG over a 24-document shared corpus (Zipf popularity, LRU pressure)",
            trace_factory=_rag_shared_corpus_trace,
            model="llama-13b",
            # Two GPUs hold ~145K KV tokens against a ~400K-token corpus, so
            # cold documents are admitted and reclaimed LRU-first while hot
            # ones stay resident — the eviction path under real pressure.
            num_gpus=2,
            slo=SLO(ttft=6.0, tpot=0.06),
            prefix_caching=True,
        ),
        ServingScenario(
            name="agentic-prefix-tree",
            description="interleaved agent sessions extending a shared prefix tree",
            trace_factory=_agentic_prefix_tree_trace,
            model="llama-13b",
            num_gpus=4,
            slo=SLO(ttft=3.0, tpot=0.05),
            prefix_caching=True,
        ),
        ServingScenario(
            name="massive-chat",
            description="one million streamed chat requests at 250 req/s, bounded memory",
            trace_factory=_massive_chat_trace,
            stream_factory=_massive_chat_stream,
            model="llama-13b",
            num_gpus=4,
            slo=SLO(ttft=2.0, tpot=0.05),
            batcher=BatcherConfig(max_batch_tokens=8192, prefill_chunk_tokens=2048),
            retain_records=False,
            max_iterations=50_000_000,
        ),
        ServingScenario(
            name="massive-diurnal",
            description="250K streamed requests over a sinusoidal day curve",
            trace_factory=_massive_diurnal_trace,
            stream_factory=_massive_diurnal_stream,
            model="llama-13b",
            num_gpus=2,
            slo=SLO(ttft=2.0, tpot=0.05),
            batcher=BatcherConfig(max_batch_tokens=8192, prefill_chunk_tokens=2048),
            retain_records=False,
            max_iterations=50_000_000,
        ),
        ServingScenario(
            name="massive-week",
            description="500K streamed requests over a week curve with a weekend trough",
            trace_factory=_massive_week_trace,
            stream_factory=_massive_week_stream,
            model="llama-13b",
            num_gpus=2,
            slo=SLO(ttft=2.0, tpot=0.05),
            batcher=BatcherConfig(max_batch_tokens=8192, prefill_chunk_tokens=2048),
            retain_records=False,
            max_iterations=50_000_000,
        ),
        ServingScenario(
            name="noisy-neighbour",
            description="interactive chat tenant vs a batch tenant flooding 16K prompts, fair scheduling",
            trace_factory=_noisy_neighbour_trace,
            model="llama-13b",
            num_gpus=2,
            slo=SLO(ttft=2.0, tpot=0.1),
            batcher=BatcherConfig(policy="fair"),
            tenancy=_NOISY_NEIGHBOUR_TENANCY,
        ),
        ServingScenario(
            name="tenant-flash-crowd",
            description="steady interactive tenant plus a rate-limited best-effort flash crowd",
            trace_factory=_tenant_flash_crowd_trace,
            model="llama-13b",
            num_gpus=4,
            slo=SLO(ttft=2.0, tpot=0.1),
            batcher=BatcherConfig(policy="fair"),
            tenancy=_FLASH_CROWD_TENANCY,
        ),
        ServingScenario(
            name="batch-backfill-under-interactive",
            description="up-front batch backlog backfilling under steady interactive traffic",
            trace_factory=_batch_backfill_trace,
            model="llama-13b",
            num_gpus=4,
            slo=SLO(ttft=2.0, tpot=0.1),
            batcher=BatcherConfig(policy="fair"),
            tenancy=_BATCH_BACKFILL_TENANCY,
        ),
    )
}


def get_scenario(name: str) -> ServingScenario:
    """Look up a serving scenario by name.

    Raises ``KeyError`` with the list of available names on a miss.
    """
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIO_REGISTRY)}"
        ) from None


def run_scenario(
    scenario: ServingScenario,
    mode: str = "colocated",
    model: Optional[str] = None,
    num_gpus: Optional[int] = None,
    seed: int = 0,
    policy: Optional[str] = None,
    fast_forward: bool = True,
    prefix_caching: Optional[bool] = None,
    observe: Optional[EventRecorder] = None,
    retain_records: Optional[bool] = None,
    max_requests: Optional[int] = None,
) -> ServingResult:
    """Simulate a scenario end to end with either deployment.

    ``model`` / ``num_gpus`` / ``policy`` / ``prefix_caching`` /
    ``retain_records`` override the scenario's defaults (the CLI maps its
    flags straight through here).  ``fast_forward=False`` runs the naive
    one-iteration-at-a-time stepper — the reference oracle the decode
    fast-forward path is equivalence-tested against.  ``observe`` threads an
    :class:`~repro.obs.events.EventRecorder` through the engine (opt-in
    observability; ``None`` leaves the hot path untouched).  ``max_requests``
    truncates the workload — the supported way to smoke-test a slice of a
    massive scenario without paying for the full trace.
    """
    if mode not in ("colocated", "disaggregated"):
        raise UnknownNameError(
            f"unknown serving mode {mode!r}; available: ['colocated', 'disaggregated']"
        )
    model_config = get_model_config(model or scenario.model)
    config = scenario.serving_config(num_gpus, prefix_caching=prefix_caching)
    retain = scenario.retain_records if retain_records is None else retain_records
    if retain != config.retain_records:
        config = replace(config, retain_records=retain)
    if policy is not None:
        config = replace(config, batcher=replace(config.batcher, policy=policy))
    if not fast_forward:
        config = replace(config, fast_forward=False)
    if observe is not None:
        config = replace(config, observe=observe)
    if max_requests is not None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1 when given")
        trace: Iterable[Request] = islice(scenario.make_stream(seed), max_requests)
    elif retain:
        trace = scenario.make_trace(seed)
    else:
        trace = scenario.make_stream(seed)
    if mode == "disaggregated":
        engine = DisaggregatedEngine(
            model_config, config, prefill_fraction=scenario.prefill_fraction
        )
        return engine.run(list(trace) if not isinstance(trace, list) else trace, scenario.slo)
    return ServingEngine(model_config, config).run(trace, scenario.slo)
