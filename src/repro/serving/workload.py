"""Deterministic request-trace generators for the serving simulator.

A serving workload is a list of :class:`Request` records sorted by arrival
time.  Every generator takes an explicit ``seed`` and draws from its own
``random.Random`` instance, so a trace is a pure function of its arguments —
the property every serving test and the CLI's ``--seed`` flag rely on.

Four families cover the scenarios the registry exposes:

* :func:`poisson_trace` — memoryless arrivals with log-normal prompt/output
  lengths, the canonical "steady chat traffic" model;
* :func:`bursty_trace` — arrivals clustered into bursts (a thundering herd
  every ``burst_interval`` seconds), the pattern that separates colocated
  from disaggregated prefill (Section "prefill/decode interference");
* :func:`long_context_trace` — a mixture of short prompts and a heavy tail
  of very long prompts (RAG / long-document summarisation traffic);
* :func:`replay_trace` — verbatim replay of explicit
  ``(arrival, prompt, output)`` triples for table-driven tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Request",
    "poisson_trace",
    "bursty_trace",
    "long_context_trace",
    "replay_trace",
    "merge_traces",
]


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request as it enters the serving system.

    Slotted: million-request traces hold one of these per request.

    ``priority`` is only consulted by the priority admission policy; lower
    values are served first (0 is the default and the most urgent).
    """

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    priority: int = 0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.prompt_tokens < 1:
            raise ValueError("prompt_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


def _lognormal_tokens(rng: random.Random, mean: float, cv: float, cap: int) -> int:
    """Draw a token count with the given mean and coefficient of variation."""
    import math

    if mean <= 0:
        raise ValueError("mean token count must be positive")
    if cv <= 0:
        return max(1, min(cap, int(round(mean))))
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return max(1, min(cap, int(round(rng.lognormvariate(mu, math.sqrt(sigma2))))))


def poisson_trace(
    num_requests: int,
    arrival_rate: float,
    prompt_mean: int,
    output_mean: int,
    seed: int = 0,
    prompt_cv: float = 0.5,
    output_cv: float = 0.5,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
    priority: int = 0,
) -> List[Request]:
    """Poisson arrivals at ``arrival_rate`` requests/second."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = random.Random(seed)
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=_lognormal_tokens(rng, prompt_mean, prompt_cv, max_prompt_tokens),
                output_tokens=_lognormal_tokens(rng, output_mean, output_cv, max_output_tokens),
                priority=priority,
            )
        )
    return requests


def bursty_trace(
    num_bursts: int,
    burst_size: int,
    burst_interval: float,
    prompt_mean: int,
    output_mean: int,
    seed: int = 0,
    prompt_cv: float = 0.25,
    output_cv: float = 0.25,
    intra_burst_spacing: float = 1e-3,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
    priority: int = 0,
) -> List[Request]:
    """Bursts of ``burst_size`` near-simultaneous arrivals every interval.

    Requests inside a burst are staggered by ``intra_burst_spacing`` seconds
    so arrival order (and therefore FCFS order) is well defined.
    """
    if num_bursts < 1 or burst_size < 1:
        raise ValueError("num_bursts and burst_size must be >= 1")
    if burst_interval <= 0:
        raise ValueError("burst_interval must be positive")
    rng = random.Random(seed)
    requests: List[Request] = []
    rid = 0
    for burst in range(num_bursts):
        base = burst * burst_interval
        for j in range(burst_size):
            requests.append(
                Request(
                    request_id=rid,
                    arrival_time=base + j * intra_burst_spacing,
                    prompt_tokens=_lognormal_tokens(
                        rng, prompt_mean, prompt_cv, max_prompt_tokens
                    ),
                    output_tokens=_lognormal_tokens(
                        rng, output_mean, output_cv, max_output_tokens
                    ),
                    priority=priority,
                )
            )
            rid += 1
    return requests


def long_context_trace(
    num_requests: int,
    arrival_rate: float,
    short_prompt_mean: int,
    long_prompt_mean: int,
    long_fraction: float,
    output_mean: int,
    seed: int = 0,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
) -> List[Request]:
    """Poisson arrivals where a ``long_fraction`` of prompts is very long.

    Models RAG / long-document traffic: most requests carry short prompts,
    a heavy tail carries prompts around ``long_prompt_mean`` tokens.
    """
    if not 0.0 <= long_fraction <= 1.0:
        raise ValueError("long_fraction must be in [0, 1]")
    rng = random.Random(seed)
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        long = rng.random() < long_fraction
        mean = long_prompt_mean if long else short_prompt_mean
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=_lognormal_tokens(rng, mean, 0.3, max_prompt_tokens),
                output_tokens=_lognormal_tokens(rng, output_mean, 0.5, max_output_tokens),
            )
        )
    return requests


def replay_trace(
    entries: Iterable[Tuple[float, int, int]], priority: int = 0
) -> List[Request]:
    """Build a trace from explicit ``(arrival, prompt, output)`` triples."""
    requests = [
        Request(
            request_id=i,
            arrival_time=float(arrival),
            prompt_tokens=int(prompt),
            output_tokens=int(output),
            priority=priority,
        )
        for i, (arrival, prompt, output) in enumerate(entries)
    ]
    return sorted(requests, key=lambda r: r.arrival_time)


def merge_traces(*traces: Sequence[Request]) -> List[Request]:
    """Merge traces into one arrival-ordered trace with fresh request ids."""
    merged = sorted(
        (request for trace in traces for request in trace),
        key=lambda r: (r.arrival_time, r.request_id),
    )
    return [replace(request, request_id=i) for i, request in enumerate(merged)]
