"""Deterministic request-trace generators for the serving simulator.

A serving workload is a list of :class:`Request` records sorted by arrival
time.  Every generator takes an explicit ``seed`` and draws from its own
``random.Random`` instance, so a trace is a pure function of its arguments —
the property every serving test and the CLI's ``--seed`` flag rely on.

Four families cover the scenarios the registry exposes:

* :func:`poisson_trace` — memoryless arrivals with log-normal prompt/output
  lengths, the canonical "steady chat traffic" model;
* :func:`bursty_trace` — arrivals clustered into bursts (a thundering herd
  every ``burst_interval`` seconds), the pattern that separates colocated
  from disaggregated prefill (Section "prefill/decode interference");
* :func:`long_context_trace` — a mixture of short prompts and a heavy tail
  of very long prompts (RAG / long-document summarisation traffic);
* :func:`replay_trace` — verbatim replay of explicit
  ``(arrival, prompt, output)`` triples for table-driven tests.

Three further families model **shared prompt prefixes** (the traffic that
makes prefix-aware KV caching worthwhile).  A request's shareable prompt
head is declared symbolically as :attr:`Request.prefix` — an ordered tuple
of ``(segment_id, tokens)`` pairs, where equal segment ids denote equal
token content:

* :func:`shared_prefix_trace` — every request prepends one common system
  prompt (chat products, tool-use scaffolds);
* :func:`rag_corpus_trace` — requests retrieve documents from a shared
  corpus, popular documents drawn more often (Zipf-weighted), so prefix
  reuse competes for cache residency and exercises LRU eviction;
* :func:`agentic_tree_trace` — multi-turn agent sessions whose prompts grow
  by appending each turn's context, forming a prefix *tree*: every session
  chains off one shared scaffold, every turn extends its session's branch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Request",
    "poisson_trace",
    "bursty_trace",
    "long_context_trace",
    "shared_prefix_trace",
    "rag_corpus_trace",
    "agentic_tree_trace",
    "replay_trace",
    "merge_traces",
]


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request as it enters the serving system.

    Slotted: million-request traces hold one of these per request.

    ``priority`` is only consulted by the priority admission policy; lower
    values are served first (0 is the default and the most urgent).

    ``prefix`` declares the shareable head of the prompt as ordered
    ``(segment_id, tokens)`` pairs — equal segment ids denote equal token
    content, so the simulator can decide KV-reuse without real tokens.  The
    engines only consult it when ``prefix_caching`` is enabled; an empty
    tuple (the default) makes the request behave exactly as before.

    ``session`` optionally names the conversation the request belongs to
    (the fleet's session-affinity router groups by it); ``None`` falls back
    to the fleet's id-modulo session assignment.
    """

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    priority: int = 0
    prefix: Tuple[Tuple[Hashable, int], ...] = field(default=())
    session: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.prompt_tokens < 1:
            raise ValueError("prompt_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")
        prefix_total = 0
        for _, tokens in self.prefix:
            if tokens < 1:
                raise ValueError("prefix segments must hold >= 1 token")
            prefix_total += tokens
        if prefix_total > self.prompt_tokens:
            raise ValueError(
                f"prefix covers {prefix_total} tokens but the prompt has "
                f"only {self.prompt_tokens}"
            )

    @property
    def prefix_tokens(self) -> int:
        """Tokens of the prompt covered by the declared shared prefix."""
        return sum(tokens for _, tokens in self.prefix)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


def _lognormal_tokens(rng: random.Random, mean: float, cv: float, cap: int) -> int:
    """Draw a token count with the given mean and coefficient of variation."""
    import math

    if mean <= 0:
        raise ValueError("mean token count must be positive")
    if cv <= 0:
        return max(1, min(cap, int(round(mean))))
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return max(1, min(cap, int(round(rng.lognormvariate(mu, math.sqrt(sigma2))))))


def poisson_trace(
    num_requests: int,
    arrival_rate: float,
    prompt_mean: int,
    output_mean: int,
    seed: int = 0,
    prompt_cv: float = 0.5,
    output_cv: float = 0.5,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
    priority: int = 0,
) -> List[Request]:
    """Poisson arrivals at ``arrival_rate`` requests/second."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = random.Random(seed)
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=_lognormal_tokens(rng, prompt_mean, prompt_cv, max_prompt_tokens),
                output_tokens=_lognormal_tokens(rng, output_mean, output_cv, max_output_tokens),
                priority=priority,
            )
        )
    return requests


def bursty_trace(
    num_bursts: int,
    burst_size: int,
    burst_interval: float,
    prompt_mean: int,
    output_mean: int,
    seed: int = 0,
    prompt_cv: float = 0.25,
    output_cv: float = 0.25,
    intra_burst_spacing: float = 1e-3,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
    priority: int = 0,
) -> List[Request]:
    """Bursts of ``burst_size`` near-simultaneous arrivals every interval.

    Requests inside a burst are staggered by ``intra_burst_spacing`` seconds
    so arrival order (and therefore FCFS order) is well defined.
    """
    if num_bursts < 1 or burst_size < 1:
        raise ValueError("num_bursts and burst_size must be >= 1")
    if burst_interval <= 0:
        raise ValueError("burst_interval must be positive")
    rng = random.Random(seed)
    requests: List[Request] = []
    rid = 0
    for burst in range(num_bursts):
        base = burst * burst_interval
        for j in range(burst_size):
            requests.append(
                Request(
                    request_id=rid,
                    arrival_time=base + j * intra_burst_spacing,
                    prompt_tokens=_lognormal_tokens(
                        rng, prompt_mean, prompt_cv, max_prompt_tokens
                    ),
                    output_tokens=_lognormal_tokens(
                        rng, output_mean, output_cv, max_output_tokens
                    ),
                    priority=priority,
                )
            )
            rid += 1
    return requests


def long_context_trace(
    num_requests: int,
    arrival_rate: float,
    short_prompt_mean: int,
    long_prompt_mean: int,
    long_fraction: float,
    output_mean: int,
    seed: int = 0,
    max_prompt_tokens: int = 1_048_576,
    max_output_tokens: int = 8192,
) -> List[Request]:
    """Poisson arrivals where a ``long_fraction`` of prompts is very long.

    Models RAG / long-document traffic: most requests carry short prompts,
    a heavy tail carries prompts around ``long_prompt_mean`` tokens.
    """
    if not 0.0 <= long_fraction <= 1.0:
        raise ValueError("long_fraction must be in [0, 1]")
    rng = random.Random(seed)
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        long = rng.random() < long_fraction
        mean = long_prompt_mean if long else short_prompt_mean
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=_lognormal_tokens(rng, mean, 0.3, max_prompt_tokens),
                output_tokens=_lognormal_tokens(rng, output_mean, 0.5, max_output_tokens),
            )
        )
    return requests


def shared_prefix_trace(
    num_requests: int,
    arrival_rate: float,
    prefix_tokens: int,
    suffix_mean: int,
    output_mean: int,
    seed: int = 0,
    suffix_cv: float = 0.5,
    output_cv: float = 0.5,
    prefix_id: Hashable = "system-prompt",
    max_output_tokens: int = 8192,
) -> List[Request]:
    """Poisson arrivals that all share one ``prefix_tokens``-token prompt head.

    The canonical chat-product shape: a large common system prompt (tool
    definitions, policies, few-shot examples) followed by a short per-user
    suffix.  Every request carries the same single-segment prefix, so a
    prefix-aware KV cache serves all but the first request's prefix prefill
    from memory.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if prefix_tokens < 1:
        raise ValueError("prefix_tokens must be >= 1")
    rng = random.Random(seed)
    prefix = ((prefix_id, prefix_tokens),)
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        suffix = _lognormal_tokens(rng, suffix_mean, suffix_cv, 1_048_576)
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=prefix_tokens + suffix,
                output_tokens=_lognormal_tokens(rng, output_mean, output_cv, max_output_tokens),
                prefix=prefix,
            )
        )
    return requests


def rag_corpus_trace(
    num_requests: int,
    arrival_rate: float,
    num_documents: int,
    document_tokens: int,
    question_mean: int,
    output_mean: int,
    seed: int = 0,
    system_tokens: int = 0,
    zipf_exponent: float = 1.0,
    max_output_tokens: int = 8192,
) -> List[Request]:
    """RAG traffic over a shared corpus: prompt = system + document + question.

    Each request retrieves one of ``num_documents`` fixed documents, drawn
    Zipf-weighted (popular documents much more often) so the prefix cache
    sees skewed reuse: hot documents stay resident, cold ones are admitted
    and evicted LRU-first when the KV pool is short.  An optional common
    system prompt precedes every document, making the prefix two segments
    deep — requests for different documents still share the system blocks.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if num_documents < 1:
        raise ValueError("num_documents must be >= 1")
    if document_tokens < 1:
        raise ValueError("document_tokens must be >= 1")
    if system_tokens < 0:
        raise ValueError("system_tokens must be non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(num_documents)]
    requests: List[Request] = []
    t = 0.0
    for i in range(num_requests):
        t += rng.expovariate(arrival_rate)
        document = rng.choices(range(num_documents), weights=weights)[0]
        prefix: Tuple[Tuple[Hashable, int], ...] = ((("doc", document), document_tokens),)
        prompt = document_tokens
        if system_tokens:
            prefix = (("rag-system", system_tokens),) + prefix
            prompt += system_tokens
        question = _lognormal_tokens(rng, question_mean, 0.4, 1_048_576)
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=prompt + question,
                output_tokens=_lognormal_tokens(rng, output_mean, 0.5, max_output_tokens),
                prefix=prefix,
            )
        )
    return requests


def agentic_tree_trace(
    num_sessions: int,
    turns_per_session: int,
    scaffold_tokens: int,
    turn_tokens: int,
    output_mean: int,
    seed: int = 0,
    session_rate: float = 0.5,
    turn_gap: float = 4.0,
    max_output_tokens: int = 8192,
) -> List[Request]:
    """Multi-turn agent sessions forming a shared prefix *tree*.

    Every session starts from one common agent scaffold of
    ``scaffold_tokens`` (shared across *all* sessions); each turn's prompt
    is the scaffold plus the session's accumulated turns plus the new turn,
    so consecutive turns of a session share an ever-growing prefix branch.
    Sessions start Poisson-spaced at ``session_rate`` per second and turns
    follow ``turn_gap`` seconds apart (jittered), interleaving branches the
    way concurrent agent runs do.
    """
    if num_sessions < 1 or turns_per_session < 1:
        raise ValueError("num_sessions and turns_per_session must be >= 1")
    if scaffold_tokens < 1 or turn_tokens < 1:
        raise ValueError("scaffold_tokens and turn_tokens must be >= 1")
    rng = random.Random(seed)
    requests: List[Request] = []
    rid = 0
    session_start = 0.0
    for session in range(num_sessions):
        session_start += rng.expovariate(session_rate)
        t = session_start
        history: List[Tuple[Hashable, int]] = [("scaffold", scaffold_tokens)]
        history_tokens = scaffold_tokens
        for turn in range(turns_per_session):
            if turn:
                t += turn_gap * (0.5 + rng.random())
            new_turn = max(1, int(turn_tokens * (0.5 + rng.random())))
            requests.append(
                Request(
                    request_id=rid,
                    arrival_time=t,
                    prompt_tokens=history_tokens + new_turn,
                    output_tokens=_lognormal_tokens(
                        rng, output_mean, 0.4, max_output_tokens
                    ),
                    prefix=tuple(history),
                    session=session,
                )
            )
            rid += 1
            # The next turn's prompt embeds this turn's input verbatim.
            history.append((("turn", session, turn), new_turn))
            history_tokens += new_turn
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return [replace(request, request_id=i) for i, request in enumerate(requests)]


def replay_trace(
    entries: Iterable[Tuple[float, int, int]], priority: int = 0
) -> List[Request]:
    """Build a trace from explicit ``(arrival, prompt, output)`` triples."""
    requests = [
        Request(
            request_id=i,
            arrival_time=float(arrival),
            prompt_tokens=int(prompt),
            output_tokens=int(output),
            priority=priority,
        )
        for i, (arrival, prompt, output) in enumerate(entries)
    ]
    return sorted(requests, key=lambda r: r.arrival_time)


def merge_traces(*traces: Sequence[Request]) -> List[Request]:
    """Merge traces into one arrival-ordered trace with fresh request ids."""
    merged = sorted(
        (request for trace in traces for request in trace),
        key=lambda r: (r.arrival_time, r.request_id),
    )
    return [replace(request, request_id=i) for i, request in enumerate(merged)]
