"""Radix-tree prefix index over paged-KV blocks (shared-prefix caching).

Real long-context fleets share enormous prompt prefixes across requests —
chat system prompts, RAG corpus documents, agent scaffolds — and a serving
system that recomputes those prefixes for every request wastes most of its
prefill FLOPs.  This module is the index that makes the reuse explicit:

* a request declares its shareable prompt head as an ordered tuple of
  ``(segment_id, tokens)`` pairs (:attr:`~repro.serving.workload.Request.prefix`);
  equal segment ids denote equal token content, so the simulator never needs
  real tokens to decide whether two prompts share KV state;
* :func:`prefix_block_keys` maps that symbolic prefix onto **block-granular
  content keys**: block ``b`` of the prefix is shareable between two requests
  iff the segment path covering tokens ``[0, (b+1) * block_tokens)`` is
  identical — exactly the hash-chain scheme production paged-attention
  servers use, expressed over segment ids instead of token hashes;
* :class:`PrefixCache` stores published blocks as a **radix tree**: one node
  per block, children keyed by the next block's content key, so every
  root-to-node path spells one cached prefix and longest-prefix match is a
  walk from the root.

Sharing is **copy-on-write at block granularity**: a request referencing a
cached block never writes into it (decode tokens and uncached prompt tails
always land in request-private blocks), so a shared block needs reference
counting, never duplication.  The invariants the tests pin:

* **Refcount conservation** — every node's refcount equals the number of
  live requests whose leading block span includes it, across admissions,
  preemptions, finishes and replica crashes.
* **Upward closure** — requests reference contiguous *leading* spans, so a
  referenced node's ancestors are always referenced; eviction therefore only
  ever removes refcount-zero subtrees, leaf-first.
* **LRU eviction** — blocks whose refcount drops to zero stay resident (a
  future request may hit them) and are reclaimed least-recently-used first,
  only when the allocator actually needs the space, and **never while
  referenced**.

The cache owns no memory itself: chunks stay inside the allocator's
:class:`~repro.core.kv_cache.ChunkedKVCache` pool, re-homed under
``("pfx", content_key)`` keys at publication time and handed back to the
allocator on eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["PrefixCache", "PrefixCacheStats", "prefix_block_keys"]


@lru_cache(maxsize=1 << 14)
def prefix_block_keys(
    prefix: Tuple[Tuple[Hashable, int], ...], block_tokens: int
) -> Tuple[Hashable, ...]:
    """Content keys of the full KV blocks covered by a symbolic prefix.

    ``prefix`` is the request's ordered ``(segment_id, tokens)`` tuple; the
    key of block ``b`` is ``(covering_path, b)`` where ``covering_path`` is
    the minimal leading run of segment ids spanning ``(b + 1) * block_tokens``
    tokens.  Two requests share block ``b`` exactly when their segment paths
    agree that far — the radix-tree equality the cache is built on.  Only
    *full* blocks are shareable (a partial tail block would mix shared and
    private tokens); callers get one key per full block, in order.
    """
    if block_tokens < 1:
        raise ValueError("block_tokens must be >= 1")
    keys: List[Hashable] = []
    path: List[Hashable] = []
    covered = 0
    boundary = block_tokens
    for segment_id, tokens in prefix:
        path.append(segment_id)
        covered += tokens
        while boundary <= covered:
            keys.append((tuple(path), len(keys)))
            boundary += block_tokens
    return tuple(keys)


@dataclass(frozen=True)
class PrefixCacheStats:
    """Counters the prefix cache accumulates over one allocator's lifetime."""

    nodes: int
    referenced_nodes: int
    hit_blocks: int
    missed_blocks: int
    published_blocks: int
    evicted_blocks: int
    dedup_blocks: int

    @property
    def block_hit_rate(self) -> float:
        """Fraction of looked-up prefix blocks served from the cache."""
        total = self.hit_blocks + self.missed_blocks
        return self.hit_blocks / total if total else 0.0


class _Node:
    """One cached prefix block: a radix-tree node owning one pool chunk."""

    __slots__ = ("key", "chunk_key", "refcount", "parent", "children")

    def __init__(self, key: Hashable, chunk_key: Hashable, parent: Optional["_Node"]):
        self.key = key
        self.chunk_key = chunk_key
        self.refcount = 0
        self.parent = parent
        self.children: Dict[Hashable, "_Node"] = {}


class PrefixCache:
    """Block-granular radix tree with refcounts and LRU of unreferenced nodes."""

    def __init__(self) -> None:
        # Flat index for O(1) longest-prefix walks; the tree structure lives
        # in the nodes' parent/children links (publication always extends an
        # existing path, so the index and the tree stay consistent).
        self._nodes: Dict[Hashable, _Node] = {}
        self._roots: Dict[Hashable, _Node] = {}
        # Per-request leading reference spans (ordered, contiguous from the
        # root) — the copy-on-write read set of each live request.
        self._refs: Dict[Hashable, List[_Node]] = {}
        # Unreferenced-but-resident nodes in eviction order (head = LRU).
        self._lru: "OrderedDict[Hashable, _Node]" = OrderedDict()
        self.hit_blocks = 0
        self.missed_blocks = 0
        self.published_blocks = 0
        self.evicted_blocks = 0
        self.dedup_blocks = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def evictable_blocks(self) -> int:
        """Resident blocks no live request references (LRU candidates)."""
        return len(self._lru)

    def contains(self, key: Hashable) -> bool:
        return key in self._nodes

    def refs_of(self, request_id: Hashable) -> int:
        """Blocks the request currently references (its leading shared span)."""
        return len(self._refs.get(request_id, ()))

    def referenced_requests(self) -> List[Hashable]:
        return list(self._refs)

    def match(self, keys: Sequence[Hashable]) -> int:
        """Longest-prefix match: leading blocks of ``keys`` that are cached.

        Read-only (no refcount or LRU side effects) — the fleet routers use
        it to observe per-replica hit potential without committing anything.
        """
        matched = 0
        for key in keys:
            if key not in self._nodes:
                break
            matched += 1
        return matched

    # ------------------------------------------------------------------
    # Reference management
    # ------------------------------------------------------------------
    def acquire(self, request_id: Hashable, keys: Sequence[Hashable]) -> int:
        """Reference the leading cached blocks of ``keys`` for a request.

        Returns the number of blocks referenced (the hit length).  Blocks
        whose refcount was zero leave the LRU — they are pinned until
        :meth:`release`.  A request must not hold references already.
        """
        if request_id in self._refs:
            raise ValueError(f"request {request_id!r} already holds prefix references")
        span: List[_Node] = []
        for key in keys:
            node = self._nodes.get(key)
            if node is None:
                break
            if node.refcount == 0:
                del self._lru[key]
            node.refcount += 1
            span.append(node)
        if span:
            self._refs[request_id] = span
        self.hit_blocks += len(span)
        self.missed_blocks += len(keys) - len(span)
        return len(span)

    def release(self, request_id: Hashable) -> int:
        """Drop a request's references; zero-refcount blocks become LRU tails.

        Returns the number of references dropped.  The blocks stay resident —
        release never frees memory, eviction does.
        """
        span = self._refs.pop(request_id, None)
        if span is None:
            return 0
        for node in span:
            node.refcount -= 1
            if node.refcount == 0:
                self._lru[node.key] = node  # most-recently-used tail
        return len(span)

    # ------------------------------------------------------------------
    # Publication (copy-on-write hand-over of a request-private block)
    # ------------------------------------------------------------------
    def publish(self, request_id: Hashable, key: Hashable, chunk_key: Hashable) -> bool:
        """Publish a just-prefilled private block as the next shared block.

        ``key`` must be the block key immediately following the request's
        current reference span (publication proceeds leading-block first, so
        the span stays contiguous).  Two outcomes:

        * the key is new — a node adopting the pool chunk under ``chunk_key``
          joins the tree with refcount 1 (held by the publisher); returns
          ``True`` (the caller re-homes the chunk under ``chunk_key``);
        * the key was concurrently published by a twin request — the existing
          node is referenced instead and ``False`` is returned so the caller
          frees its duplicate private block (block-level dedup).
        """
        span = self._refs.setdefault(request_id, [])
        node = self._nodes.get(key)
        if node is not None:
            if node.refcount == 0:
                del self._lru[key]
            node.refcount += 1
            span.append(node)
            self.dedup_blocks += 1
            return False
        parent = span[-1] if span else None
        node = _Node(key, chunk_key, parent)
        node.refcount = 1
        self._nodes[key] = node
        if parent is None:
            self._roots[key] = node
        else:
            parent.children[key] = node
        span.append(node)
        self.published_blocks += 1
        return True

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(self, blocks: int) -> List[Hashable]:
        """Reclaim up to ``blocks`` unreferenced blocks, LRU- and leaf-first.

        Returns the chunk keys of the evicted blocks (the allocator releases
        them back to the pool).  Referenced blocks are never candidates.
        Each round reclaims the least-recently-used node that is currently a
        leaf — a node with resident children waits until its subtree has been
        reclaimed (upward closure guarantees those children are themselves
        unreferenced), so the oldest chain drains deepest-block-first before
        any younger chain is touched.
        """
        freed: List[Hashable] = []
        while len(freed) < blocks:
            victim: Optional[_Node] = None
            for node in self._lru.values():
                if not node.children:
                    victim = node
                    break
            if victim is None:
                break  # nothing evictable (empty LRU, or only referenced trees)
            del self._lru[victim.key]
            del self._nodes[victim.key]
            if victim.parent is None:
                del self._roots[victim.key]
            else:
                del victim.parent.children[victim.key]
            freed.append(victim.chunk_key)
            self.evicted_blocks += 1
        return freed

    # ------------------------------------------------------------------
    def check_refcounts(self) -> bool:
        """Refcount conservation: node refcounts == live request references."""
        counts: Dict[Hashable, int] = {}
        for span in self._refs.values():
            for node in span:
                counts[node.key] = counts.get(node.key, 0) + 1
        for key, node in self._nodes.items():
            if node.refcount != counts.get(key, 0):
                return False
            if (node.refcount == 0) != (key in self._lru):
                return False
        return not (set(counts) - set(self._nodes))

    def stats(self) -> PrefixCacheStats:
        return PrefixCacheStats(
            nodes=len(self._nodes),
            referenced_nodes=len(self._nodes) - len(self._lru),
            hit_blocks=self.hit_blocks,
            missed_blocks=self.missed_blocks,
            published_blocks=self.published_blocks,
            evicted_blocks=self.evicted_blocks,
            dedup_blocks=self.dedup_blocks,
        )
