"""Serving-side latency and goodput metrics.

Per-request latencies follow the standard serving decomposition:

* **TTFT** (time to first token) — from arrival to the end of the iteration
  that completes the request's prefill (which also samples its first output
  token);
* **TPOT** (time per output token) — the mean inter-token gap over the
  decode phase, ``(finish - first_token) / (output_tokens - 1)``;
* **E2E** — arrival to final token.

**Goodput** is the throughput of requests that meet the scenario's
:class:`SLO` (both the TTFT and TPOT bounds), the quantity
prefill/decode-disaggregation papers optimise for instead of raw throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis.report import format_percent, render_table
from ..obs.sketch import QuantileSketch
from .workload import Request

__all__ = [
    "SLO",
    "RequestRecord",
    "ServingMetrics",
    "TenantMetrics",
    "PercentileSummary",
    "StreamingMetrics",
    "percentile",
    "compute_metrics",
    "compute_tenant_metrics",
    "tenant_report_text",
]


class PercentileSummary:
    """Single-sort percentile reader over one sample.

    Aggregations read several quantiles of the same latency sample (p50 /
    p95 / p99), and the serving and fleet engines recompute those
    aggregations once per simulated run; sorting once and interpolating per
    read replaces the former sort-per-:func:`percentile`-call without
    changing a single bit of the result (the interpolation arithmetic is
    identical).
    """

    __slots__ = ("_ordered",)

    def __init__(self, values: Sequence[float], metric: Optional[str] = None):
        if not values:
            name = metric or "sample"
            raise ValueError(
                f"cannot summarise {name}: no samples were collected "
                "(did any request finish?)"
            )
        self._ordered = sorted(values)

    def at(self, q: float) -> float:
        """Linear-interpolation percentile (``q`` in [0, 100]) of the sample."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        ordered = self._ordered
        if len(ordered) == 1:
            return ordered[0]
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def count(self) -> int:
        """Number of samples behind the summary (>= 1 by construction)."""
        return len(self._ordered)

    @property
    def max(self) -> float:
        """Largest observed sample (the p100 read, without interpolating)."""
        return self._ordered[-1]


def percentile(values: Sequence[float], q: float, metric: Optional[str] = None) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    ``metric`` names the quantity in the empty-sample error message.
    """
    return PercentileSummary(values, metric=metric).at(q)


@dataclass(frozen=True)
class SLO:
    """Latency service-level objective a request must meet to count as good."""

    ttft: float = 2.0
    tpot: float = 0.1

    def __post_init__(self) -> None:
        if self.ttft <= 0 or self.tpot <= 0:
            raise ValueError("SLO bounds must be positive")


@dataclass(slots=True, eq=False)
class RequestRecord:
    """Lifecycle timestamps of one served request.

    A hot object (one per request, touched every iteration); ``slots`` keeps
    it compact and ``eq=False`` keeps identity comparison, which is what the
    schedulers mean when they look records up.
    """

    request: Request
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    preemptions: int = 0
    #: Prompt tokens served from the shared-prefix KV cache, summed over
    #: every (re-)admission of the request.
    prefix_cached_tokens: int = 0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def ttft(self) -> float:
        if self.first_token_time is None:
            raise ValueError(f"request {self.request.request_id} produced no token")
        return self.first_token_time - self.request.arrival_time

    @property
    def tpot(self) -> float:
        if self.finish_time is None or self.first_token_time is None:
            raise ValueError(f"request {self.request.request_id} did not finish")
        decode_tokens = self.request.output_tokens - 1
        if decode_tokens <= 0:
            return 0.0
        return (self.finish_time - self.first_token_time) / decode_tokens

    @property
    def e2e_latency(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"request {self.request.request_id} did not finish")
        return self.finish_time - self.request.arrival_time

    def meets(self, slo: SLO) -> bool:
        return self.finished and self.ttft <= slo.ttft and self.tpot <= slo.tpot


@dataclass
class ServingMetrics:
    """Aggregate serving metrics over one simulated run."""

    num_requests: int
    duration: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p50: float
    tpot_p95: float
    tpot_p99: float
    e2e_p50: float
    e2e_p95: float
    e2e_p99: float
    output_tokens_per_second: float
    requests_per_second: float
    goodput_fraction: float
    goodput_rps: float
    kv_utilization_mean: float
    kv_utilization_peak: float
    preemptions: int
    slo: SLO = field(default_factory=SLO)
    #: Shared-prefix caching aggregates (zero when the feature is off).
    prefix_hit_rate: float = 0.0
    prefix_hit_tokens: int = 0
    prefix_flops_saved: float = 0.0
    prefix_evictions: int = 0

    def to_rows(self) -> List[tuple]:
        return [
            ("requests served", f"{self.num_requests}"),
            ("makespan", f"{self.duration:.2f} s"),
            ("TTFT p50 / p95 / p99", f"{self.ttft_p50:.3f} / {self.ttft_p95:.3f} / {self.ttft_p99:.3f} s"),
            ("TPOT p50 / p95 / p99", f"{self.tpot_p50 * 1e3:.1f} / {self.tpot_p95 * 1e3:.1f} / {self.tpot_p99 * 1e3:.1f} ms"),
            ("E2E p50 / p95 / p99", f"{self.e2e_p50:.2f} / {self.e2e_p95:.2f} / {self.e2e_p99:.2f} s"),
            ("output throughput", f"{self.output_tokens_per_second:.0f} tok/s"),
            ("request throughput", f"{self.requests_per_second:.2f} req/s"),
            (
                f"goodput (TTFT<={self.slo.ttft:g}s, TPOT<={self.slo.tpot * 1e3:g}ms)",
                f"{self.goodput_rps:.2f} req/s ({format_percent(self.goodput_fraction)})",
            ),
            ("KV-cache utilization mean / peak", f"{format_percent(self.kv_utilization_mean)} / {format_percent(self.kv_utilization_peak)}"),
            ("preemptions", f"{self.preemptions}"),
            (
                "prefix cache hit rate / saved",
                f"{format_percent(self.prefix_hit_rate)} / "
                f"{self.prefix_hit_tokens} tokens "
                f"({self.prefix_flops_saved / 1e12:.1f} TFLOPs), "
                f"{self.prefix_evictions} evictions",
            ),
        ]

    def to_text(self, title: str = "serving metrics") -> str:
        return render_table(["metric", "value"], self.to_rows(), title=title)


@dataclass
class TenantMetrics:
    """One tenant's slice of a run: latencies, goodput, SLO attainment.

    Computed against the tenant's *own* SLO (its SLO class when a tenancy
    config is installed, the run's global SLO otherwise).  Counter fields
    (requests, tokens, good requests) are exact on both the record-based and
    streaming paths; percentiles are exact record-side and P²-sketched
    stream-side, the same contract :class:`StreamingMetrics` documents.
    """

    tenant: str
    num_requests: int
    output_tokens: int
    good_requests: int
    goodput_fraction: float
    goodput_rps: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p50: float
    tpot_p95: float
    tpot_p99: float
    e2e_p50: float
    e2e_p95: float
    e2e_p99: float
    slo: SLO = field(default_factory=SLO)


def tenant_report_text(
    tenants: Mapping[str, TenantMetrics], title: str = "per-tenant QoS"
) -> str:
    """Render a per-tenant SLO attainment table (one row per tenant)."""
    rows = []
    for name in sorted(tenants):
        m = tenants[name]
        rows.append(
            (
                name,
                f"{m.num_requests}",
                f"{m.ttft_p50:.3f} / {m.ttft_p99:.3f}",
                f"{m.tpot_p50 * 1e3:.1f} / {m.tpot_p99 * 1e3:.1f}",
                f"{m.slo.ttft:g}s / {m.slo.tpot * 1e3:g}ms",
                format_percent(m.goodput_fraction),
                f"{m.goodput_rps:.2f}",
            )
        )
    return render_table(
        [
            "tenant",
            "requests",
            "TTFT p50/p99 (s)",
            "TPOT p50/p99 (ms)",
            "SLO (TTFT/TPOT)",
            "attainment",
            "goodput req/s",
        ],
        rows,
        title=title,
    )


class StreamingMetrics:
    """Bounded-memory aggregation of finished requests.

    The streaming counterpart of :func:`compute_metrics`: engines fold each
    finished :class:`RequestRecord` in with :meth:`observe` and then *drop*
    it, so a million-request run holds O(1) metric state instead of a
    million records.  Internals:

    * **latency percentiles** come from P² quantile sketches
      (:class:`~repro.obs.sketch.QuantileSketch`) — exact for five or fewer
      samples (bit-identical to :class:`PercentileSummary`), approximate
      within the documented P² bound beyond that;
    * **counts, totals and goodput** (requests finished, output tokens,
      SLO-meeting requests) are exact integer counters, so throughput,
      goodput fraction and goodput RPS match the record-based path to the
      last bit;
    * **windowed finish counters** track completions per fixed time window
      (O(duration / window) memory, independent of request count) for
      arrival-curve introspection of diurnal traces.

    :meth:`finalize` assembles the same :class:`ServingMetrics` dataclass
    ``compute_metrics`` returns, taking the engine's exact KV/preemption/
    prefix-FLOP counters as arguments just like the record-based path does.
    """

    __slots__ = (
        "slo",
        "window_seconds",
        "finished",
        "good_requests",
        "output_tokens",
        "last_finish_time",
        "window_counts",
        "tenant_slos",
        "_tenants",
        "_ttft",
        "_tpot",
        "_e2e",
    )

    def __init__(
        self,
        slo: Optional[SLO] = None,
        window_seconds: float = 60.0,
        tenant_slos: Optional[Mapping[str, SLO]] = None,
        _track_tenants: bool = True,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.slo = slo or SLO()
        self.window_seconds = window_seconds
        self.finished = 0
        self.good_requests = 0
        self.output_tokens = 0
        self.last_finish_time = 0.0
        #: Finished-request count per ``window_seconds`` bucket of finish
        #: time, keyed by the bucket index (``finish_time // window``).
        self.window_counts: Dict[int, int] = {}
        #: Per-tenant SLO overrides (the tenant's SLO class); tenants not
        #: listed are judged against the run's global ``slo``.
        self.tenant_slos: Dict[str, SLO] = dict(tenant_slos) if tenant_slos else {}
        # One nested single-level accumulator per tagged tenant; ``None`` in
        # the nested accumulators themselves (no recursion).  Untagged
        # traffic allocates nothing here.
        self._tenants: Optional[Dict[str, "StreamingMetrics"]] = (
            {} if _track_tenants else None
        )
        self._ttft = QuantileSketch("TTFT")
        self._tpot = QuantileSketch("TPOT")
        self._e2e = QuantileSketch("E2E latency")

    def observe(self, record: RequestRecord) -> None:
        """Fold one *finished* request in; the caller may then drop it."""
        if not record.finished:
            raise ValueError(
                f"request {record.request.request_id} has not finished; "
                "StreamingMetrics only aggregates completed requests"
            )
        self.finished += 1
        self.output_tokens += record.request.output_tokens
        if record.meets(self.slo):
            self.good_requests += 1
        finish = record.finish_time
        if finish > self.last_finish_time:
            self.last_finish_time = finish
        bucket = int(finish // self.window_seconds)
        self.window_counts[bucket] = self.window_counts.get(bucket, 0) + 1
        self._ttft.add(record.ttft)
        self._tpot.add(record.tpot)
        self._e2e.add(record.e2e_latency)
        if self._tenants is not None:
            tenant = record.request.tenant
            if tenant is not None:
                sub = self._tenants.get(tenant)
                if sub is None:
                    sub = StreamingMetrics(
                        self.tenant_slos.get(tenant, self.slo),
                        self.window_seconds,
                        _track_tenants=False,
                    )
                    self._tenants[tenant] = sub
                sub.observe(record)

    @property
    def count(self) -> int:
        return self.finished

    def peak_window(self) -> tuple:
        """``(window_start_time, count)`` of the busiest finish window."""
        if not self.window_counts:
            raise ValueError("no finished requests observed")
        bucket, count = max(self.window_counts.items(), key=lambda item: (item[1], -item[0]))
        return (bucket * self.window_seconds, count)

    def tenant_metrics(self, duration: float) -> Dict[str, TenantMetrics]:
        """Per-tenant aggregates of the folded stream (empty when untagged)."""
        if not self._tenants:
            return {}
        span = max(duration, 1e-12)
        out: Dict[str, TenantMetrics] = {}
        for tenant in sorted(self._tenants):
            sub = self._tenants[tenant]
            out[tenant] = TenantMetrics(
                tenant=tenant,
                num_requests=sub.finished,
                output_tokens=sub.output_tokens,
                good_requests=sub.good_requests,
                goodput_fraction=sub.good_requests / sub.finished,
                goodput_rps=sub.good_requests / span,
                ttft_p50=sub._ttft.quantile(0.5),
                ttft_p95=sub._ttft.quantile(0.95),
                ttft_p99=sub._ttft.quantile(0.99),
                tpot_p50=sub._tpot.quantile(0.5),
                tpot_p95=sub._tpot.quantile(0.95),
                tpot_p99=sub._tpot.quantile(0.99),
                e2e_p50=sub._e2e.quantile(0.5),
                e2e_p95=sub._e2e.quantile(0.95),
                e2e_p99=sub._e2e.quantile(0.99),
                slo=sub.slo,
            )
        return out

    def finalize(
        self,
        duration: float,
        kv_utilization_mean: float = 0.0,
        kv_utilization_peak: float = 0.0,
        preemptions: int = 0,
        prefix_hit_rate: float = 0.0,
        prefix_hit_tokens: int = 0,
        prefix_flops_saved: float = 0.0,
        prefix_evictions: int = 0,
    ) -> ServingMetrics:
        """Assemble :class:`ServingMetrics` from the folded stream."""
        if self.finished == 0:
            raise ValueError(
                "no finished requests to aggregate (0 observed) — the trace "
                "may be empty or the run ended before any request completed"
            )
        span = max(duration, 1e-12)
        return ServingMetrics(
            num_requests=self.finished,
            duration=duration,
            ttft_p50=self._ttft.quantile(0.5),
            ttft_p95=self._ttft.quantile(0.95),
            ttft_p99=self._ttft.quantile(0.99),
            tpot_p50=self._tpot.quantile(0.5),
            tpot_p95=self._tpot.quantile(0.95),
            tpot_p99=self._tpot.quantile(0.99),
            e2e_p50=self._e2e.quantile(0.5),
            e2e_p95=self._e2e.quantile(0.95),
            e2e_p99=self._e2e.quantile(0.99),
            output_tokens_per_second=self.output_tokens / span,
            requests_per_second=self.finished / span,
            goodput_fraction=self.good_requests / self.finished,
            goodput_rps=self.good_requests / span,
            kv_utilization_mean=kv_utilization_mean,
            kv_utilization_peak=kv_utilization_peak,
            preemptions=preemptions,
            slo=self.slo,
            prefix_hit_rate=prefix_hit_rate,
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_flops_saved=prefix_flops_saved,
            prefix_evictions=prefix_evictions,
        )


def compute_metrics(
    records: Sequence[RequestRecord],
    duration: float,
    slo: SLO,
    kv_utilization_mean: float = 0.0,
    kv_utilization_peak: float = 0.0,
    preemptions: int = 0,
    prefix_hit_rate: float = 0.0,
    prefix_hit_tokens: int = 0,
    prefix_flops_saved: float = 0.0,
    prefix_evictions: int = 0,
) -> ServingMetrics:
    """Aggregate per-request records into :class:`ServingMetrics`."""
    done = [r for r in records if r.finished]
    if not done:
        raise ValueError(
            f"no finished requests to aggregate ({len(records)} records, "
            "0 finished) — the trace may be empty or the run ended before "
            "any request completed"
        )
    ttfts = PercentileSummary([r.ttft for r in done], metric="TTFT")
    tpots = PercentileSummary([r.tpot for r in done], metric="TPOT")
    e2es = PercentileSummary([r.e2e_latency for r in done], metric="E2E latency")
    output_tokens = sum(r.request.output_tokens for r in done)
    span = max(duration, 1e-12)
    good = sum(1 for r in done if r.meets(slo))
    return ServingMetrics(
        num_requests=len(done),
        duration=duration,
        ttft_p50=ttfts.at(50),
        ttft_p95=ttfts.at(95),
        ttft_p99=ttfts.at(99),
        tpot_p50=tpots.at(50),
        tpot_p95=tpots.at(95),
        tpot_p99=tpots.at(99),
        e2e_p50=e2es.at(50),
        e2e_p95=e2es.at(95),
        e2e_p99=e2es.at(99),
        output_tokens_per_second=output_tokens / span,
        requests_per_second=len(done) / span,
        goodput_fraction=good / len(done),
        goodput_rps=good / span,
        kv_utilization_mean=kv_utilization_mean,
        kv_utilization_peak=kv_utilization_peak,
        preemptions=preemptions,
        slo=slo,
        prefix_hit_rate=prefix_hit_rate,
        prefix_hit_tokens=prefix_hit_tokens,
        prefix_flops_saved=prefix_flops_saved,
        prefix_evictions=prefix_evictions,
    )


def compute_tenant_metrics(
    records: Sequence[RequestRecord],
    duration: float,
    slo: SLO,
    tenant_slos: Optional[Mapping[str, SLO]] = None,
) -> Dict[str, TenantMetrics]:
    """Group finished records by tenant and aggregate each group exactly.

    Records with ``tenant=None`` belong to no tenant and are skipped, so an
    untagged run returns ``{}`` — per-tenant reporting costs nothing unless
    the workload opted in.  Each tenant is judged against its own SLO from
    ``tenant_slos`` (falling back to the run's global ``slo``).
    """
    groups: Dict[str, List[RequestRecord]] = {}
    for record in records:
        tenant = record.request.tenant
        if tenant is not None and record.finished:
            groups.setdefault(tenant, []).append(record)
    if not groups:
        return {}
    span = max(duration, 1e-12)
    slos = dict(tenant_slos) if tenant_slos else {}
    out: Dict[str, TenantMetrics] = {}
    for tenant in sorted(groups):
        done = groups[tenant]
        tenant_slo = slos.get(tenant, slo)
        ttfts = PercentileSummary([r.ttft for r in done], metric="TTFT")
        tpots = PercentileSummary([r.tpot for r in done], metric="TPOT")
        e2es = PercentileSummary([r.e2e_latency for r in done], metric="E2E latency")
        good = sum(1 for r in done if r.meets(tenant_slo))
        out[tenant] = TenantMetrics(
            tenant=tenant,
            num_requests=len(done),
            output_tokens=sum(r.request.output_tokens for r in done),
            good_requests=good,
            goodput_fraction=good / len(done),
            goodput_rps=good / span,
            ttft_p50=ttfts.at(50),
            ttft_p95=ttfts.at(95),
            ttft_p99=ttfts.at(99),
            tpot_p50=tpots.at(50),
            tpot_p95=tpots.at(95),
            tpot_p99=tpots.at(99),
            e2e_p50=e2es.at(50),
            e2e_p95=e2es.at(95),
            e2e_p99=e2es.at(99),
            slo=tenant_slo,
        )
    return out
