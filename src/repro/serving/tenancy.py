"""Multi-tenant QoS: SLO classes, token-bucket admission, tenant configs.

All traffic used to be one anonymous stream; this module gives requests an
owner.  A :class:`TenancyConfig` maps tenant names to :class:`TenantSpec`
records, each carrying

* an **SLO class** (:data:`SLO_CLASS_REGISTRY`: ``interactive`` / ``batch``
  / ``best-effort``) that bundles the tenant's latency targets with a
  *preemption cost* — when the batcher must evict a running request to free
  KV blocks, it prefers victims from cheap-to-preempt classes;
* a **fair-share weight** used by the virtual-token-counter fair scheduler
  in :mod:`repro.serving.batcher` (``policy="fair"``): tenants accrue
  virtual time proportional to ``served_tokens / weight``, so a weight-2
  tenant is entitled to twice the token throughput of a weight-1 tenant
  under contention;
* an optional **token bucket** rate limit — admission control that bounds a
  tenant's sustained token throughput to ``refill_rate`` tokens/second with
  bursts up to ``capacity`` tokens.

Everything here is opt-in: a request with ``tenant=None`` (the default) or
an engine with ``tenancy=None`` behaves byte-identically to a build without
this module — the property suite in ``tests/test_tenancy_properties.py``
pins that down with digest equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..constants import UnknownNameError
from .metrics import SLO

__all__ = [
    "SLOClass",
    "SLO_CLASS_REGISTRY",
    "get_slo_class",
    "TokenBucket",
    "TenantSpec",
    "TenancyConfig",
]


@dataclass(frozen=True, slots=True)
class SLOClass:
    """A named service tier: latency targets plus a preemption cost.

    ``preemption_cost`` orders eviction victims: the batcher preempts the
    *lowest*-cost running request first, so ``best-effort`` (cost 0) work is
    sacrificed before ``batch`` (cost 1), and ``interactive`` (cost 2) is
    evicted only when nothing cheaper is running.  Untenanted requests carry
    an implicit cost of 0, preserving the historical victim order.
    """

    name: str
    slo: SLO
    preemption_cost: int

    def __post_init__(self) -> None:
        if self.preemption_cost < 0:
            raise ValueError("preemption_cost must be non-negative")


SLO_CLASS_REGISTRY: Dict[str, SLOClass] = {
    "interactive": SLOClass("interactive", SLO(ttft=2.0, tpot=0.1), preemption_cost=2),
    "batch": SLOClass("batch", SLO(ttft=30.0, tpot=0.5), preemption_cost=1),
    "best-effort": SLOClass("best-effort", SLO(ttft=120.0, tpot=1.0), preemption_cost=0),
}


def get_slo_class(name: str) -> SLOClass:
    """Look up an SLO class by name; unknown names list the valid set."""
    try:
        return SLO_CLASS_REGISTRY[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown SLO class {name!r}; available: {sorted(SLO_CLASS_REGISTRY)}"
        ) from None


@dataclass(slots=True)
class TokenBucket:
    """Continuous-refill token bucket (tokens of LLM work, not API calls).

    The bucket holds at most ``capacity`` tokens and refills at
    ``refill_rate`` tokens/second.  :meth:`admit` charges a request's total
    token footprint if the bucket currently holds at least that many tokens
    (refilled lazily to the query time); otherwise it leaves the bucket
    untouched and reports when enough tokens will have accrued.

    The never-over-admit invariant — total tokens granted over any window
    ``[0, T]`` is at most ``capacity + refill_rate * T`` — holds because the
    balance starts at ``capacity``, only :meth:`admit` withdraws, and the
    refill between two queries is exactly ``refill_rate * dt`` capped at the
    brim.  ``tests/test_tenancy_properties.py`` checks it with hypothesis.
    """

    capacity: float
    refill_rate: float
    tokens: float = field(init=False)
    _last_refill: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("token bucket capacity must be positive")
        if self.refill_rate <= 0:
            raise ValueError("token bucket refill_rate must be positive")
        self.tokens = self.capacity

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(self.capacity, self.tokens + self.refill_rate * (now - self._last_refill))
            self._last_refill = now

    def admit(self, now: float, tokens: int) -> bool:
        """Charge ``tokens`` if available at time ``now``; True on success."""
        self._refill(now)
        # A request larger than the bucket itself is charged whenever the
        # bucket is full — otherwise it could never be admitted at all.  The
        # balance then goes negative (debt), so the over-admit bound still
        # holds: the debt must refill before the next grant.
        need = min(float(tokens), self.capacity)
        if self.tokens + 1e-9 >= need:
            self.tokens -= float(tokens)
            return True
        return False

    def ready_time(self, now: float, tokens: int) -> float:
        """Earliest time at which ``admit(t, tokens)`` could succeed."""
        self._refill(now)
        need = min(float(tokens), self.capacity)
        if self.tokens + 1e-9 >= need:
            return now
        return now + (need - self.tokens) / self.refill_rate


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's QoS contract.

    ``weight`` scales the tenant's fair share (virtual time advances as
    ``tokens / weight``).  ``rate_limit`` / ``burst_tokens`` configure an
    optional token bucket; both ``None`` means unlimited admission.
    """

    name: str
    slo_class: SLOClass = SLO_CLASS_REGISTRY["interactive"]
    weight: float = 1.0
    rate_limit: Optional[float] = None
    burst_tokens: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive when set")
        if self.burst_tokens is not None and self.burst_tokens <= 0:
            raise ValueError("burst_tokens must be positive when set")

    def make_bucket(self) -> Optional[TokenBucket]:
        if self.rate_limit is None:
            return None
        burst = self.burst_tokens if self.burst_tokens is not None else self.rate_limit
        return TokenBucket(capacity=burst, refill_rate=self.rate_limit)


@dataclass(frozen=True)
class TenancyConfig:
    """The full tenant table an engine (or fleet) runs under.

    Frozen and hashable by its tenant tuple so it can ride inside the frozen
    ``ServingConfig``/``ServingScenario`` dataclasses.  Lookups for tenants
    that requests name but the table does not raise
    :class:`~repro.constants.UnknownNameError` listing the valid names —
    the same contract the model/scenario registries follow.
    """

    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")

    @staticmethod
    def of(*specs: TenantSpec) -> "TenancyConfig":
        return TenancyConfig(tenants=tuple(specs))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.tenants)

    def get_tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise UnknownNameError(
            f"unknown tenant {name!r}; available: {sorted(self.names)}"
        )

    def spec_for(self, tenant: Optional[str]) -> Optional[TenantSpec]:
        """Spec for a request's tenant tag; ``None`` tag → no contract."""
        if tenant is None:
            return None
        return self.get_tenant(tenant)

    def slo_for(self, tenant: Optional[str], default: SLO) -> SLO:
        spec = self.spec_for(tenant)
        return default if spec is None else spec.slo_class.slo

    def weight_for(self, tenant: Optional[str]) -> float:
        spec = self.spec_for(tenant)
        return 1.0 if spec is None else spec.weight

    def preemption_cost_for(self, tenant: Optional[str]) -> int:
        spec = self.spec_for(tenant)
        return 0 if spec is None else spec.slo_class.preemption_cost

    def slo_map(self) -> Dict[str, SLO]:
        """Tenant name → that tenant's SLO-class latency targets."""
        return {spec.name: spec.slo_class.slo for spec in self.tenants}

    def make_buckets(self) -> Dict[str, TokenBucket]:
        """Fresh per-tenant token buckets for one engine run."""
        buckets: Dict[str, TokenBucket] = {}
        for spec in self.tenants:
            bucket = spec.make_bucket()
            if bucket is not None:
                buckets[spec.name] = bucket
        return buckets

    def validate_trace(self, tenants: Iterable[Optional[str]]) -> None:
        """Fail fast if any tagged request names a tenant not in the table."""
        for tenant in tenants:
            if tenant is not None:
                self.get_tenant(tenant)
