"""Long-context inference serving simulator.

The serving package is the inference-side dual of the training simulator: it
prices continuous-batching deployments of the paper's models on the same
cost/memory/topology substrates (``repro.model``, ``repro.hardware``) and
reuses the chunked KV cache of Section 5 as the block pool of a paged,
request-granular allocator.

Modules
-------
``workload``
    Deterministic request-trace generators (Poisson, bursty, long-context,
    replay).
``paged_kv``
    Paged KV-cache allocator with block tables and eviction accounting,
    built on :class:`~repro.core.kv_cache.ChunkedKVCache`.
``batcher``
    Continuous batching: token-budget admission, chunked prefill, FCFS and
    priority policies, memory-pressure preemption.
``engine``
    Discrete-event serving loops — colocated, and prefill/decode
    disaggregated with comm-priced KV hand-off.
``metrics``
    TTFT/TPOT/E2E percentiles, goodput under SLO, KV utilization.
``scenarios``
    Named scenario registry (chat, RAG, 512K summarisation, bursty
    long-prompt, mixed fleet) plus the ``run_scenario`` driver.
"""

from .batcher import BatcherConfig, ContinuousBatcher, IterationPlan, Phase, RequestState
from .engine import DisaggregatedEngine, ServingConfig, ServingEngine, ServingResult
from .metrics import SLO, RequestRecord, ServingMetrics, compute_metrics, percentile
from .paged_kv import PagedKVAllocator, PagedKVStats, blocks_for_tokens
from .scenarios import SCENARIO_REGISTRY, ServingScenario, get_scenario, run_scenario
from .workload import (
    Request,
    bursty_trace,
    long_context_trace,
    merge_traces,
    poisson_trace,
    replay_trace,
)

__all__ = [
    "Request",
    "poisson_trace",
    "bursty_trace",
    "long_context_trace",
    "replay_trace",
    "merge_traces",
    "PagedKVAllocator",
    "PagedKVStats",
    "blocks_for_tokens",
    "BatcherConfig",
    "ContinuousBatcher",
    "IterationPlan",
    "Phase",
    "RequestState",
    "ServingConfig",
    "ServingEngine",
    "DisaggregatedEngine",
    "ServingResult",
    "SLO",
    "RequestRecord",
    "ServingMetrics",
    "compute_metrics",
    "percentile",
    "ServingScenario",
    "SCENARIO_REGISTRY",
    "get_scenario",
    "run_scenario",
]
