"""Long-context inference serving simulator.

The serving package is the inference-side dual of the training simulator: it
prices continuous-batching deployments of the paper's models on the same
cost/memory/topology substrates (``repro.model``, ``repro.hardware``) and
reuses the chunked KV cache of Section 5 as the block pool of a paged,
request-granular allocator.

Modules
-------
``workload``
    Deterministic request-trace generators (Poisson, bursty, long-context,
    diurnal/weekly rate curves, replay) plus the shared-prefix families
    (common system prompt, Zipf RAG corpus, agentic prefix trees) whose
    requests declare symbolic ``Request.prefix`` segments.  Every generator
    also has a lazy ``*_stream`` form — the list APIs are thin wrappers —
    so million-request traces never need to be materialized.
``paged_kv``
    Paged KV-cache allocator with block tables and eviction accounting,
    built on :class:`~repro.core.kv_cache.ChunkedKVCache`; optionally backs
    the leading blocks of a request by shared, reference-counted prefix
    blocks (``prefix_caching=True``).
``prefix_cache``
    The shared-prefix index itself: a radix tree of published KV blocks
    with copy-on-write refcounts and LRU eviction of unreferenced blocks.
``batcher``
    Continuous batching: token-budget admission, chunked prefill, FCFS,
    priority and weighted-fair (virtual-token-counter) policies,
    memory-pressure preemption with per-tenant preemption costs,
    token-bucket gating, prefix-cache consultation on admission and block
    publication as prefill commits.
``engine``
    Discrete-event serving loops — colocated, and prefill/decode
    disaggregated with comm-priced KV hand-off.
``metrics``
    TTFT/TPOT/E2E percentiles, goodput under SLO, KV utilization, prefix
    hit rate and saved prefill FLOPs — record-based (``compute_metrics``)
    or bounded-memory streaming (``StreamingMetrics``, P² sketches) — plus
    per-tenant aggregates (``TenantMetrics``) in both paths.
``tenancy``
    Multi-tenant QoS: named SLO classes (interactive / batch /
    best-effort), per-tenant weights and token-bucket admission control
    (``TenancyConfig`` / ``TenantSpec``), consumed by the batcher's
    ``fair`` policy.  Entirely opt-in: ``tenancy=None`` (the default)
    leaves every run byte-identical to a build without this module.
``columnar``
    Struct-of-arrays decode state backing the pure-decode stretch planner's
    vectorized block-growth bound and bulk commit.
``scenarios``
    Named scenario registry (chat, RAG, 512K summarisation, bursty
    long-prompt, mixed fleet, shared-system-prompt, rag-shared-corpus,
    agentic-prefix-tree, plus the streaming ``massive-*`` family) and the
    ``run_scenario`` driver.
"""

from .batcher import BatcherConfig, ContinuousBatcher, IterationPlan, Phase, RequestState
from .columnar import DecodeColumns
from .engine import DisaggregatedEngine, ServingConfig, ServingEngine, ServingResult
from .metrics import (
    SLO,
    RequestRecord,
    ServingMetrics,
    StreamingMetrics,
    TenantMetrics,
    compute_metrics,
    compute_tenant_metrics,
    percentile,
    tenant_report_text,
)
from .paged_kv import PagedKVAllocator, PagedKVStats, blocks_for_tokens
from .prefix_cache import PrefixCache, PrefixCacheStats, prefix_block_keys
from .scenarios import SCENARIO_REGISTRY, ServingScenario, get_scenario, run_scenario
from .tenancy import (
    SLO_CLASS_REGISTRY,
    SLOClass,
    TenancyConfig,
    TenantSpec,
    TokenBucket,
    get_slo_class,
)
from .workload import (
    Request,
    agentic_tree_trace,
    bursty_stream,
    bursty_trace,
    diurnal_stream,
    diurnal_trace,
    long_context_stream,
    long_context_trace,
    merge_traces,
    poisson_stream,
    poisson_trace,
    rag_corpus_stream,
    rag_corpus_trace,
    replay_trace,
    shared_prefix_stream,
    shared_prefix_trace,
    weekly_stream,
    weekly_trace,
)

__all__ = [
    "Request",
    "poisson_trace",
    "poisson_stream",
    "bursty_trace",
    "bursty_stream",
    "long_context_trace",
    "long_context_stream",
    "shared_prefix_trace",
    "shared_prefix_stream",
    "rag_corpus_trace",
    "rag_corpus_stream",
    "diurnal_trace",
    "diurnal_stream",
    "weekly_trace",
    "weekly_stream",
    "agentic_tree_trace",
    "replay_trace",
    "merge_traces",
    "DecodeColumns",
    "PrefixCache",
    "PrefixCacheStats",
    "prefix_block_keys",
    "PagedKVAllocator",
    "PagedKVStats",
    "blocks_for_tokens",
    "BatcherConfig",
    "ContinuousBatcher",
    "IterationPlan",
    "Phase",
    "RequestState",
    "ServingConfig",
    "ServingEngine",
    "DisaggregatedEngine",
    "ServingResult",
    "SLO",
    "RequestRecord",
    "ServingMetrics",
    "StreamingMetrics",
    "TenantMetrics",
    "compute_metrics",
    "compute_tenant_metrics",
    "percentile",
    "tenant_report_text",
    "SLOClass",
    "SLO_CLASS_REGISTRY",
    "get_slo_class",
    "TenantSpec",
    "TenancyConfig",
    "TokenBucket",
    "ServingScenario",
    "SCENARIO_REGISTRY",
    "get_scenario",
    "run_scenario",
]
