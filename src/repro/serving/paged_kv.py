"""Paged KV-cache allocator for serving, built on :class:`ChunkedKVCache`.

Training-side SlimPipe stores keys/values in uniform slice-sized chunks so
that freed chunks are reused verbatim (Section 5).  Serving needs the same
trick at request granularity: a request's KV cache grows one token at a time
during decode, requests finish (or are preempted) in arbitrary order, and a
naive contiguous allocator would fragment immediately.  This module reuses
the training :class:`~repro.core.kv_cache.ChunkedKVCache` as the block pool —
every block is one fixed-size chunk, so the zero-fragmentation reuse
invariants carry over — and adds the serving-side bookkeeping on top:

* a **block table** per request (ordered list of chunk keys),
* token-granular **reserve/append** (blocks are acquired lazily as the
  request's context crosses block boundaries),
* **eviction/preemption** accounting, used by the batcher when decode can no
  longer grow a context and a victim must be re-queued.

Capacity is expressed in blocks; :func:`blocks_for_tokens` converts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..core.kv_cache import ChunkedKVCache, KVCacheStats

__all__ = ["PagedKVAllocator", "PagedKVStats", "blocks_for_tokens"]


def blocks_for_tokens(tokens: int, block_tokens: int) -> int:
    """Number of fixed-size blocks needed to hold ``tokens`` tokens."""
    if tokens < 0:
        raise ValueError("tokens must be non-negative")
    if block_tokens < 1:
        raise ValueError("block_tokens must be >= 1")
    return -(-tokens // block_tokens)


@dataclass(frozen=True)
class PagedKVStats:
    """Point-in-time snapshot of allocator occupancy."""

    total_blocks: int
    used_blocks: int
    stored_tokens: int
    block_tokens: int
    evictions: int
    cache: KVCacheStats

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.used_blocks

    @property
    def block_utilization(self) -> float:
        """Fraction of the block pool currently allocated."""
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def token_utilization(self) -> float:
        """Fraction of pool *token* capacity holding real tokens."""
        capacity = self.total_blocks * self.block_tokens
        return self.stored_tokens / capacity if capacity else 0.0

    @property
    def internal_fragmentation(self) -> float:
        """Unused tail space inside allocated blocks, as a fraction."""
        allocated = self.used_blocks * self.block_tokens
        if allocated == 0:
            return 0.0
        return 1.0 - self.stored_tokens / allocated


class PagedKVAllocator:
    """Block-table allocator multiplexing requests over a chunk pool."""

    def __init__(self, total_blocks: int, block_tokens: int):
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.total_blocks = total_blocks
        self.block_tokens = block_tokens
        self._cache = ChunkedKVCache(capacity_chunks=total_blocks)
        self._tables: Dict[Hashable, List[Tuple[Hashable, int]]] = {}
        self._tokens: Dict[Hashable, int] = {}
        self._stored = 0  # incremental sum of _tokens (int, hence exact)
        self._evictions = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        return self._cache.live_chunks

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._cache.live_chunks

    @property
    def stored_tokens(self) -> int:
        return self._stored

    @property
    def token_utilization(self) -> float:
        """Fraction of pool *token* capacity holding real tokens (O(1))."""
        capacity = self.total_blocks * self.block_tokens
        return self._stored / capacity if capacity else 0.0

    @property
    def evictions(self) -> int:
        return self._evictions

    def tokens_of(self, request_id: Hashable) -> int:
        return self._tokens.get(request_id, 0)

    def blocks_held(self, request_id: Hashable) -> int:
        """Blocks currently backing the request's reservation."""
        return len(self._tables.get(request_id, ()))

    def block_table(self, request_id: Hashable) -> List[Tuple[Hashable, int]]:
        """The request's ordered ``(key, chunk_id)`` block table."""
        return list(self._tables.get(request_id, ()))

    def holds(self, request_id: Hashable) -> bool:
        return request_id in self._tables

    def can_reserve(self, request_id: Hashable, new_total_tokens: int) -> bool:
        """Whether growing the request to ``new_total_tokens`` would fit."""
        have = len(self._tables.get(request_id, ()))
        need = blocks_for_tokens(new_total_tokens, self.block_tokens) - have
        return need <= self.free_blocks

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(self, request_id: Hashable, new_total_tokens: int) -> bool:
        """Grow the request's reservation to cover ``new_total_tokens``.

        Acquires exactly the blocks the growth needs (reusing freed chunks
        through the underlying cache) and returns ``True``; returns ``False``
        without side effects when the pool cannot satisfy the growth — the
        batcher then either waits or preempts a victim.
        """
        if new_total_tokens < 0:
            raise ValueError("new_total_tokens must be non-negative")
        current = self._tokens.get(request_id, 0)
        if new_total_tokens < current:
            raise ValueError(
                f"cannot shrink reservation of {request_id!r} "
                f"({current} -> {new_total_tokens} tokens); use release()"
            )
        if not self.can_reserve(request_id, new_total_tokens):
            return False
        table = self._tables.setdefault(request_id, [])
        target_blocks = blocks_for_tokens(new_total_tokens, self.block_tokens)
        while len(table) < target_blocks:
            key = (request_id, len(table))
            chunk = self._cache.acquire(key)
            table.append((key, chunk.chunk_id))
        self._tokens[request_id] = new_total_tokens
        self._stored += new_total_tokens - current
        return True

    def advance_decode_step(self, request_ids: List[Hashable]) -> None:
        """Grow every reservation by exactly one token (one bulk decode step).

        Equivalent to calling :meth:`reserve` with ``tokens_of(rid) + 1`` for
        each id, but without the per-call admission arithmetic: a block is
        acquired only when the one-token growth crosses a block boundary.
        The caller (the engines' decode fast-forward path) must have verified
        the pool can absorb the growth; an oversubscribed step therefore
        raises ``MemoryError`` from the chunk pool instead of returning
        ``False``.
        """
        tokens = self._tokens
        tables = self._tables
        block_tokens = self.block_tokens
        for request_id in request_ids:
            grown = tokens[request_id] + 1
            tokens[request_id] = grown
            if (grown - 1) % block_tokens == 0:
                table = tables[request_id]
                key = (request_id, len(table))
                chunk = self._cache.acquire(key)
                table.append((key, chunk.chunk_id))
        self._stored += len(request_ids)

    def release(self, request_id: Hashable) -> int:
        """Free every block of a finished request; returns blocks freed."""
        table = self._tables.pop(request_id, None)
        if table is None:
            return 0
        for key, _ in table:
            self._cache.release(key)
        self._stored -= self._tokens.pop(request_id, 0)
        return len(table)

    def evict(self, request_id: Hashable) -> int:
        """Free a *victim's* blocks (preemption); counted separately."""
        freed = self.release(request_id)
        if freed:
            self._evictions += 1
        return freed

    def clear(self) -> None:
        for request_id in list(self._tables):
            self.release(request_id)

    # ------------------------------------------------------------------
    def stats(self) -> PagedKVStats:
        return PagedKVStats(
            total_blocks=self.total_blocks,
            used_blocks=self.used_blocks,
            stored_tokens=self.stored_tokens,
            block_tokens=self.block_tokens,
            evictions=self._evictions,
            cache=self._cache.stats(),
        )
