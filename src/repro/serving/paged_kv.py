"""Paged KV-cache allocator for serving, built on :class:`ChunkedKVCache`.

Training-side SlimPipe stores keys/values in uniform slice-sized chunks so
that freed chunks are reused verbatim (Section 5).  Serving needs the same
trick at request granularity: a request's KV cache grows one token at a time
during decode, requests finish (or are preempted) in arbitrary order, and a
naive contiguous allocator would fragment immediately.  This module reuses
the training :class:`~repro.core.kv_cache.ChunkedKVCache` as the block pool —
every block is one fixed-size chunk, so the zero-fragmentation reuse
invariants carry over — and adds the serving-side bookkeeping on top:

* a **block table** per request (ordered list of chunk keys),
* token-granular **reserve/append** (blocks are acquired lazily as the
  request's context crosses block boundaries),
* **eviction/preemption** accounting, used by the batcher when decode can no
  longer grow a context and a victim must be re-queued,
* optional **shared-prefix caching** (``prefix_caching=True``): the leading
  blocks of a request's context can reference blocks published to a
  :class:`~repro.serving.prefix_cache.PrefixCache` radix tree instead of
  private copies.  Sharing is copy-on-write at block granularity (decode
  tokens and uncached prompt tails always land in private blocks), shared
  blocks are reference-counted, and unreferenced shared blocks stay resident
  until the pool actually needs the space — at which point :meth:`reserve`
  reclaims them least-recently-used first, before any live request is
  preempted.  With ``prefix_caching=False`` (the default) every code path is
  byte-identical to the pre-prefix allocator.

Capacity is expressed in blocks; :func:`blocks_for_tokens` converts.
``stored_tokens`` counts *physical* tokens: a shared block's tokens count
once no matter how many requests reference it, so KV-utilization metrics
keep meaning memory occupancy (logical context can exceed capacity when
sharing is high — that surplus is exactly the effective-capacity gain the
fleet autoscaler observes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.kv_cache import ChunkedKVCache, KVCacheStats
from .prefix_cache import PrefixCache, PrefixCacheStats

__all__ = ["PagedKVAllocator", "PagedKVStats", "blocks_for_tokens"]


def blocks_for_tokens(tokens: int, block_tokens: int) -> int:
    """Number of fixed-size blocks needed to hold ``tokens`` tokens."""
    if tokens < 0:
        raise ValueError("tokens must be non-negative")
    if block_tokens < 1:
        raise ValueError("block_tokens must be >= 1")
    return -(-tokens // block_tokens)


@dataclass(frozen=True)
class PagedKVStats:
    """Point-in-time snapshot of allocator occupancy."""

    total_blocks: int
    used_blocks: int
    stored_tokens: int
    block_tokens: int
    evictions: int
    cache: KVCacheStats
    prefix: Optional[PrefixCacheStats] = None

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.used_blocks

    @property
    def block_utilization(self) -> float:
        """Fraction of the block pool currently allocated."""
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def token_utilization(self) -> float:
        """Fraction of pool *token* capacity holding real tokens."""
        capacity = self.total_blocks * self.block_tokens
        return self.stored_tokens / capacity if capacity else 0.0

    @property
    def internal_fragmentation(self) -> float:
        """Unused tail space inside allocated blocks, as a fraction."""
        allocated = self.used_blocks * self.block_tokens
        if allocated == 0:
            return 0.0
        return 1.0 - self.stored_tokens / allocated


class PagedKVAllocator:
    """Block-table allocator multiplexing requests over a chunk pool."""

    def __init__(self, total_blocks: int, block_tokens: int, prefix_caching: bool = False):
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.total_blocks = total_blocks
        self.block_tokens = block_tokens
        self._cache = ChunkedKVCache(capacity_chunks=total_blocks)
        self._tables: Dict[Hashable, List[Tuple[Hashable, int]]] = {}
        self._tokens: Dict[Hashable, int] = {}
        # Monotonic per-request private-block key counter: publication pops
        # leading table entries, so ``len(table)`` would recycle keys.  With
        # prefix caching off the counter always equals ``len(table)``.
        self._next_key: Dict[Hashable, int] = {}
        self._stored = 0  # incremental physical token count (int, hence exact)
        self._evictions = 0
        self.prefix: Optional[PrefixCache] = PrefixCache() if prefix_caching else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def prefix_caching(self) -> bool:
        return self.prefix is not None

    @property
    def used_blocks(self) -> int:
        return self._cache.live_chunks

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._cache.live_chunks

    @property
    def reclaimable_blocks(self) -> int:
        """Unreferenced shared prefix blocks :meth:`reserve` may reclaim."""
        return self.prefix.evictable_blocks if self.prefix is not None else 0

    @property
    def stored_tokens(self) -> int:
        return self._stored

    @property
    def token_utilization(self) -> float:
        """Fraction of pool *token* capacity holding real tokens (O(1))."""
        capacity = self.total_blocks * self.block_tokens
        return self._stored / capacity if capacity else 0.0

    @property
    def evictions(self) -> int:
        return self._evictions

    def tokens_of(self, request_id: Hashable) -> int:
        return self._tokens.get(request_id, 0)

    def blocks_held(self, request_id: Hashable) -> int:
        """Blocks backing the request's reservation (shared refs + private)."""
        held = len(self._tables.get(request_id, ()))
        if self.prefix is not None:
            held += self.prefix.refs_of(request_id)
        return held

    def block_table(self, request_id: Hashable) -> List[Tuple[Hashable, int]]:
        """The request's ordered private ``(key, chunk_id)`` block table."""
        return list(self._tables.get(request_id, ()))

    def holds(self, request_id: Hashable) -> bool:
        if request_id in self._tables:
            return True
        return self.prefix is not None and self.prefix.refs_of(request_id) > 0

    def can_reserve(self, request_id: Hashable, new_total_tokens: int) -> bool:
        """Whether growing the request to ``new_total_tokens`` would fit.

        Counts unreferenced shared prefix blocks as reclaimable space —
        :meth:`reserve` evicts them on demand before giving up.
        """
        need = blocks_for_tokens(new_total_tokens, self.block_tokens) - self.blocks_held(
            request_id
        )
        return need <= self.free_blocks + self.reclaimable_blocks

    # ------------------------------------------------------------------
    # Shared-prefix operations (no-ops when ``prefix_caching=False``)
    # ------------------------------------------------------------------
    def match_prefix(self, keys: Sequence[Hashable]) -> int:
        """Read-only longest-prefix match over the shared-block index."""
        if self.prefix is None or not keys:
            return 0
        return self.prefix.match(keys)

    def acquire_prefix(
        self, request_id: Hashable, keys: Sequence[Hashable], max_blocks: Optional[int] = None
    ) -> int:
        """Reference the leading cached blocks of ``keys`` for a fresh request.

        Must run before the request's first :meth:`reserve` (its context is
        still empty); the matched span becomes the request's leading blocks
        and its token reservation starts at ``matched * block_tokens``.
        ``max_blocks`` caps the hit (callers keep at least one prompt token
        uncached so the request still samples its first output token).
        Returns the number of blocks referenced.
        """
        if self.prefix is None or not keys:
            return 0
        if self.holds(request_id) or request_id in self._tokens:
            raise ValueError(
                f"acquire_prefix({request_id!r}) requires an empty reservation"
            )
        if max_blocks is not None:
            keys = keys[: max(0, max_blocks)]
        matched = self.prefix.acquire(request_id, keys)
        if matched:
            # The referenced tokens are already resident (counted when first
            # published), so the physical store does not change.
            self._tokens[request_id] = matched * self.block_tokens
        return matched

    def publish_prefix(
        self, request_id: Hashable, keys: Sequence[Hashable], prefilled_tokens: int
    ) -> int:
        """Publish the request's freshly prefilled leading blocks for sharing.

        Called after prefill progress: every not-yet-shared prefix block now
        fully covered by ``prefilled_tokens`` is handed over to the prefix
        tree — the private chunk is re-homed under the content key, or freed
        when a concurrent twin already published the same block (dedup).
        Returns the number of blocks published or deduplicated.
        """
        cache = self.prefix
        if cache is None or not keys:
            return 0
        refs = cache.refs_of(request_id)
        if refs >= len(keys):
            return 0
        table = self._tables.get(request_id)
        block_tokens = self.block_tokens
        moved = 0
        while refs < len(keys) and (refs + 1) * block_tokens <= prefilled_tokens:
            if not table:
                break  # defensive: nothing private left to publish
            private_key, _ = table[0]
            content_key = keys[refs]
            chunk_key = ("pfx", content_key)
            if cache.publish(request_id, content_key, chunk_key):
                self._cache.rename(private_key, chunk_key)
            else:
                # A twin published this block first; our copy is redundant.
                self._cache.release(private_key)
                self._stored -= block_tokens
            table.pop(0)
            refs += 1
            moved += 1
        return moved

    def _reclaim(self, blocks: int) -> int:
        """Evict unreferenced shared blocks to free at least ``blocks``."""
        if self.prefix is None:
            return 0
        freed = self.prefix.evict(blocks)
        for chunk_key in freed:
            self._cache.release(chunk_key)
        self._stored -= len(freed) * self.block_tokens
        return len(freed)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(self, request_id: Hashable, new_total_tokens: int) -> bool:
        """Grow the request's reservation to cover ``new_total_tokens``.

        Acquires exactly the blocks the growth needs (reusing freed chunks
        through the underlying cache, reclaiming unreferenced shared prefix
        blocks LRU-first when the pool is short) and returns ``True``;
        returns ``False`` without side effects when the pool cannot satisfy
        the growth — the batcher then either waits or preempts a victim.
        """
        if new_total_tokens < 0:
            raise ValueError("new_total_tokens must be non-negative")
        current = self._tokens.get(request_id, 0)
        if new_total_tokens < current:
            raise ValueError(
                f"cannot shrink reservation of {request_id!r} "
                f"({current} -> {new_total_tokens} tokens); use release()"
            )
        refs = self.prefix.refs_of(request_id) if self.prefix is not None else 0
        table = self._tables.get(request_id)
        have = len(table) if table is not None else 0
        target_private = blocks_for_tokens(new_total_tokens, self.block_tokens) - refs
        need = target_private - have
        if need > self.free_blocks:
            if need > self.free_blocks + self.reclaimable_blocks:
                return False
            self._reclaim(need - self.free_blocks)
            if need > self.free_blocks:
                return False  # defensive: reclaim came up short
        if table is None:
            table = self._tables.setdefault(request_id, [])
        next_key = self._next_key.get(request_id, 0)
        while len(table) < target_private:
            key = (request_id, next_key)
            next_key += 1
            chunk = self._cache.acquire(key)
            table.append((key, chunk.chunk_id))
        self._next_key[request_id] = next_key
        self._tokens[request_id] = new_total_tokens
        self._stored += new_total_tokens - current
        return True

    def advance_decode_step(self, request_ids: List[Hashable]) -> None:
        """Grow every reservation by exactly one token (one bulk decode step).

        Equivalent to calling :meth:`reserve` with ``tokens_of(rid) + 1`` for
        each id, but without the per-call admission arithmetic: a block is
        acquired only when the one-token growth crosses a block boundary.
        The caller (the engines' decode fast-forward path) must have verified
        the pool can absorb the growth without reclaiming shared blocks; an
        oversubscribed step therefore raises ``MemoryError`` from the chunk
        pool instead of returning ``False``.
        """
        tokens = self._tokens
        tables = self._tables
        next_keys = self._next_key
        block_tokens = self.block_tokens
        for request_id in request_ids:
            grown = tokens[request_id] + 1
            tokens[request_id] = grown
            if (grown - 1) % block_tokens == 0:
                next_key = next_keys.get(request_id, 0)
                key = (request_id, next_key)
                next_keys[request_id] = next_key + 1
                chunk = self._cache.acquire(key)
                tables[request_id].append((key, chunk.chunk_id))
        self._stored += len(request_ids)

    def bulk_reserve_decode(
        self,
        request_ids: Sequence[Hashable],
        new_totals: Sequence[int],
        extra_blocks: Sequence[int],
    ) -> None:
        """Grow many decode reservations at once (end of a coalesced stretch).

        Equivalent to calling :meth:`reserve` once per request in order —
        same chunk-acquisition order, same sequential private keys, same
        integer ``stored_tokens`` bookkeeping — but with the per-call
        admission arithmetic (block targets, free-pool checks, reclaim
        probes) hoisted into the caller's vectorized stretch plan
        (:meth:`~repro.serving.columnar.DecodeColumns.commit_plan`).  The
        caller must have verified the pool absorbs the total growth without
        reclaiming shared blocks; an oversubscribed bulk update therefore
        raises ``MemoryError`` from the chunk pool instead of returning
        ``False``.
        """
        tokens = self._tokens
        tables = self._tables
        next_keys = self._next_key
        cache = self._cache
        grown = 0
        for request_id, new_total, extra in zip(request_ids, new_totals, extra_blocks):
            grown += new_total - tokens[request_id]
            tokens[request_id] = new_total
            if extra > 0:
                table = tables[request_id]
                next_key = next_keys.get(request_id, 0)
                for _ in range(extra):
                    key = (request_id, next_key)
                    next_key += 1
                    chunk = cache.acquire(key)
                    table.append((key, chunk.chunk_id))
                next_keys[request_id] = next_key
        self._stored += grown

    def release(self, request_id: Hashable) -> int:
        """Free a finished request's blocks; returns blocks released.

        Private blocks return to the pool; shared prefix references are
        dropped (the blocks stay resident for future hits until the pool
        reclaims them).  The return value counts both.
        """
        table = self._tables.pop(request_id, None)
        refs = 0
        if self.prefix is not None:
            refs = self.prefix.release(request_id)
        if table is None and refs == 0:
            return 0
        for key, _ in table or ():
            self._cache.release(key)
        self._stored -= self._tokens.pop(request_id, 0) - refs * self.block_tokens
        self._next_key.pop(request_id, None)
        return len(table or ()) + refs

    def evict(self, request_id: Hashable) -> int:
        """Free a *victim's* blocks (preemption); counted separately."""
        freed = self.release(request_id)
        if freed:
            self._evictions += 1
        return freed

    def clear(self) -> None:
        for request_id in list(self._tables):
            self.release(request_id)
        if self.prefix is not None:
            for request_id in self.prefix.referenced_requests():
                self.release(request_id)
            self._reclaim(self.prefix.evictable_blocks)

    # ------------------------------------------------------------------
    def stats(self) -> PagedKVStats:
        return PagedKVStats(
            total_blocks=self.total_blocks,
            used_blocks=self.used_blocks,
            stored_tokens=self.stored_tokens,
            block_tokens=self.block_tokens,
            evictions=self._evictions,
            cache=self._cache.stats(),
            prefix=self.prefix.stats() if self.prefix is not None else None,
        )
