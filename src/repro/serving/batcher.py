"""Continuous-batching scheduler with chunked prefill and preemption.

The batcher owns the request lifecycle inside one GPU pool.  Every engine
iteration it produces an :class:`IterationPlan` — the decode steps plus the
prefill chunks the iteration executes — under three constraints:

* a **token budget**: decode tokens are planned first (one per running
  request), then prefill chunks fill the remaining ``prefill_budget`` the
  engine hands in (the engine shrinks that budget below
  ``max_batch_tokens`` when protecting the TPOT SLO of running decodes);
* **paged-KV admission**: a request is only admitted, and a context only
  grown, when the :class:`~repro.serving.paged_kv.PagedKVAllocator` can
  reserve the blocks; when a decode step cannot grow its context the
  newest / lowest-priority running request is **preempted** — its blocks are
  evicted and it re-enters the queue to re-prefill its full context;
* an **admission policy**: ``fcfs`` (arrival order, preempted requests
  re-queued at the front), ``priority`` (lowest ``Request.priority``
  first, arrival time as tie-break), or ``fair`` — weighted fair queueing
  across tenants by **virtual token counters**: every tenant accrues
  virtual time proportional to the tokens admitted on its behalf divided by
  its fair-share weight, and admission always picks the waiting request of
  the tenant with the smallest counter (arrival time, then request id, as
  tie-breaks).  A tenant idle at enqueue time has its counter lifted to the
  minimum over the active tenants, so idleness banks no credit.  With a
  single tenant (or no tenant tags at all) every request shares one counter
  and ``fair`` degenerates to exact FCFS order — the byte-identity property
  ``tests/test_tenancy_properties.py`` pins down.

When a :class:`~repro.serving.tenancy.TenancyConfig` is installed, two more
mechanisms switch on: per-tenant **token-bucket admission control** (a
request is only admitted once its tenant's bucket holds its total token
footprint; the ``fair`` policy skips blocked tenants, ``fcfs``/``priority``
block at the head) and **preemption-cost ordering** (victims are chosen
lowest SLO-class cost first, so best-effort work is evicted before batch,
and batch before interactive).

Token accounting
----------------
The batcher maintains three counters that the serving tests pin down as an
exact conservation law once a trace has fully drained::

    tokens_admitted == tokens_prefilled + tokens_preempted_requeued

``tokens_admitted`` grows by a request's outstanding prefill target at every
(re-)admission, ``tokens_prefilled`` by every prefill chunk executed
(including work later discarded by a preemption), and
``tokens_preempted_requeued`` by the admitted-but-not-yet-prefilled remainder
a preemption sends back to the queue.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..obs import events as obs_events
from ..obs.events import EventRecorder
from .metrics import RequestRecord
from .paged_kv import PagedKVAllocator, blocks_for_tokens
from .prefix_cache import prefix_block_keys
from .tenancy import TenancyConfig, TokenBucket
from .workload import Request

__all__ = [
    "Phase",
    "RequestState",
    "BatcherConfig",
    "IterationPlan",
    "ContinuousBatcher",
]


class Phase(Enum):
    """Lifecycle phase of a request inside one pool."""

    WAITING = "waiting"
    PREFILL = "prefill"
    DECODE = "decode"
    HANDOFF = "handoff"  # prefill-only pool: context ready for transfer
    FINISHED = "finished"


@dataclass(slots=True, eq=False)
class RequestState:
    """Mutable per-request scheduling state (one per request per pool).

    Slotted and compared by identity: the schedulers track these objects in
    queues and plans (``state in self.running`` means *this* state, never a
    value-equal twin), and the engines touch every running state on every
    iteration, so attribute access and membership tests are on the hot path.
    """

    record: RequestRecord
    phase: Phase = Phase.WAITING
    prefill_target: int = 0
    prefilled: int = 0
    decoded: int = 0
    admission_index: int = -1
    pool_arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.prefill_target == 0:
            self.prefill_target = self.request.prompt_tokens
        self.pool_arrival = self.pool_arrival or self.request.arrival_time

    @property
    def request(self) -> Request:
        return self.record.request

    @property
    def context_tokens(self) -> int:
        """Tokens whose keys/values must be live before the next step."""
        return self.request.prompt_tokens + self.decoded

    @property
    def prefill_remaining(self) -> int:
        return self.prefill_target - self.prefilled


@dataclass(frozen=True)
class BatcherConfig:
    """Static knobs of the continuous batcher."""

    max_batch_tokens: int = 8192
    prefill_chunk_tokens: int = 4096
    min_prefill_chunk_tokens: int = 128
    max_running_requests: int = 128
    policy: str = "fcfs"
    admission_watermark: float = 0.02

    def __post_init__(self) -> None:
        if self.max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1")
        if not 1 <= self.min_prefill_chunk_tokens <= self.prefill_chunk_tokens:
            raise ValueError("need 1 <= min_prefill_chunk <= prefill_chunk")
        if self.max_running_requests < 1:
            raise ValueError("max_running_requests must be >= 1")
        if self.policy not in ("fcfs", "priority", "fair"):
            raise ValueError(
                f"unknown policy {self.policy!r}; use 'fcfs', 'priority' or 'fair'"
            )
        if not 0.0 <= self.admission_watermark < 1.0:
            raise ValueError("admission_watermark must be in [0, 1)")


@dataclass(slots=True, eq=False)
class IterationPlan:
    """The work one engine iteration executes."""

    prefill: List[Tuple[RequestState, int]] = field(default_factory=list)
    decode: List[RequestState] = field(default_factory=list)

    @property
    def prefill_tokens(self) -> int:
        return sum(chunk for _, chunk in self.prefill)

    @property
    def batch_tokens(self) -> int:
        return self.prefill_tokens + len(self.decode)

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode

    def drop(self, state: RequestState) -> None:
        """Remove a (just-preempted) request from the plan."""
        self.prefill = [(s, c) for s, c in self.prefill if s is not state]
        self.decode = [s for s in self.decode if s is not state]


class ContinuousBatcher:
    """Token-budget continuous batching over a paged KV allocator.

    ``prefill_only`` pools stop requests at prefill completion (phase
    ``HANDOFF``); ``decode_only`` pools admit requests whose context was
    prefilled elsewhere, reserving KV for the whole transferred context.
    """

    def __init__(
        self,
        allocator: PagedKVAllocator,
        config: Optional[BatcherConfig] = None,
        prefill_only: bool = False,
        decode_only: bool = False,
        prefill_flops_of: Optional[Callable[[int, int], float]] = None,
        tenancy: Optional[TenancyConfig] = None,
    ):
        if prefill_only and decode_only:
            raise ValueError("a pool cannot be both prefill_only and decode_only")
        self.allocator = allocator
        self.config = config or BatcherConfig()
        self.prefill_only = prefill_only
        self.decode_only = decode_only
        # Tenancy is fully optional: with ``tenancy=None`` and no "fair"
        # policy, every structure below stays empty and the scheduler is
        # byte-identical to the pre-tenancy batcher.  Token buckets gate the
        # *entry* pool only — in a disaggregated deployment the decode pool
        # receives contexts already admitted (and charged) upstream.
        self.tenancy = tenancy
        self._buckets: Dict[str, TokenBucket] = (
            tenancy.make_buckets() if tenancy is not None and not decode_only else {}
        )
        # Virtual token counters of the fair policy, keyed by tenant name
        # (``None`` groups untagged requests into one shared counter).
        self._virtual_tokens: Dict[Optional[str], float] = {}
        # Prefix caching is the allocator's capability; the batcher merely
        # consults it on admission and publishes blocks as prefill commits.
        self.prefix_caching = allocator.prefix_caching and not decode_only
        # Prices one prefill chunk's layer FLOPs at a KV offset — installed
        # by the owning pool so the batcher can meter executed and
        # cache-skipped prefill work without knowing the model.
        self._prefill_flops_of = prefill_flops_of
        # ``waiting`` preserves exact queue order (arrivals append, preempted
        # victims re-enter at the front) but is a deque so FCFS admission pops
        # the head in O(1) instead of shifting the whole backlog.  Under the
        # priority policy a parallel heap keyed on the static admission key
        # replaces the former O(n) min-scan per admission; the heap mirrors
        # the deque's membership exactly (pushed on enqueue/requeue, popped
        # on activation), so its top is always a live waiting request.
        self.waiting: Deque[RequestState] = deque()
        self._priority_heap: List[Tuple[int, float, int, RequestState]] = []
        self._admissions = 0
        self.running: List[RequestState] = []
        self.tokens_admitted = 0
        self.tokens_prefilled = 0
        self.tokens_preempted_requeued = 0
        self.preemptions = 0
        # Shared-prefix accounting (all zero when prefix caching is off).
        self.prefix_hit_tokens = 0
        self.prefix_hit_requests = 0
        self.prefix_flops_saved = 0.0
        self.prefill_flops_executed = 0.0
        # Observability: the owning pool/engine installs the recorder, keeps
        # ``obs_track`` at this pool's track id (pool device or fleet replica
        # id) and advances ``now`` to the current iteration's planning time
        # before calling into the batcher.  All three stay inert when no
        # recorder is configured.
        self.obs: Optional[EventRecorder] = None
        self.obs_track = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def enqueue(self, state: RequestState) -> None:
        # The largest reservation the request will ever ask for: the final
        # decode step reserves prompt + (output - 1) tokens (the token being
        # generated occupies no KV slot until the step after).
        max_context = state.request.prompt_tokens + state.request.output_tokens - 1
        if blocks_for_tokens(max_context, self.allocator.block_tokens) > self.allocator.total_blocks:
            raise ValueError(
                f"request {state.request.request_id} needs {max_context} context "
                f"tokens, exceeding the pool's KV capacity of "
                f"{self.allocator.total_blocks * self.allocator.block_tokens} tokens"
            )
        if self.tenancy is not None and state.request.tenant is not None:
            # Fail fast (UnknownNameError, listing valid names) when a trace
            # tags a tenant the installed contract table does not know.
            self.tenancy.get_tenant(state.request.tenant)
        state.phase = Phase.WAITING
        if self.config.policy == "fair":
            self._lift_virtual(state.request.tenant)
        self.waiting.append(state)
        self._push_waiting(state)

    def _push_waiting(self, state: RequestState) -> None:
        if self.config.policy == "priority":
            heapq.heappush(
                self._priority_heap,
                (state.request.priority, state.pool_arrival, state.request.request_id, state),
            )

    def _lift_virtual(self, tenant: Optional[str]) -> None:
        """No credit for idleness: a returning tenant starts at the floor.

        Called before the arriving request joins ``waiting``.  If the tenant
        already has work in the pool its counter is live; otherwise it is
        lifted to the minimum counter over the currently active tenants, so a
        tenant that sat out an hour cannot monopolise the pool to "catch up".
        """
        active = {s.request.tenant for s in self.waiting}
        active.update(s.request.tenant for s in self.running)
        if tenant in active or not active:
            return
        floor = min(self._virtual_tokens.get(t, 0.0) for t in active)
        if self._virtual_tokens.get(tenant, 0.0) < floor:
            self._virtual_tokens[tenant] = floor

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    def tenant_queue_depths(self) -> Tuple[Tuple[str, int], ...]:
        """Waiting-queue depth per tagged tenant, name-sorted.

        Untagged requests are excluded, so an anonymous workload reports an
        empty tuple — the shape fleet routers/autoscalers see today.  The
        scan only runs once tenancy (or fair scheduling) is switched on, so
        snapshot-heavy anonymous fleets pay nothing for it.
        """
        if self.tenancy is None and self.config.policy != "fair":
            return ()
        counts: Dict[str, int] = {}
        for state in self.waiting:
            tenant = state.request.tenant
            if tenant is not None:
                counts[tenant] = counts.get(tenant, 0) + 1
        return tuple(sorted(counts.items()))

    def _next_waiting_index(self) -> int:
        if self.config.policy == "priority":
            # The heap top is the same request the former full scan selected
            # (the admission key is total — request ids are unique).  Finding
            # its deque position is still a linear pass, but an identity scan
            # at C speed instead of building and comparing a Python key tuple
            # per waiting request.
            return self.waiting.index(self._priority_heap[0][3])
        return 0

    def _bucket_ready(self, state: RequestState) -> bool:
        """True when the tenant's token bucket (if any) admits this request.

        Only a request's *first* admission is rate-limited; a preempted
        request was already charged, and re-prefill work is the scheduler's
        fault, not the tenant's.
        """
        if not self._buckets or state.admission_index >= 0:
            return True
        bucket = self._buckets.get(state.request.tenant)
        if bucket is None:
            return True
        return bucket.ready_time(self.now, state.request.total_tokens) <= self.now + 1e-12

    def _select_admission_index(self) -> Optional[int]:
        """Pick the next waiting request under the configured policy.

        Returns ``None`` when admission is blocked by token buckets: the
        fair policy scans past blocked tenants (they hold no head-of-line
        claim), while ``fcfs``/``priority`` keep their strict order and stall
        until the head's bucket refills.
        """
        if self.config.policy == "fair":
            best: Optional[int] = None
            best_key: Optional[Tuple[float, float, int]] = None
            for index, state in enumerate(self.waiting):
                if not self._bucket_ready(state):
                    continue
                key = (
                    self._virtual_tokens.get(state.request.tenant, 0.0),
                    state.pool_arrival,
                    state.request.request_id,
                )
                if best_key is None or key < best_key:
                    best, best_key = index, key
            return best
        index = self._next_waiting_index()
        return index if self._bucket_ready(self.waiting[index]) else None

    def next_admission_time(self) -> Optional[float]:
        """Earliest time a bucket-blocked waiting request becomes admissible.

        ``None`` when no waiting request is blocked purely by its tenant's
        token bucket — the engine uses this to jump simulated time across a
        rate-limit stall instead of declaring the pool wedged.  Policy-aware:
        under ``fcfs``/``priority`` only the head-of-line request can be
        admitted, so only *its* bucket matters — a later request that happens
        to be grantable right now does not unblock the queue.
        """
        if not self._buckets or not self.waiting:
            return None
        if self.config.policy != "fair":
            state = self.waiting[self._next_waiting_index()]
            if state.admission_index >= 0:
                return None
            bucket = self._buckets.get(state.request.tenant)
            if bucket is None:
                return None
            return bucket.ready_time(self.now, state.request.total_tokens)
        best: Optional[float] = None
        for state in self.waiting:
            if state.admission_index >= 0:
                continue
            bucket = self._buckets.get(state.request.tenant)
            if bucket is None:
                continue
            ready = bucket.ready_time(self.now, state.request.total_tokens)
            if best is None or ready < best:
                best = ready
        return best

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _preempt_victim(self, plan: IterationPlan) -> Optional[RequestState]:
        """Evict the newest / lowest-priority running request to free blocks.

        With a tenancy config, SLO-class preemption cost outranks admission
        recency: the cheapest class (best-effort, cost 0) is sacrificed
        first, interactive (cost 2) last.  Untagged requests cost 0, so a
        run without tenant tags keeps the historical victim order exactly.
        """
        if not self.running:
            return None
        tenancy = self.tenancy
        if tenancy is None:
            victim = max(
                self.running,
                key=lambda s: (s.request.priority, s.admission_index),
            )
        else:
            victim = max(
                self.running,
                key=lambda s: (
                    s.request.priority,
                    -tenancy.preemption_cost_for(s.request.tenant),
                    s.admission_index,
                ),
            )
        self.running.remove(victim)
        plan.drop(victim)
        self.allocator.evict(victim.request.request_id)
        self.preemptions += 1
        victim.record.preemptions += 1
        self.tokens_preempted_requeued += victim.prefill_remaining
        prefilled_lost = victim.prefilled
        # The whole context (prompt plus any already-generated tokens) must be
        # re-prefilled on resume; tokens already delivered stay delivered.
        victim.prefill_target = victim.context_tokens
        victim.prefilled = 0
        victim.phase = Phase.WAITING
        self.waiting.appendleft(victim)
        self._push_waiting(victim)
        if self.obs is not None:
            self.obs.emit(
                self.now, obs_events.PREEMPT, self.obs_track,
                victim.request.request_id,
                (prefilled_lost, victim.decoded, victim.prefill_target),
            )
        return victim

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, prefill_budget: Optional[int] = None) -> IterationPlan:
        """Select this iteration's decode steps, prefill chunks and admissions."""
        cfg = self.config
        plan = IterationPlan()
        budget = cfg.max_batch_tokens

        # 1. Decode steps: one token per running decode request, growing its
        #    context by one block when needed; preempt on memory pressure.
        for state in list(self.running):
            if state.phase is not Phase.DECODE or budget <= 0:
                continue
            if state not in self.running:  # evicted by an earlier preemption
                continue
            while not self.allocator.reserve(state.request.request_id, state.context_tokens):
                victim = self._preempt_victim(plan)
                if victim is None or victim is state:
                    break
            if state in self.running:
                plan.decode.append(state)
                budget -= 1

        if self.decode_only:
            self._admit(plan, budget)
            return plan

        # 2. Prefill chunks for already-running requests, oldest first.
        if prefill_budget is not None:
            budget = min(budget, max(prefill_budget, cfg.min_prefill_chunk_tokens))
        for state in self.running:
            if state.phase is not Phase.PREFILL or budget <= 0:
                continue
            chunk = min(budget, cfg.prefill_chunk_tokens, state.prefill_remaining)
            if chunk <= 0:
                continue
            if not self.allocator.reserve(state.request.request_id, state.prefilled + chunk):
                continue  # wait for blocks to free up
            plan.prefill.append((state, chunk))
            self._meter_prefill(chunk, state.prefilled)
            budget -= chunk

        # 3. Admission of new requests with the remaining budget.
        self._admit(plan, budget)
        return plan

    def _admit(self, plan: IterationPlan, budget: int) -> None:
        cfg = self.config
        watermark_blocks = int(cfg.admission_watermark * self.allocator.total_blocks)
        while self.waiting and len(self.running) < cfg.max_running_requests:
            index = self._select_admission_index()
            if index is None:
                break
            state = self.waiting[index]
            rid = state.request.request_id
            if self.decode_only:
                # Context was prefilled elsewhere; reserve it wholesale.  A
                # preempted context is re-fetched, not recomputed: marking it
                # prefilled keeps every conservation-law counter at zero in
                # this pool (no prefill work, no admitted prefill target),
                # even across repeated preemptions.  Each admitted request
                # decodes one token this iteration, so it spends one token
                # of batch budget like the running decodes above.
                if budget <= 0:
                    break
                if not self.allocator.reserve(rid, state.context_tokens):
                    break
                state.prefilled = state.prefill_target
                self._activate(state, index, Phase.DECODE)
                plan.decode.append(state)
                budget -= 1
                continue
            if budget <= 0:
                break
            if self.prefix_caching and state.prefilled == 0 and state.request.prefix:
                self._consult_prefix_cache(state)
            chunk = min(budget, cfg.prefill_chunk_tokens, state.prefill_remaining)
            if chunk <= 0:
                break
            need_blocks = blocks_for_tokens(
                state.prefilled + chunk, self.allocator.block_tokens
            ) - self.allocator.blocks_held(rid)
            free = self.allocator.free_blocks + self.allocator.reclaimable_blocks
            if free - need_blocks < watermark_blocks:
                break
            if not self.allocator.reserve(rid, state.prefilled + chunk):
                break
            self._activate(state, index, Phase.PREFILL)
            self.tokens_admitted += state.prefill_remaining
            plan.prefill.append((state, chunk))
            self._meter_prefill(chunk, state.prefilled)
            budget -= chunk

    def _meter_prefill(self, chunk: int, kv_offset: int) -> None:
        self.tokens_prefilled += chunk
        if self._prefill_flops_of is not None:
            self.prefill_flops_executed += self._prefill_flops_of(chunk, kv_offset)

    def _consult_prefix_cache(self, state: RequestState) -> None:
        """Skip prefill for the request's cached prefix blocks (admission).

        The longest cached run of the request's prefix blocks is referenced
        copy-on-write and counted as already prefilled; at least one prompt
        token always stays uncached so the request still runs a prefill
        completion (which samples its first output token).  References stick
        even when admission then fails on budget or watermark this iteration
        — the request retries with the references (and the skip) intact.
        """
        request = state.request
        block_tokens = self.allocator.block_tokens
        keys = prefix_block_keys(request.prefix, block_tokens)
        if not keys:
            return
        cap = (state.prefill_target - 1) // block_tokens
        matched = self.allocator.acquire_prefix(request.request_id, keys, max_blocks=cap)
        if not matched:
            return
        cached = matched * block_tokens
        state.prefilled = cached
        state.record.prefix_cached_tokens += cached
        self.prefix_hit_tokens += cached
        self.prefix_hit_requests += 1
        if self._prefill_flops_of is not None:
            self.prefix_flops_saved += self._prefill_flops_of(cached, 0)
        if self.obs is not None:
            self.obs.emit(
                self.now, obs_events.PREFIX_HIT, self.obs_track,
                request.request_id, (cached,),
            )

    def _activate(self, state: RequestState, waiting_index: int, phase: Phase) -> None:
        if waiting_index == 0:
            self.waiting.popleft()
        else:
            del self.waiting[waiting_index]
        if self.config.policy == "priority":
            heapq.heappop(self._priority_heap)  # _next_waiting_index's pick
        first_admission = state.admission_index < 0
        if first_admission and self._buckets:
            bucket = self._buckets.get(state.request.tenant)
            if bucket is not None:
                bucket.admit(self.now, state.request.total_tokens)
        if self.config.policy == "fair":
            # Charge the tenant's virtual clock for the work this admission
            # buys: the outstanding prefill plus the undelivered output.
            tenant = state.request.tenant
            work = state.prefill_remaining + max(
                0, state.request.output_tokens - state.decoded
            )
            weight = 1.0 if self.tenancy is None else self.tenancy.weight_for(tenant)
            self._virtual_tokens[tenant] = (
                self._virtual_tokens.get(tenant, 0.0) + work / weight
            )
        state.phase = phase
        state.admission_index = self._admissions
        self._admissions += 1
        self.running.append(state)
        if self.obs is not None:
            self.obs.emit(
                self.now, obs_events.ADMIT, self.obs_track,
                state.request.request_id,
                (phase.value, state.prefilled, state.prefill_target),
            )

    # ------------------------------------------------------------------
    # Committing an executed iteration
    # ------------------------------------------------------------------
    def commit(self, plan: IterationPlan, end_time: float) -> List[RequestState]:
        """Apply the effects of an executed plan at simulated time ``end_time``.

        Returns the requests that left the running set this iteration —
        finished requests, or (in a prefill-only pool) contexts ready for
        hand-off to the decode pool.
        """
        departed: List[RequestState] = []
        obs = self.obs
        for state, chunk in plan.prefill:
            if obs is not None:
                obs.emit(
                    end_time, obs_events.PREFILL, self.obs_track,
                    state.request.request_id,
                    (chunk, state.prefilled, state.prefill_target),
                )
            state.prefilled += chunk
            if self.prefix_caching and state.request.prefix:
                # Freshly computed prefix blocks become shareable the moment
                # their tokens are prefilled (copy-on-write publication).
                self.allocator.publish_prefix(
                    state.request.request_id,
                    prefix_block_keys(state.request.prefix, self.allocator.block_tokens),
                    state.prefilled,
                )
            if state.prefilled < state.prefill_target:
                continue
            if state.record.first_token_time is None:
                # Completing the prefill also samples the first output token.
                state.record.first_token_time = end_time
                state.decoded = max(state.decoded, 1)
                if obs is not None:
                    obs.emit(
                        end_time, obs_events.FIRST_TOKEN, self.obs_track,
                        state.request.request_id,
                        (end_time - state.request.arrival_time,),
                    )
            if state.decoded >= state.request.output_tokens:
                self._finish(state, end_time, departed)
            elif self.prefill_only:
                state.phase = Phase.HANDOFF
                self.running.remove(state)
                self.allocator.release(state.request.request_id)
                departed.append(state)
                if obs is not None:
                    obs.emit(
                        end_time, obs_events.HANDOFF, self.obs_track,
                        state.request.request_id,
                    )
            else:
                state.phase = Phase.DECODE
        for state in plan.decode:
            state.decoded += 1
            if state.decoded >= state.request.output_tokens:
                self._finish(state, end_time, departed)
        return departed

    def _finish(self, state: RequestState, end_time: float, departed: List[RequestState]) -> None:
        state.phase = Phase.FINISHED
        state.record.finish_time = end_time
        self.running.remove(state)
        self.allocator.release(state.request.request_id)
        departed.append(state)
        if self.obs is not None:
            record = state.record
            self.obs.emit(
                end_time, obs_events.FINISH, self.obs_track,
                state.request.request_id,
                (record.ttft, record.tpot, state.request.output_tokens),
            )
