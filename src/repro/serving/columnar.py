"""Struct-of-arrays decode state for the pure-decode stretch planner.

The fast-forward path (PR 4) coalesces stable pure-decode stretches: no
arrivals, no prefill, every running request decoding.  Planning a stretch
needs, per candidate step, the KV-block growth of *every* running request
— an O(batch) integer fold that the reference implementation ran as a
Python loop inside a binary search.  At massive-scenario batch sizes that
fold dominates the planner, so this module keeps the per-stretch request
state as numpy int64 columns (context length, blocks held) and runs the
growth bound and the end-of-stretch reservation plan as vectorized array
arithmetic instead of per-``RequestState`` attribute reads.

Everything here is **integer** arithmetic — numpy int64 adds, floor
divides and sums are exact, so the planner's step bound and the commit's
block counts are bit-identical to the scalar reference (proven by
``tests/test_fast_forward_equivalence.py``).  The per-step *float* pricing
(``decode_iteration_time``) deliberately stays a Python loop in the
engine: float summation order is part of the bit-exactness contract and
numpy's pairwise summation would break it.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np

__all__ = ["DecodeColumns"]


class DecodeColumns:
    """Columnar snapshot of a pool's running decode batch.

    Built once per stretch-planning attempt from the batcher's running
    list, in running order (which is also chunk-acquisition order at
    commit time).  ``contexts`` holds each request's context length at the
    start of the stretch; ``held`` the KV blocks currently backing its
    reservation (shared prefix refs + private blocks).
    """

    __slots__ = ("request_ids", "contexts", "held", "block_tokens")

    def __init__(
        self,
        request_ids: List[Hashable],
        contexts: Sequence[int],
        held: Sequence[int],
        block_tokens: int,
    ):
        self.request_ids = request_ids
        self.contexts = np.asarray(contexts, dtype=np.int64)
        self.held = np.asarray(held, dtype=np.int64)
        self.block_tokens = block_tokens

    def __len__(self) -> int:
        return len(self.request_ids)

    def growth(self, step: int) -> int:
        """Extra blocks needed by the reservations of iteration ``step``."""
        block_tokens = self.block_tokens
        extra = (self.contexts + (step + block_tokens - 1)) // block_tokens - self.held
        return int(np.maximum(extra, 0).sum())

    def stretch_bound(self, steps: int, free_blocks: int) -> int:
        """Cap ``steps`` to the longest prefix whose block growth fits.

        Identical structure to the scalar reference: if the full stretch
        fits it runs whole; if even the next step needs more blocks than
        the pool has free, the iteration must go through preemption
        planning (returns 0); otherwise binary-search the last step whose
        cumulative growth fits.
        """
        if self.growth(steps - 1) <= free_blocks:
            return steps
        if self.growth(0) > free_blocks:
            return 0
        low, high = 0, steps - 1  # growth(low) fits, growth(high) does not
        while high - low > 1:
            mid = (low + high) // 2
            if self.growth(mid) <= free_blocks:
                low = mid
            else:
                high = mid
        return low + 1

    def commit_plan(self, steps: int) -> Tuple[List[int], List[int]]:
        """Per-request ``(new_total_tokens, extra_blocks)`` after ``steps``.

        The last executed iteration reserves ``context + steps - 1`` tokens
        (the token it generated claims its slot next step); the extra-block
        count is exactly what serial :meth:`PagedKVAllocator.reserve` calls
        would acquire, computed for the whole batch in one vector pass.
        """
        block_tokens = self.block_tokens
        new_totals = self.contexts + (steps - 1)
        target = (new_totals + block_tokens - 1) // block_tokens
        extra = np.maximum(target - self.held, 0)
        return new_totals.tolist(), extra.tolist()
